#include "ps/node.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <memory>
#include <thread>

#include "obs/export.h"
#include "obs/fleet.h"
#include "obs/http_exporter.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "ps/shard.h"
#include "ps/wire.h"
#include "ps/workload.h"
#include "simd/sparse_ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::ps {

// ------------------------------------------------------ worker rounds

namespace {

/// Pulls every shard's slice into the local model replica. Slices may
/// sit at different versions — that inconsistency is the asynchrony the
/// C-term error feedback has to absorb.
void
pull_model(RpcClient& rpc, const ClusterConfig& config, std::size_t dim,
           std::size_t worker, std::vector<float>& model)
{
    for (std::size_t s = 0; s < config.shards; ++s) {
        Message pull;
        pull.kind = Message::Kind::kPull;
        pull.worker = static_cast<std::uint32_t>(worker);
        const Message reply = rpc.call(s, std::move(pull));
        std::copy(reply.weights.begin(), reply.weights.end(),
                  model.begin() + static_cast<std::ptrdiff_t>(slice_begin(
                                      dim, config.shards, s)));
    }
}

/// Pushes one wire gradient to shard `s`, backing off and retrying while
/// the SSP gate nacks it. Time spent bounced lands in the ssp_wait hop
/// histogram.
void
push_with_backoff(RpcClient& rpc, std::size_t s, std::size_t worker,
                  std::uint64_t round, const WireGradient& wire,
                  obs::Histo& hop_ssp_wait)
{
    Stopwatch gate_clock;
    bool gated = false;
    for (;;) {
        Message push;
        push.kind = Message::Kind::kPush;
        push.worker = static_cast<std::uint32_t>(worker);
        push.clock = round;
        push.gradient = wire;
        const Message ack = rpc.call(s, std::move(push));
        if (ack.accepted) {
            if (gated) hop_ssp_wait.record(gate_clock.seconds());
            return;
        }
        if (!gated) {
            gated = true;
            gate_clock = Stopwatch();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

/// Leaves the SSP gate so the remaining workers are not held to this
/// worker's final clock.
void
retire_worker(RpcClient& rpc, const ClusterConfig& config,
              std::size_t worker)
{
    for (std::size_t s = 0; s < config.shards; ++s) {
        Message retire;
        retire.kind = Message::Kind::kRetire;
        retire.worker = static_cast<std::uint32_t>(worker);
        rpc.call(s, std::move(retire));
    }
}

obs::Histo&
ssp_wait_histogram()
{
    static obs::Histo& histo = obs::MetricsRegistry::global().histogram(
        obs::labeled("ps.hop_seconds", {{"hop", "ssp_wait"}}));
    return histo;
}

} // namespace

WorkerStats
run_worker_rounds(const ClusterConfig& config,
                  const dataset::DenseProblem& problem, std::size_t worker,
                  Transport& transport,
                  std::atomic<std::uint64_t>* rounds_done)
{
    Stopwatch clock;
    WorkerStats stats;
    const std::size_t dim = problem.dim;
    const std::size_t shards = config.shards;
    const std::size_t workers = config.workers;
    RpcClient rpc(transport, worker_endpoint_of(config, worker));

    // Worker w trains on its own contiguous slice of the examples —
    // the data-parallel D partition — cycling through it in
    // mini-batches of config.batch.
    const std::size_t ex_begin = worker * problem.examples / workers;
    const std::size_t ex_end = (worker + 1) * problem.examples / workers;
    const std::size_t ex_count = ex_end - ex_begin;

    std::vector<float> model(dim, 0.0f);
    std::vector<float> gradient(dim);
    std::vector<float> residual;
    const bool feedback =
        config.error_feedback && config.codec.kind != CodecKind::kDense;
    if (feedback) residual.assign(dim, 0.0f);

    // Per-worker stochastic-rounding stream for the CsQ tiers; seeded
    // from the worker id so runs are reproducible and workers
    // independent.
    std::uint64_t seed_state =
        0xC5C0DEull + static_cast<std::uint64_t>(worker);
    rng::Xorshift128Plus codec_rng(rng::splitmix64(seed_state));

    for (std::uint64_t round = 1; round <= config.rounds; ++round) {
        BUCKWILD_OBS_SPAN("ps", "worker.round");
        Stopwatch round_clock;
        pull_model(rpc, config, dim, worker, model);

        {
            // Mini-batch gradient on this worker's data slice.
            BUCKWILD_OBS_SPAN("ps", "worker.minibatch");
            Stopwatch minibatch_clock;
            std::fill(gradient.begin(), gradient.end(), 0.0f);
            for (std::size_t b = 0; b < config.batch; ++b) {
                const std::size_t i =
                    ex_begin + ((round - 1) * config.batch + b) % ex_count;
                const float* x = problem.row(i);
                float z = 0.0f;
                for (std::size_t k = 0; k < dim; ++k) z += model[k] * x[k];
                const float g = core::loss_gradient_coefficient(
                    config.loss, z, problem.y[i]);
                if (g == 0.0f) continue;
                for (std::size_t k = 0; k < dim; ++k)
                    gradient[k] += g * x[k];
            }
            if (feedback)
                for (std::size_t k = 0; k < dim; ++k)
                    gradient[k] += residual[k];
            // Cumulative GNPS inputs for the live conformance
            // watchdog: numbers touched / seconds busy in compute.
            BUCKWILD_OBS_GAUGE_ADD("ps.worker.numbers",
                                   static_cast<double>(config.batch) *
                                       static_cast<double>(dim));
            BUCKWILD_OBS_GAUGE_ADD("ps.worker.seconds",
                                   minibatch_clock.seconds());
        }

        // Quantize and push each shard's slice; a staleness-gated
        // nack means this worker ran too far ahead — back off and
        // retry (the shard's gate opens as the slow workers apply).
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t begin = slice_begin(dim, shards, s);
            const WireGradient wire = encode_gradient(
                gradient.data() + begin,
                slice_end(dim, shards, s) - begin, config.codec,
                feedback ? residual.data() + begin : nullptr, &codec_rng);
            stats.encoded_bytes += wire.wire_bytes();
            BUCKWILD_OBS_COUNT("ps.worker.encoded_bytes",
                               wire.wire_bytes());
            push_with_backoff(rpc, s, worker, round, wire,
                              ssp_wait_histogram());
        }
        ++stats.rounds;
        if (rounds_done != nullptr)
            rounds_done->fetch_add(1, std::memory_order_acq_rel);
        BUCKWILD_OBS_HISTO("ps.worker.round_seconds",
                           round_clock.seconds());
    }

    retire_worker(rpc, config, worker);

    stats.seconds = clock.seconds();
    stats.retries = rpc.retries();
    return stats;
}

WorkerStats
run_worker_rounds(const ClusterConfig& config,
                  const dataset::SparseProblem& problem, std::size_t worker,
                  Transport& transport,
                  std::atomic<std::uint64_t>* rounds_done)
{
    Stopwatch clock;
    WorkerStats stats;
    const std::size_t dim = problem.dim;
    const std::size_t shards = config.shards;
    const std::size_t workers = config.workers;
    RpcClient rpc(transport, worker_endpoint_of(config, worker));

    const std::size_t ex_begin = worker * problem.examples() / workers;
    const std::size_t ex_end = (worker + 1) * problem.examples() / workers;
    const std::size_t ex_count = ex_end - ex_begin;

    std::vector<float> model(dim, 0.0f);
    // Sparse accumulation: a dense scratch accumulator plus an explicit
    // support list, so a round costs O(touched), not O(dim).
    std::vector<float> acc(dim, 0.0f);
    std::vector<std::uint8_t> in_support(dim, 0);
    std::vector<std::uint32_t> touched;
    const bool feedback =
        config.error_feedback && config.codec.kind != CodecKind::kDense;
    // The error-feedback residual is itself sparse: the coordinates the
    // worker has pushed with nonzero untransmitted remainder.
    std::vector<std::uint32_t> residual_index;
    std::vector<float> residual_value;
    std::vector<std::uint32_t> next_residual_index;
    std::vector<float> next_residual_value;

    std::uint64_t seed_state =
        0xC5C0DEull + static_cast<std::uint64_t>(worker);
    rng::Xorshift128Plus codec_rng(rng::splitmix64(seed_state));

    std::vector<std::uint32_t> slice_index;
    std::vector<float> slice_value;
    std::vector<float> slice_residual;

    for (std::uint64_t round = 1; round <= config.rounds; ++round) {
        BUCKWILD_OBS_SPAN("ps", "worker.round");
        Stopwatch round_clock;
        pull_model(rpc, config, dim, worker, model);

        std::size_t batch_numbers = 0;
        {
            // Mini-batch gradient over only the touched coordinates.
            BUCKWILD_OBS_SPAN("ps", "worker.minibatch");
            Stopwatch minibatch_clock;
            for (std::size_t b = 0; b < config.batch; ++b) {
                const std::size_t i =
                    ex_begin + ((round - 1) * config.batch + b) % ex_count;
                const dataset::SparseRow& x = problem.rows[i];
                const std::size_t nnz = x.value.size();
                batch_numbers += nnz;
                const float z = simd::SparseOps<std::uint32_t>::dot(
                    config.impl, x.value.data(), x.index.data(), nnz,
                    model.data(), 1.0f,
                    simd::sparse::IndexMode::kAbsolute);
                const float g = core::loss_gradient_coefficient(
                    config.loss, z, problem.y[i]);
                if (g == 0.0f) continue;
                for (std::size_t j = 0; j < nnz; ++j) {
                    const std::uint32_t k = x.index[j];
                    if (!in_support[k]) {
                        in_support[k] = 1;
                        touched.push_back(k);
                    }
                    acc[k] += g * x.value[j];
                }
            }
            // Carried residual joins the round's support (a coordinate
            // with pending feedback is pushed even if this minibatch
            // missed it).
            for (std::size_t j = 0; j < residual_index.size(); ++j) {
                const std::uint32_t k = residual_index[j];
                if (!in_support[k]) {
                    in_support[k] = 1;
                    touched.push_back(k);
                }
                acc[k] += residual_value[j];
            }
            BUCKWILD_OBS_GAUGE_ADD("ps.worker.numbers",
                                   static_cast<double>(batch_numbers));
            BUCKWILD_OBS_GAUGE_ADD("ps.worker.seconds",
                                   minibatch_clock.seconds());
        }
        std::sort(touched.begin(), touched.end());

        // Per-range nnz split: each shard gets the (slice-local) run of
        // touched coordinates inside its range — an empty run still
        // pushes, so clocks/dedup/SSP behave exactly like the dense loop.
        next_residual_index.clear();
        next_residual_value.clear();
        auto lo = touched.begin();
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t begin = slice_begin(dim, shards, s);
            const std::size_t end = slice_end(dim, shards, s);
            const auto hi = std::lower_bound(
                lo, touched.end(), static_cast<std::uint32_t>(end));
            slice_index.clear();
            slice_value.clear();
            for (auto it = lo; it != hi; ++it) {
                slice_index.push_back(
                    static_cast<std::uint32_t>(*it - begin));
                slice_value.push_back(acc[*it]);
            }
            const std::size_t nnz = slice_index.size();
            slice_residual.assign(nnz, 0.0f);
            const GradientView view =
                GradientView::sparse_view<std::uint32_t>(
                    slice_value.data(), slice_index.data(), nnz,
                    static_cast<std::uint32_t>(end - begin),
                    simd::sparse::IndexMode::kAbsolute);
            const WireGradient wire = encode_sparse_gradient(
                view, config.codec,
                feedback ? slice_residual.data() : nullptr, &codec_rng);
            stats.encoded_bytes += wire.wire_bytes();
            stats.encoded_nnz += nnz;
            BUCKWILD_OBS_COUNT("ps.worker.encoded_bytes",
                               wire.wire_bytes());
            if (feedback)
                for (std::size_t j = 0; j < nnz; ++j)
                    if (slice_residual[j] != 0.0f) {
                        next_residual_index.push_back(
                            static_cast<std::uint32_t>(begin) +
                            slice_index[j]);
                        next_residual_value.push_back(slice_residual[j]);
                    }
            push_with_backoff(rpc, s, worker, round, wire,
                              ssp_wait_histogram());
            lo = hi;
        }
        residual_index.swap(next_residual_index);
        residual_value.swap(next_residual_value);

        // Reset the scratch accumulator in O(touched).
        for (const std::uint32_t k : touched) {
            acc[k] = 0.0f;
            in_support[k] = 0;
        }
        touched.clear();

        ++stats.rounds;
        if (rounds_done != nullptr)
            rounds_done->fetch_add(1, std::memory_order_acq_rel);
        BUCKWILD_OBS_HISTO("ps.worker.round_seconds",
                           round_clock.seconds());
    }

    retire_worker(rpc, config, worker);

    stats.seconds = clock.seconds();
    stats.retries = rpc.retries();
    return stats;
}

// ------------------------------------------------------- node roles

ShardMetrics
run_shard_node(const ClusterConfig& config, std::size_t dim,
               const ShardNodeOptions& options)
{
    if (options.index >= config.shards) fatal("shard index out of range");
    SocketTransportConfig tc;
    tc.endpoints = cluster_endpoints(config);
    tc.local = {options.index};
    tc.listen = true;
    tc.bind_address = options.bind_address;
    tc.listen_port = options.port;
    tc.adopt_listen_fd = options.adopt_listen_fd;
    // Sender-side fault injection (see node.h): the shard's own sends
    // are reliable so teardown acks always make it out; the reorder
    // window still shuffles its inbound mailbox.
    tc.faults = config.faults;
    tc.faults.drop_prob = 0.0;
    tc.faults.jitter_us = 0;
    SocketTransport transport(tc);
    if (options.bound_port != nullptr) *options.bound_port = transport.port();

    ShardConfig shard_cfg;
    shard_cfg.workers = config.workers;
    shard_cfg.tau = config.tau;
    shard_cfg.step_size = config.step_size;
    shard_cfg.batch = config.batch;
    shard_cfg.impl = config.impl;
    ServerShard shard(options.index,
                      slice_begin(dim, config.shards, options.index),
                      slice_end(dim, config.shards, options.index),
                      shard_cfg, transport);
    shard.run(); // until kShutdown (or transport close)
    transport.close();
    return shard.metrics();
}

namespace {

/// Shared socket bring-up of a worker node: dial the shards, run the
/// given round loop, close the fabric.
template <typename Problem>
WorkerStats
run_worker_node_impl(const ClusterConfig& config, const Problem& problem,
                     std::size_t worker,
                     const std::vector<net::Address>& shard_addresses)
{
    if (worker >= config.workers) fatal("worker index out of range");
    if (shard_addresses.size() != config.shards)
        fatal("need one shard address per shard");
    SocketTransportConfig tc;
    tc.endpoints = cluster_endpoints(config);
    tc.local = {worker_endpoint_of(config, worker)};
    for (std::size_t s = 0; s < config.shards; ++s)
        tc.peers[s] = shard_addresses[s];
    tc.faults = config.faults;
    SocketTransport transport(tc);
    const WorkerStats stats =
        run_worker_rounds(config, problem, worker, transport, nullptr);
    transport.close();
    return stats;
}

} // namespace

WorkerStats
run_worker_node(const ClusterConfig& config,
                const dataset::DenseProblem& problem, std::size_t worker,
                const std::vector<net::Address>& shard_addresses)
{
    return run_worker_node_impl(config, problem, worker, shard_addresses);
}

WorkerStats
run_worker_node(const ClusterConfig& config,
                const dataset::SparseProblem& problem, std::size_t worker,
                const std::vector<net::Address>& shard_addresses)
{
    return run_worker_node_impl(config, problem, worker, shard_addresses);
}

namespace {

SocketTransportConfig
control_transport_config(const ClusterConfig& config,
                         const std::vector<net::Address>& shard_addresses)
{
    if (shard_addresses.size() != config.shards)
        fatal("need one shard address per shard");
    SocketTransportConfig tc;
    tc.endpoints = cluster_endpoints(config);
    tc.local = {control_endpoint_of(config)};
    for (std::size_t s = 0; s < config.shards; ++s)
        tc.peers[s] = shard_addresses[s];
    tc.faults = config.faults;
    return tc;
}

} // namespace

ControlClient::ControlClient(const ClusterConfig& config,
                             const std::vector<net::Address>& shard_addresses)
    : config_(config),
      transport_(control_transport_config(config, shard_addresses)),
      rpc_(transport_, control_endpoint_of(config))
{}

std::vector<float>
ControlClient::snapshot(std::size_t dim)
{
    std::vector<float> model(dim);
    for (std::size_t s = 0; s < config_.shards; ++s) {
        Message pull;
        pull.kind = Message::Kind::kPull;
        const Message reply = rpc_.call(s, std::move(pull));
        if (reply.weights.size() !=
            slice_end(dim, config_.shards, s) -
                slice_begin(dim, config_.shards, s))
            fatal("pull reply does not match the shard slice");
        std::copy(reply.weights.begin(), reply.weights.end(),
                  model.begin() + static_cast<std::ptrdiff_t>(
                                      slice_begin(dim, config_.shards, s)));
    }
    return model;
}

std::vector<ShardMetrics>
ControlClient::stats()
{
    std::vector<ShardMetrics> all;
    for (std::size_t s = 0; s < config_.shards; ++s) {
        Message request;
        request.kind = Message::Kind::kStats;
        const Message reply = rpc_.call(s, std::move(request));
        all.push_back(shard_metrics_from_stats(reply.stats));
    }
    return all;
}

void
ControlClient::shutdown()
{
    for (std::size_t s = 0; s < config_.shards; ++s) {
        Message request;
        request.kind = Message::Kind::kShutdown;
        rpc_.call(s, std::move(request));
    }
}

// --------------------------------------------------------- assembly

void
evaluate_model(const dataset::DenseProblem& problem, core::Loss loss,
               const std::vector<float>& model, double* out_loss,
               double* out_accuracy)
{
    double total = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < problem.examples; ++i) {
        float z = 0.0f;
        const float* x = problem.row(i);
        for (std::size_t k = 0; k < problem.dim; ++k) z += model[k] * x[k];
        total += core::loss_value(loss, z, problem.y[i]);
        if (core::loss_correct(loss, z, problem.y[i])) ++correct;
    }
    *out_loss = total / static_cast<double>(problem.examples);
    *out_accuracy =
        static_cast<double>(correct) / static_cast<double>(problem.examples);
}

void
evaluate_model(const dataset::SparseProblem& problem, core::Loss loss,
               const std::vector<float>& model, double* out_loss,
               double* out_accuracy)
{
    double total = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < problem.examples(); ++i) {
        const dataset::SparseRow& x = problem.rows[i];
        const float z = simd::SparseOps<std::uint32_t>::dot(
            x.value.data(), x.index.data(), x.value.size(), model.data(),
            1.0f, simd::sparse::IndexMode::kAbsolute);
        total += core::loss_value(loss, z, problem.y[i]);
        if (core::loss_correct(loss, z, problem.y[i])) ++correct;
    }
    *out_loss = total / static_cast<double>(problem.examples());
    *out_accuracy = static_cast<double>(correct) /
                    static_cast<double>(problem.examples());
}

core::SavedModel
make_cluster_checkpoint(const ClusterConfig& config,
                        std::vector<float> weights, bool sparse)
{
    core::SavedModel model;
    model.signature = sparse ? dmgc::Signature::sparse_hogwild()
                             : dmgc::Signature::dense_hogwild();
    model.signature.communication = dmgc::Communication::kAsynchronous;
    model.signature.comm_precision = config.codec.kind == CodecKind::kDense
        ? dmgc::Precision::full()
        : dmgc::Precision::fixed(config.codec.bits);
    model.loss = config.loss;
    model.weights = std::move(weights);
    return model;
}

double
fixed_bytes_per_round(const ClusterConfig& config, std::size_t dim)
{
    if (config.codec.kind == CodecKind::kQsgd) return 0.0;
    double total = 0.0;
    for (std::size_t s = 0; s < config.shards; ++s)
        total += static_cast<double>(
            kWireHeaderBytes +
            payload_bytes(slice_end(dim, config.shards, s) -
                              slice_begin(dim, config.shards, s),
                          config.codec.bits));
    return total;
}

namespace {

bool
write_all_fd(int fd, const void* data, std::size_t n)
{
    const char* bytes = static_cast<const char*>(data);
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, bytes + off, n - off);
        if (w < 0 && errno == EINTR) continue;
        if (w <= 0) return false;
        off += static_cast<std::size_t>(w);
    }
    return true;
}

bool
read_all_fd(int fd, void* data, std::size_t n)
{
    char* bytes = static_cast<char*>(data);
    std::size_t off = 0;
    while (off < n) {
        const ssize_t r = ::read(fd, bytes + off, n - off);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) return false;
        off += static_cast<std::size_t>(r);
    }
    return true;
}

///// Child-side observability bring-up for a spawned node: tags the
/// tracer with the child's role and, when the fleet view is on, serves
/// this process's registry on an ephemeral /metrics port — reported to
/// the parent through `port_fd` before any training traffic, so the
/// parent can assemble its target list without racing the run.
std::unique_ptr<obs::HttpExporter>
start_child_obs(const ClusterConfig& config, const std::string& role,
                int port_fd)
{
    if (!config.trace_dir.empty()) {
        obs::Tracer::global().set_enabled(true);
        obs::Tracer::global().set_process(role);
    }
    std::unique_ptr<obs::HttpExporter> exporter;
    if (config.fleet_port >= 0) {
        obs::HttpExporterConfig hc;
        hc.port = 0;
        hc.bind_address = "127.0.0.1";
        exporter = std::make_unique<obs::HttpExporter>(hc);
        // Port 0 means "could not bind" to the parent, which then just
        // leaves this node out of the fleet view.
        const std::uint32_t port =
            exporter->start() ? exporter->port() : 0;
        if (!write_all_fd(port_fd, &port, sizeof port))
            warn("cluster: child could not report its /metrics port");
    }
    return exporter;
}

/// Child-side observability teardown: stop the scrape endpoint and
/// flush this process's trace where buckwild_tracemerge expects it.
void
finish_child_obs(const ClusterConfig& config, const std::string& role,
                 std::unique_ptr<obs::HttpExporter> exporter)
{
    if (exporter != nullptr) exporter->stop();
    if (!config.trace_dir.empty())
        obs::export_trace_file(config.trace_dir + "/" + role +
                               ".trace.json");
}

void
reap_children(const std::vector<pid_t>& pids, const char* role)
{
    for (const pid_t pid : pids) {
        int status = 0;
        pid_t reaped;
        do {
            reaped = ::waitpid(pid, &status, 0);
        } while (reaped < 0 && errno == EINTR);
        if (reaped != pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            fatal(std::string(role) + " process did not exit cleanly");
    }
}

using detail::example_count;
using detail::is_sparse_workload;
using detail::numbers_per_example;

template <typename Problem>
ClusterResult
train_cluster_multiprocess_impl(const Problem& problem,
                                const ClusterConfig& config)
{
    if (config.rounds == 0) fatal("rounds must be >= 1");
    if (example_count(problem) < config.workers)
        fatal("need at least one example per worker");
    if (config.shards == 0 || config.shards > problem.dim)
        fatal("bad shard count for this model dimension");
    validate_codec(config.codec);

    const std::size_t shards = config.shards;
    const std::size_t workers = config.workers;

    // Bind every shard's listener in the parent, before forking: the
    // children inherit already-bound sockets, so the advertised ports
    // can never race the shard startup.
    std::vector<net::Fd> listeners;
    std::vector<net::Address> addresses;
    for (std::size_t s = 0; s < shards; ++s) {
        std::uint16_t port = 0;
        std::string error;
        net::Fd fd = net::listen_tcp("127.0.0.1", 0, 64, &port, &error);
        if (!fd.valid()) fatal(error);
        listeners.push_back(std::move(fd));
        addresses.push_back({"127.0.0.1", port});
    }

    Stopwatch wall;

    std::vector<pid_t> shard_pids;
    std::vector<int> shard_port_pipes;
    for (std::size_t s = 0; s < shards; ++s) {
        int port_fds[2] = {-1, -1};
        if (config.fleet_port >= 0 && ::pipe(port_fds) != 0)
            fatal("pipe failed for shard metrics port");
        const pid_t pid = ::fork();
        if (pid < 0) fatal("fork failed for shard process");
        if (pid == 0) {
            if (port_fds[0] >= 0) ::close(port_fds[0]);
            for (std::size_t t = 0; t < shards; ++t)
                if (t != s) listeners[t].reset();
            int code = 0;
            try {
                const std::string role = "shard" + std::to_string(s);
                std::unique_ptr<obs::HttpExporter> exporter =
                    start_child_obs(config, role, port_fds[1]);
                if (port_fds[1] >= 0) ::close(port_fds[1]);
                ShardNodeOptions options;
                options.index = s;
                options.adopt_listen_fd = listeners[s].release();
                run_shard_node(config, problem.dim, options);
                finish_child_obs(config, role, std::move(exporter));
            } catch (...) {
                code = 1;
            }
            ::_exit(code);
        }
        if (port_fds[1] >= 0) ::close(port_fds[1]);
        if (port_fds[0] >= 0) shard_port_pipes.push_back(port_fds[0]);
        shard_pids.push_back(pid);
    }
    // The children own the listeners now.
    for (auto& listener : listeners) listener.reset();

    // Each shard reports its ephemeral /metrics port as its first act;
    // a port of 0 (bind failure, dead child) drops it from the fleet.
    std::vector<std::uint32_t> shard_ports(shards, 0);
    for (std::size_t s = 0; s < shard_port_pipes.size(); ++s) {
        if (!read_all_fd(shard_port_pipes[s], &shard_ports[s],
                         sizeof(shard_ports[s])))
            shard_ports[s] = 0;
        ::close(shard_port_pipes[s]);
    }

    std::vector<pid_t> worker_pids;
    std::vector<int> stat_pipes;
    std::vector<int> ack_pipes;
    for (std::size_t w = 0; w < workers; ++w) {
        int fds[2];
        if (::pipe(fds) != 0) fatal("pipe failed for worker stats");
        // When the fleet view is on, a reverse (parent -> worker) ack
        // pipe holds the worker's /metrics endpoint open until the
        // parent has taken its final scrape — otherwise the worker
        // would exit (and its exporter with it) the instant its stats
        // land, and the merged view would race the teardown.
        int ack_fds[2] = {-1, -1};
        if (config.fleet_port >= 0 && ::pipe(ack_fds) != 0)
            fatal("pipe failed for worker scrape ack");
        const pid_t pid = ::fork();
        if (pid < 0) fatal("fork failed for worker process");
        if (pid == 0) {
            ::close(fds[0]);
            if (ack_fds[1] >= 0) ::close(ack_fds[1]);
            int code = 0;
            try {
                // The stats pipe doubles as the port pipe: the
                // /metrics port goes down it first, the stats struct
                // follows as the worker's last act.
                const std::string role = "worker" + std::to_string(w);
                std::unique_ptr<obs::HttpExporter> exporter =
                    start_child_obs(config, role, fds[1]);
                const WorkerStats stats =
                    run_worker_node(config, problem, w, addresses);
                if (!write_all_fd(fds[1], &stats, sizeof(stats)))
                    code = 1;
                if (ack_fds[0] >= 0) {
                    char ack = 0;
                    read_all_fd(ack_fds[0], &ack, 1); // parent scraped
                }
                finish_child_obs(config, role, std::move(exporter));
            } catch (...) {
                code = 1;
            }
            ::close(fds[1]);
            if (ack_fds[0] >= 0) ::close(ack_fds[0]);
            ::_exit(code);
        }
        ::close(fds[1]);
        if (ack_fds[0] >= 0) ::close(ack_fds[0]);
        worker_pids.push_back(pid);
        stat_pipes.push_back(fds[0]);
        ack_pipes.push_back(ack_fds[1]);
    }

    // Collect the workers' /metrics ports (written before round one).
    std::vector<std::uint32_t> worker_ports(workers, 0);
    if (config.fleet_port >= 0)
        for (std::size_t w = 0; w < workers; ++w)
            if (!read_all_fd(stat_pipes[w], &worker_ports[w],
                             sizeof(worker_ports[w])))
                worker_ports[w] = 0;

    // All forks are done — threads are safe again. The parent becomes
    // the control node proper: it tags its own trace, and when the
    // fleet view is on it re-exposes the merged, node-labeled scrape
    // of every child plus its own registry.
    if (!config.trace_dir.empty()) {
        obs::Tracer::global().set_enabled(true);
        obs::Tracer::global().set_process("control");
    }
    std::unique_ptr<obs::FleetAggregator> fleet;
    std::unique_ptr<obs::HttpExporter> fleet_exporter;
    int fleet_port_bound = -1;
    if (config.fleet_port >= 0) {
        obs::FleetConfig fc;
        fc.local_node = "control";
        for (std::size_t s = 0; s < shards; ++s)
            if (shard_ports[s] != 0)
                fc.targets.push_back(
                    {"shard" + std::to_string(s),
                     {"127.0.0.1",
                      static_cast<std::uint16_t>(shard_ports[s])}});
        for (std::size_t w = 0; w < workers; ++w)
            if (worker_ports[w] != 0)
                fc.targets.push_back(
                    {"worker" + std::to_string(w),
                     {"127.0.0.1",
                      static_cast<std::uint16_t>(worker_ports[w])}});
        fleet = std::make_unique<obs::FleetAggregator>(std::move(fc));
        obs::HttpExporterConfig hc;
        hc.port = static_cast<std::uint16_t>(config.fleet_port);
        hc.bind_address = "127.0.0.1";
        hc.metrics_body = [aggregator = fleet.get()] {
            return aggregator->merged_body();
        };
        fleet_exporter = std::make_unique<obs::HttpExporter>(hc);
        if (fleet_exporter->start())
            fleet_port_bound = fleet_exporter->port();
    }

    // Workers report their stats through the pipe as their last act; a
    // short read means the worker died mid-run.
    std::vector<WorkerStats> worker_stats(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        auto* bytes = reinterpret_cast<char*>(&worker_stats[w]);
        std::size_t off = 0;
        while (off < sizeof(WorkerStats)) {
            const ssize_t n = ::read(stat_pipes[w], bytes + off,
                                     sizeof(WorkerStats) - off);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) break;
            off += static_cast<std::size_t>(n);
        }
        ::close(stat_pipes[w]);
        if (off != sizeof(WorkerStats)) {
            if (ack_pipes[w] >= 0) ::close(ack_pipes[w]);
            fatal("worker process " + std::to_string(w) +
                  " died before reporting stats");
        }
        if (ack_pipes[w] >= 0) {
            // The worker is done but parked on the ack pipe: scrape its
            // final numbers into the last-good cache, then release it.
            if (fleet != nullptr) fleet->merged_body();
            const char ack = 1;
            write_all_fd(ack_pipes[w], &ack, 1);
            ::close(ack_pipes[w]);
        }
    }
    reap_children(worker_pids, "worker");

    // The parent is the control endpoint: final snapshot, shard
    // counters, then shutdown — and only then are the shards reaped.
    ClusterResult result;
    result.comm = config.codec.name();
    ControlClient control(config, addresses);
    std::vector<float> model = control.snapshot(problem.dim);
    result.metrics.shards = control.stats();
    // Final fleet snapshot while the shards still answer; the workers
    // (already gone) are served from their last-good scrapes.
    if (fleet != nullptr) result.fleet_metrics = fleet->merged_body();
    control.shutdown();
    reap_children(shard_pids, "shard");
    result.wall_seconds = wall.seconds();
    result.fleet_port = fleet_port_bound;
    if (fleet_exporter != nullptr) fleet_exporter->stop();
    if (!config.trace_dir.empty()) {
        obs::export_trace_file(config.trace_dir + "/control.trace.json");
        if (!result.fleet_metrics.empty()) {
            std::ofstream out(config.trace_dir + "/fleet.prom");
            out << result.fleet_metrics;
        }
    }

    result.checkpoint = make_cluster_checkpoint(config, std::move(model),
                                                is_sparse_workload(problem));
    evaluate_model(problem, config.loss, result.checkpoint.weights,
                   &result.final_loss, &result.accuracy);

    std::uint64_t encoded_total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
        result.rounds += worker_stats[w].rounds;
        result.metrics.worker_seconds += worker_stats[w].seconds;
        result.metrics.rpc_retries += worker_stats[w].retries;
        encoded_total += worker_stats[w].encoded_bytes;
    }
    result.metrics.rpc_retries += control.retries();
    result.metrics.numbers = static_cast<double>(result.rounds) *
                             static_cast<double>(config.batch) *
                             numbers_per_example(problem);
    // Sparse pushes are nnz-dependent at every tier, so their traffic is
    // always measured; dense fixed-size codecs stay statically computed.
    const bool measured = config.codec.kind == CodecKind::kQsgd ||
                          is_sparse_workload(problem);
    result.bytes_per_round =
        measured ? (result.rounds > 0
                        ? static_cast<double>(encoded_total) /
                              static_cast<double>(result.rounds)
                        : 0.0)
                 : fixed_bytes_per_round(config, problem.dim);
    return result;
}

} // namespace

ClusterResult
train_cluster_multiprocess(const dataset::DenseProblem& problem,
                           const ClusterConfig& config)
{
    return train_cluster_multiprocess_impl(problem, config);
}

ClusterResult
train_cluster_multiprocess(const dataset::SparseProblem& problem,
                           const ClusterConfig& config)
{
    return train_cluster_multiprocess_impl(problem, config);
}

} // namespace buckwild::ps
