#include "ps/socket_transport.h"

#include <algorithm>
#include <thread>

#include "obs/obs.h"
#include "ps/wire.h"
#include "util/logging.h"

namespace buckwild::ps {

namespace {

/// A frame's payload is the destination endpoint then the message.
constexpr std::size_t kDestBytes = 4;

std::uint32_t
read_dest(const std::uint8_t* data)
{
    return static_cast<std::uint32_t>(data[0]) |
           (static_cast<std::uint32_t>(data[1]) << 8) |
           (static_cast<std::uint32_t>(data[2]) << 16) |
           (static_cast<std::uint32_t>(data[3]) << 24);
}

} // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)), fault_rng_(config_.faults.seed)
{
    if (config_.endpoints == 0)
        fatal("socket transport needs at least one endpoint");
    if (config_.local.empty())
        fatal("socket transport hosts no local endpoint");
    if (config_.faults.drop_prob < 0.0 || config_.faults.drop_prob >= 1.0)
        fatal("drop_prob must be in [0, 1)");
    std::uint64_t seed = config_.faults.seed ^ 0x50C7ull;
    for (const std::size_t endpoint : config_.local) {
        if (endpoint >= config_.endpoints)
            fatal("local endpoint out of range");
        mailboxes_.emplace(endpoint,
                           std::make_unique<Mailbox>(
                               config_.faults.reorder_window,
                               rng::splitmix64(seed)));
    }
    for (const auto& [endpoint, address] : config_.peers)
        if (endpoint >= config_.endpoints)
            fatal("peer endpoint " + std::to_string(endpoint) +
                  " out of range");

    if (config_.adopt_listen_fd >= 0) {
        listen_fd_ = net::Fd(config_.adopt_listen_fd);
        port_ = net::local_port(listen_fd_.get());
        acceptor_ = std::thread([this] { accept_loop(); });
    } else if (config_.listen) {
        std::string error;
        listen_fd_ = net::listen_tcp(config_.bind_address,
                                     config_.listen_port, 64, &port_,
                                     &error);
        if (!listen_fd_.valid()) fatal(error);
        acceptor_ = std::thread([this] { accept_loop(); });
    }
}

SocketTransport::~SocketTransport() { close(); }

Mailbox*
SocketTransport::local_mailbox(std::size_t endpoint) const
{
    const auto it = mailboxes_.find(endpoint);
    return it == mailboxes_.end() ? nullptr : it->second.get();
}

void
SocketTransport::accept_loop()
{
    while (!closed_.load(std::memory_order_acquire)) {
        net::Fd client = net::accept_client(listen_fd_.get(), 100);
        if (!client.valid()) continue; // timeout: re-check the stop flag
        if (closed_.load(std::memory_order_acquire)) break;
        adopt_connection(std::move(client));
    }
}

std::shared_ptr<SocketTransport::Connection>
SocketTransport::adopt_connection(net::Fd fd)
{
    auto connection = std::make_shared<Connection>();
    connection->fd = std::move(fd);
    connection->accepted = true;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { reader_loop(connection); });
    return connection;
}

void
SocketTransport::reader_loop(const std::shared_ptr<Connection>& connection)
{
    std::vector<std::uint8_t> payload;
    while (!closed_.load(std::memory_order_acquire)) {
        const net::FrameResult result =
            net::read_frame(connection->fd.get(), payload,
                            config_.max_frame_bytes + kDestBytes);
        if (result != net::FrameResult::kOk) {
            if (result == net::FrameResult::kBadMagic ||
                result == net::FrameResult::kTooLarge)
                warn("net: dropping desynchronized peer connection");
            break;
        }
        BUCKWILD_OBS_COUNT("net.frames_recv", 1);
        BUCKWILD_OBS_COUNT("net.recv_bytes",
                           net::kFrameHeaderBytes + payload.size());
        if (payload.size() < kDestBytes) {
            warn("net: runt frame, dropping connection");
            break;
        }
        const std::uint32_t dest = read_dest(payload.data());
        Message message;
        if (!deserialize_message(payload.data() + kDestBytes,
                                 payload.size() - kDestBytes, message)) {
            // A malformed message is indistinguishable from a lost one:
            // drop it and let the sender's retransmit recover.
            warn("net: malformed message frame discarded");
            continue;
        }
        // Arrival timestamp on the receiver's steady clock: the `b1` of
        // the NTP clock-offset pair and the far edge of the wire hop.
        message.recv_ts_ns = obs::trace_now_ns();
        Mailbox* mailbox = local_mailbox(dest);
        if (mailbox == nullptr) {
            std::string locals;
            for (const std::size_t e : config_.local)
                locals += (locals.empty() ? "" : ",") + std::to_string(e);
            warn("net: frame for endpoint " + std::to_string(dest) +
                 " which is not hosted here (local={" + locals +
                 "} kind=" + std::to_string(static_cast<int>(message.kind)) +
                 " sender=" + std::to_string(message.sender) +
                 " token=" + std::to_string(message.token) + ")");
            continue;
        }
        // Reply routing: requests carry the endpoint to answer, and the
        // answer goes back over the connection the request came in on.
        // Dialed connections never teach routes — what comes back on
        // them is replies, and a kStats reply shares its request's kind.
        if (connection->accepted && message.is_request() &&
            message.sender < config_.endpoints) {
            std::lock_guard<std::mutex> lock(conn_mutex_);
            routes_[message.sender] = connection;
        }
        mailbox->push(std::move(message));
    }
    connection->dead.store(true, std::memory_order_release);
    connection->fd.shutdown_rdwr();
}

std::shared_ptr<SocketTransport::Connection>
SocketTransport::route_for(std::size_t to)
{
    std::lock_guard<std::mutex> lock(conn_mutex_);
    {
        const auto it = routes_.find(to);
        if (it != routes_.end()) {
            if (!it->second->dead.load(std::memory_order_acquire))
                return it->second;
            routes_.erase(it);
        }
    }
    const auto peer = config_.peers.find(to);
    if (peer == config_.peers.end()) return nullptr;
    const std::string key = peer->second.to_string();
    {
        const auto it = dialed_.find(key);
        if (it != dialed_.end()) {
            if (!it->second->dead.load(std::memory_order_acquire)) {
                routes_[to] = it->second;
                return it->second;
            }
            dialed_.erase(it);
        }
    }
    std::string error;
    net::Fd fd =
        net::connect_tcp(peer->second, config_.connect_timeout, &error);
    if (!fd.valid()) {
        warn("net: " + error);
        return nullptr;
    }
    // adopt_connection locks conn_mutex_ itself; register the pieces it
    // does not know about (route + dial cache) inline instead.
    auto connection = std::make_shared<Connection>();
    connection->fd = std::move(fd);
    connections_.push_back(connection);
    connection->reader =
        std::thread([this, connection] { reader_loop(connection); });
    dialed_[key] = connection;
    routes_[to] = connection;
    return connection;
}

bool
SocketTransport::write_message(Connection& connection, std::size_t to,
                               const Message& message)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(kDestBytes + serialized_bytes(message));
    const std::uint32_t dest = static_cast<std::uint32_t>(to);
    frame.push_back(static_cast<std::uint8_t>(dest));
    frame.push_back(static_cast<std::uint8_t>(dest >> 8));
    frame.push_back(static_cast<std::uint8_t>(dest >> 16));
    frame.push_back(static_cast<std::uint8_t>(dest >> 24));
    const std::vector<std::uint8_t> body = serialize_message(message);
    frame.insert(frame.end(), body.begin(), body.end());

    bool ok;
    {
        std::lock_guard<std::mutex> lock(connection.write_mutex);
        ok = net::write_frame(connection.fd.get(), frame.data(),
                              frame.size());
    }
    if (ok) {
        BUCKWILD_OBS_COUNT("net.frames_sent", 1);
        BUCKWILD_OBS_COUNT("net.sent_bytes",
                           net::kFrameHeaderBytes + frame.size());
    } else {
        connection.dead.store(true, std::memory_order_release);
        connection.fd.shutdown_rdwr();
    }
    return ok;
}

void
SocketTransport::send(std::size_t to, Message&& message)
{
    if (to >= config_.endpoints) panic("send to unknown endpoint");
    sent_.fetch_add(1, std::memory_order_relaxed);
    sent_bytes_.fetch_add(message.wire_bytes(), std::memory_order_relaxed);
    BUCKWILD_OBS_COUNT("ps.transport.sent", 1);
    BUCKWILD_OBS_COUNT("ps.transport.sent_bytes", message.wire_bytes());

    // Injected faults apply identically over sockets: drops before the
    // syscall, jitter on the sender's clock.
    if (config_.faults.any()) {
        std::size_t delay_us = 0;
        bool drop = false;
        {
            std::lock_guard<std::mutex> lock(fault_mutex_);
            if (config_.faults.drop_prob > 0.0) {
                const double u =
                    static_cast<double>(fault_rng_() >> 11) * 0x1.0p-53;
                drop = u < config_.faults.drop_prob;
            }
            if (!drop && config_.faults.jitter_us > 0)
                delay_us = static_cast<std::size_t>(
                    fault_rng_() % (config_.faults.jitter_us + 1));
        }
        if (drop) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            BUCKWILD_OBS_COUNT("ps.transport.dropped", 1);
            BUCKWILD_OBS_INSTANT("ps", "transport.drop");
            return;
        }
        if (delay_us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }

    if (Mailbox* mailbox = local_mailbox(to)) {
        message.recv_ts_ns = obs::trace_now_ns();
        mailbox->push(std::move(message));
        return;
    }

    const std::shared_ptr<Connection> connection = route_for(to);
    if (connection == nullptr ||
        !write_message(*connection, to, message)) {
        // Unreachable peer == lost message; the RPC layer retransmits
        // (and the retransmit re-dials through route_for).
        dropped_.fetch_add(1, std::memory_order_relaxed);
        BUCKWILD_OBS_COUNT("net.drops", 1);
    }
}

bool
SocketTransport::recv(std::size_t at, Message& out,
                      std::chrono::microseconds timeout)
{
    Mailbox* mailbox = local_mailbox(at);
    if (mailbox == nullptr) panic("recv at endpoint not hosted here");
    if (!mailbox->pop(out, timeout)) return false;
    recv_bytes_.fetch_add(out.wire_bytes(), std::memory_order_relaxed);
    return true;
}

void
SocketTransport::close()
{
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    listen_fd_.shutdown_rdwr();
    if (acceptor_.joinable()) acceptor_.join();

    std::vector<std::shared_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections = connections_;
        routes_.clear();
        dialed_.clear();
    }
    for (const auto& connection : connections) {
        connection->fd.shutdown_rdwr();
        if (connection->reader.joinable()) connection->reader.join();
    }
    for (auto& [endpoint, mailbox] : mailboxes_) mailbox->close();
}

} // namespace buckwild::ps
