/**
 * @file
 * ServerShard — one range-partitioned slice of the model, served by its
 * own thread.
 *
 * Shard s owns coordinates [begin, end) of the model. All mutation goes
 * through its message loop: workers kPush quantized gradient slices
 * (applied through the simd::ops float kernels — the same AXPY the
 * Hogwild! trainer uses), kPull a copy of the current slice, and kRetire
 * when done. Because exactly one thread touches the weights, the shard
 * needs no locks around them; concurrency lives entirely in the
 * mailboxes.
 *
 * Bounded staleness (SSP): the shard tracks a per-worker clock (applied
 * pushes). A push that would put its worker more than `tau` rounds ahead
 * of the slowest live worker is bounced (kAck accepted=false) and the
 * worker backs off — the asynchronous C-term analog of the paper's §2.3
 * "allowing staleness ... up to some bound". Retired workers leave the
 * gate so finishing workers never wedge the rest.
 *
 * Retransmitted pushes (the transport may drop an ack) are deduplicated
 * by worker clock: a push with clock <= the worker's applied clock was
 * already applied and is re-acked without applying — push application is
 * exactly-once even over a lossy fabric.
 */
#ifndef BUCKWILD_PS_SHARD_H
#define BUCKWILD_PS_SHARD_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/registry.h"
#include "ps/metrics.h"
#include "ps/transport.h"
#include "simd/ops.h"

namespace buckwild::ps {

/// Server-side update knobs shared by every shard.
struct ShardConfig
{
    std::size_t workers = 1;  ///< clock-table size
    std::size_t tau = 16;     ///< max rounds ahead of the slowest worker
    float step_size = 0.25f;  ///< eta applied per push
    std::size_t batch = 16;   ///< gradient normalizer (examples per push)
    simd::Impl impl = simd::Impl::kReference; ///< update kernel
};

class ServerShard
{
  public:
    /// Serves coordinates [begin, end) at transport endpoint `index`.
    ServerShard(std::size_t index, std::size_t begin, std::size_t end,
                const ShardConfig& config, Transport& transport);

    /// The message loop; runs until the transport closes and the mailbox
    /// drains, or a kShutdown arrives (multi-process teardown). Call on a
    /// dedicated thread.
    void run();

    std::size_t index() const { return index_; }
    std::size_t begin() const { return begin_; }
    std::size_t end() const { return end_; }
    std::size_t size() const { return end_ - begin_; }

    /// Applied pushes so far (readable from any thread).
    std::uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

    /// The slice and its counters; only coherent once run() returned.
    const std::vector<float>& weights() const { return weights_; }
    const ShardMetrics& metrics() const { return metrics_; }

  private:
    void handle_push(Message&& push);
    void handle_pull(Message&& pull);
    void handle_stats(Message&& request);
    void handle_retire(Message&& retire);
    std::uint64_t min_live_clock() const;
    /// Echoes a request's trace identity and timestamps onto its reply
    /// so the requester gets a complete clock-offset sample.
    void stamp_reply_trace(const Message& request, Message& reply) const;
    /// Refreshes ps.ssp.bounce_rate = gated / (gated + applied).
    void update_bounce_rate();
    /// Live staleness exposition: the labeled per-(worker, staleness)
    /// counter, created on first use and cached (the shard is
    /// single-threaded, so a plain map suffices).
    obs::Counter& staleness_counter(std::uint32_t worker,
                                    std::uint64_t staleness);

    const std::size_t index_;
    const std::size_t begin_;
    const std::size_t end_;
    const ShardConfig config_;
    Transport& transport_;
    std::vector<float> weights_;
    std::vector<std::uint64_t> clocks_; ///< applied pushes per worker
    std::vector<bool> retired_;
    std::atomic<std::uint64_t> version_{0};
    ShardMetrics metrics_;
    // Cached registry handles for the per-push exposition (satellite of
    // the tracing tier: staleness and hop decomposition leave the
    // process via /metrics instead of dying in ShardMetrics).
    obs::Histo& staleness_histo_;
    obs::Histo& hop_push_wire_;
    obs::Histo& hop_apply_;
    obs::Gauge& ssp_bounce_rate_;
    std::map<std::pair<std::uint32_t, std::uint64_t>, obs::Counter*>
        staleness_counters_;
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_SHARD_H
