/**
 * @file
 * Communication-precision gradient quantizers — the shared C-term codec.
 *
 * Both executions of the DMGC C axis use the same quantization math:
 *
 *  - the deterministic single-thread *emulation* in core/comm_sgd (the
 *    statistical-efficiency harness), via quantize_gradient(); and
 *  - the real sharded parameter server in src/ps, via the wire codec
 *    encode_gradient() / decode_gradient(), which actually packs the
 *    quantized values into the bytes a network would carry.
 *
 * Three communication precisions, per the paper's Table 1 classification:
 *
 *  - Cs32: full-precision float exchange (classic data-parallel SGD);
 *  - Cs8: linear 8-bit quantization with a per-message scale (QSGD-style
 *    [Alistarh et al.]);
 *  - Cs1: Seide-style 1-bit sign exchange — one shared magnitude (the
 *    mean |g|) plus one sign bit per coordinate.
 *
 * At 8 and 1 bits the *error feedback* residual is what preserves
 * convergence: the untransmitted remainder g - q is carried forward in
 * full precision and added to the next round's gradient. Both quantizers
 * maintain the invariant  q[k] + r[k] == g[k]  (exactly as float
 * arithmetic allows), and decode(encode(g)) is bit-identical to
 * quantize_gradient(g) — asserted by tests/test_ps.cpp.
 */
#ifndef BUCKWILD_PS_QUANTIZE_H
#define BUCKWILD_PS_QUANTIZE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::ps {

/// @throws std::runtime_error unless bits is 1, 8, or 32.
void validate_comm_bits(int bits);

/// Fixed per-message wire overhead: message kind/bits tags, sender,
/// worker clock, element count, and the quantization scale.
inline constexpr std::size_t kWireHeaderBytes = 16;

/// Payload bytes for `count` gradient values at `bits` precision:
/// 4*count (Cs32), count (Cs8), or ceil(count/8) sign bits (Cs1).
std::size_t payload_bytes(std::size_t count, int bits);

/**
 * Quantizes a gradient vector for exchange at `bits` precision and
 * leaves the quantization error in `residual` (if error feedback is on).
 * Returns the vector actually transmitted. This is the seed emulation's
 * quantizer, extracted verbatim: core/comm_sgd's loss traces are
 * bit-identical to its pre-extraction behaviour.
 *
 * @param residual  same length as `g`, or nullptr to discard the error.
 */
std::vector<float> quantize_gradient(const std::vector<float>& g, int bits,
                                     std::vector<float>* residual);

/// A quantized gradient as it travels: the packed payload plus the
/// per-message scale needed to decode it.
struct WireGradient
{
    int bits = 32;
    std::uint32_t count = 0;
    /// Per-message scale: the 1-bit magnitude or the 8-bit quantum
    /// (unused at 32 bits).
    float scale = 0.0f;
    /// Packed values: raw floats (Cs32), int8 levels (Cs8), or sign bits
    /// (Cs1, bit set = negative, 8 coordinates per byte).
    std::vector<std::uint8_t> payload;

    /// Bytes this message occupies on the wire (header + payload).
    std::size_t wire_bytes() const
    {
        return kWireHeaderBytes + payload.size();
    }
};

/**
 * Quantizes and packs `g[0..n)` for transmission; the quantization error
 * is left in `residual[0..n)` when non-null (error feedback). The decoded
 * values are bit-identical to quantize_gradient() on the same input.
 */
WireGradient encode_gradient(const float* g, std::size_t n, int bits,
                             float* residual);

/// Unpacks a wire gradient back into dequantized float values.
std::vector<float> decode_gradient(const WireGradient& wire);

} // namespace buckwild::ps

#endif // BUCKWILD_PS_QUANTIZE_H
