/**
 * @file
 * Communication-precision gradient quantizers — the shared C-term codec.
 *
 * Both executions of the DMGC C axis use the same quantization math:
 *
 *  - the deterministic single-thread *emulation* in core/comm_sgd (the
 *    statistical-efficiency harness), via quantize_gradient(); and
 *  - the real sharded parameter server in src/ps, via the wire codec
 *    encode_gradient() / decode_gradient(), which actually packs the
 *    quantized values into the bytes a network would carry.
 *
 * Four communication codecs, per the paper's Table 1 classification plus
 * the QSGD extension the ROADMAP calls for:
 *
 *  - Cs32 (kDense): full-precision float exchange (classic data-parallel
 *    SGD);
 *  - Cs8 (kLinear): linear 8-bit quantization with a per-message scale;
 *  - Cs1 (kSign): Seide-style 1-bit sign exchange — one shared magnitude
 *    (the mean |g|) plus one sign bit per coordinate;
 *  - CsQ<b> (kQsgd): QSGD [Alistarh et al.] — per-bucket L2 norm,
 *    *stochastic* level rounding onto a (2^(b-1)-1)-level grid via the
 *    lowp/ rounding engine (Eq. 4), one sign bit per coordinate, and
 *    Elias-gamma coded levels. Most coordinates round to small levels,
 *    so the gamma code makes the payload variable-bit: the headline
 *    compression win over Cs8 at b = 4.
 *
 * Below 32 bits the *error feedback* residual is what preserves
 * convergence: the untransmitted remainder g - q is carried forward in
 * full precision and added to the next round's gradient. Every codec
 * maintains the invariant  q[k] + r[k] == g[k]  (exactly as float
 * arithmetic allows), and decode(encode(g)) is bit-identical to the
 * values the encoder subtracted — asserted by tests/test_ps.cpp and
 * tests/test_net.cpp.
 */
#ifndef BUCKWILD_PS_QUANTIZE_H
#define BUCKWILD_PS_QUANTIZE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ps/gradient_view.h"
#include "rng/xorshift.h"

namespace buckwild::ps {

/// @throws std::runtime_error unless bits is 1, 8, or 32.
void validate_comm_bits(int bits);

/// Fixed per-message wire overhead: message kind/bits tags, sender,
/// worker clock, element count, and the quantization scale.
inline constexpr std::size_t kWireHeaderBytes = 16;

/// Coordinates per QSGD norm bucket: one L2 norm is shared by this many
/// consecutive coordinates (Alistarh et al.'s bucketing, d' = 256).
inline constexpr std::size_t kQsgdBucket = 256;

/// How a gradient's coordinates are represented on the wire.
enum class CodecKind : std::uint8_t {
    kDense = 0,  ///< raw float32 (Cs32)
    kLinear = 1, ///< linear int8 levels with one scale (Cs8)
    kSign = 2,   ///< sign bit + shared mean magnitude (Cs1)
    kQsgd = 3,   ///< bucketed L2 norm + stochastic gamma-coded levels
};

/// A communication codec tier: the representation plus its bit depth.
struct Codec
{
    CodecKind kind = CodecKind::kDense;
    int bits = 32;

    /// The classic fixed tiers by bit count: 32 -> Cs32, 8 -> Cs8,
    /// 1 -> Cs1. @throws std::runtime_error on any other count.
    static Codec from_bits(int bits);

    /// CsQ<b>: QSGD with 2^(b-1)-1 magnitude levels, b in [2, 8].
    static Codec qsgd(int bits);

    /// Parses a tier name: "Cs32", "Cs8", "Cs1", "CsQ4" (the "Cs"
    /// prefix is optional, so "--bits 32,8,Q4" style flags parse too).
    /// @throws std::runtime_error on an unknown tier.
    static Codec parse(const std::string& text);

    /// "Cs32" / "Cs8" / "Cs1" / "CsQ<b>".
    std::string name() const;

    bool operator==(const Codec&) const = default;
};

/// @throws std::runtime_error unless kind and bits form a valid tier.
void validate_codec(const Codec& codec);

/// Payload bytes for `count` gradient values at `bits` precision:
/// 4*count (Cs32), count (Cs8), or ceil(count/8) sign bits (Cs1).
/// QSGD payloads are variable-bit and have no closed form.
std::size_t payload_bytes(std::size_t count, int bits);

/**
 * Quantizes a gradient vector for exchange at `bits` precision and
 * leaves the quantization error in `residual` (if error feedback is on).
 * Returns the vector actually transmitted. This is the seed emulation's
 * quantizer, extracted verbatim: core/comm_sgd's loss traces are
 * bit-identical to its pre-extraction behaviour.
 *
 * @param residual  same length as `g`, or nullptr to discard the error.
 */
std::vector<float> quantize_gradient(const std::vector<float>& g, int bits,
                                     std::vector<float>* residual);

/// A quantized gradient as it travels: the packed payload plus the
/// per-message scale (and, for QSGD, per-bucket norms) needed to decode.
struct WireGradient
{
    CodecKind kind = CodecKind::kDense;
    int bits = 32;
    std::uint32_t count = 0;
    /// Per-message scale: the 1-bit magnitude or the 8-bit quantum
    /// (unused at 32 bits and for QSGD, which carries `norms`).
    float scale = 0.0f;
    /// QSGD only: one L2 norm per kQsgdBucket consecutive coordinates.
    std::vector<float> norms;
    /// Packed values: raw floats (Cs32), int8 levels (Cs8), sign bits
    /// (Cs1, bit set = negative, 8 coordinates per byte), or a sign
    /// bitmap followed by the Elias-gamma level bitstream (CsQ).
    std::vector<std::uint8_t> payload;

    // ---- sparse extension (Cs*-sparse / CsQ*-sparse) ----

    /// Sparse marker: the logical coordinate span the indices address.
    /// 0 = dense (the pre-sparse wire format; `count` is the dimension).
    /// Non-zero = sparse: `count` is the nnz, `payload`/`norms` cover
    /// only the nnz value run, and `index_payload` locates each value.
    std::uint32_t dim = 0;
    /// Sparse only: Elias-gamma coded index stream — gamma(index0 + 1)
    /// then gamma(index_j - index_{j-1}) for the strictly ascending
    /// remainder (footnote 6's delta encoding, self-delimiting so i8-
    /// narrow gaps cost 1 bit and wide gaps still fit).
    std::vector<std::uint8_t> index_payload;

    bool sparse() const { return dim != 0; }

    /// Bytes this message occupies on the wire (header + norms +
    /// payload + sparse index stream).
    std::size_t wire_bytes() const
    {
        return kWireHeaderBytes + norms.size() * sizeof(float) +
               payload.size() + index_payload.size();
    }
};

/// A sparse gradient in decoded form: absolute, strictly ascending
/// coordinates over [0, dim) with their dequantized values.
struct SparseGradient
{
    std::uint32_t dim = 0;
    std::vector<std::uint32_t> index;
    std::vector<float> value;

    std::size_t nnz() const { return value.size(); }
};

/**
 * Quantizes and packs `g[0..n)` for transmission; the quantization error
 * is left in `residual[0..n)` when non-null (error feedback). For the
 * fixed tiers the decoded values are bit-identical to quantize_gradient()
 * on the same input. For kQsgd, `rng` supplies the stochastic-rounding
 * dither (Eq. 4); when null a deterministic default-seeded generator is
 * used, so golden tests stay reproducible.
 */
WireGradient encode_gradient(const float* g, std::size_t n,
                             const Codec& codec, float* residual,
                             rng::Xorshift128Plus* rng = nullptr);

/// Fixed-tier convenience overload (32/8/1), preserved bit-identically
/// from before the codec enum existed.
WireGradient encode_gradient(const float* g, std::size_t n, int bits,
                             float* residual);

/// Unpacks a wire gradient back into dequantized float values. A sparse
/// wire gradient densifies to its full `dim` coordinates.
/// @throws std::runtime_error on a malformed payload (size mismatch,
/// truncated bitstream, out-of-range level).
std::vector<float> decode_gradient(const WireGradient& wire);

/**
 * Quantizes and packs a sparse gradient view: the nnz value run goes
 * through the same codec machinery as a dense gradient of length nnz
 * (so CsQ buckets its L2 norms over nnz runs, not coordinates), and the
 * coordinates travel as the Elias-gamma index stream. The view may use
 * any index rep/mode (i8/i16/i32, absolute or delta with padding
 * entries); the wire form is always the gamma gap stream.
 *
 * `residual[0..view.count)` receives the per-entry quantization error,
 * aligned with the view's stored entries (error feedback; padding
 * entries get residual 0). `rng` as in encode_gradient().
 *
 * @throws std::runtime_error on a dense view, a non-ascending index
 * stream, or an index >= view.dim.
 */
WireGradient encode_sparse_gradient(const GradientView& view,
                                    const Codec& codec, float* residual,
                                    rng::Xorshift128Plus* rng = nullptr);

/// Unpacks a sparse wire gradient into absolute (index, value) form.
/// Decoded values are bit-identical to what the encoder subtracted from
/// its residual. @throws std::runtime_error on a dense wire gradient or
/// a malformed index/value payload.
SparseGradient decode_sparse_gradient(const WireGradient& wire);

} // namespace buckwild::ps

#endif // BUCKWILD_PS_QUANTIZE_H
