/**
 * @file
 * Message transport between workers and parameter-server shards, with an
 * injectable fault model.
 *
 * Transport is an interface with two executions:
 *
 *  - InProcTransport: every endpoint is a Mailbox in one process —
 *    threads as the cluster. This is the seed fabric, unchanged.
 *  - SocketTransport (ps/socket_transport.h): endpoints spread across
 *    processes, messages serialized (ps/wire.h) and framed (net/frame.h)
 *    over real TCP connections.
 *
 * Every endpoint (shard, worker, control) owns a mailbox; send() never
 * blocks the receiver's processing and recv() blocks with a timeout.
 * The point of routing all shard traffic through messages — rather than
 * calling shard methods directly — is that the communication layer
 * becomes a swappable, testable component: the FaultModel can delay
 * (latency jitter), reorder (bounded out-of-order delivery), or drop
 * messages, and the training protocol on top must still converge —
 * over either fabric.
 *
 * Reliability is the *protocol's* job, exactly as on a real network:
 * RpcClient implements request/reply with timeout-and-retransmit
 * (drop-with-retry) and token matching, and the shard side deduplicates
 * retransmitted pushes by worker clock, so an applied-but-unacked push
 * is never applied twice.
 */
#ifndef BUCKWILD_PS_TRANSPORT_H
#define BUCKWILD_PS_TRANSPORT_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/tracectx.h"
#include "ps/quantize.h"
#include "rng/xorshift.h"

namespace buckwild::ps {

/// Communication faults injected by the transport, seeded for
/// reproducibility.
struct FaultModel
{
    /// Probability a send is silently dropped (sender learns nothing —
    /// recovery is the RPC layer's timeout-and-retransmit).
    double drop_prob = 0.0;
    /// Max extra delivery latency in microseconds, uniform per message.
    std::size_t jitter_us = 0;
    /// Delivery window: a recv may return any of the first `window`
    /// queued messages (1 = strict FIFO).
    std::size_t reorder_window = 1;
    std::uint64_t seed = 0xFA17;

    bool any() const
    {
        return drop_prob > 0.0 || jitter_us > 0 || reorder_window > 1;
    }
};

/// One message between a worker and a shard.
struct Message
{
    enum class Kind {
        kPush,   ///< worker -> shard: quantized gradient for the shard's slice
        kAck,    ///< shard -> worker: push outcome (accepted / staleness-gated)
        kPull,   ///< worker -> shard: request the current slice
        kModel,  ///< shard -> worker: slice weights + version
        kRetire, ///< worker -> shard: done pushing; drop me from the SSP gate
        kStats,  ///< control -> shard: request counters; reply carries `stats`
        kShutdown, ///< control -> shard: ack, then exit the message loop
    };

    Kind kind = Kind::kPush;
    std::uint32_t sender = 0;  ///< endpoint to reply to
    std::uint64_t token = 0;   ///< request/reply correlation (RpcClient)
    std::uint32_t worker = 0;  ///< logical worker id (clock owner)
    std::uint64_t clock = 0;   ///< worker's round counter (kPush: 1-based)
    std::uint64_t version = 0; ///< shard version (kAck / kModel)
    bool accepted = true;      ///< kAck: false = gated, retry after backoff
    WireGradient gradient;     ///< kPush payload
    std::vector<float> weights; ///< kModel payload
    std::vector<double> stats;  ///< kStats reply: flattened ShardMetrics

    /// Distributed-trace context + timestamps. On the socket fabric this
    /// travels as the optional trailing wire block (ps/wire.h); with an
    /// invalid context nothing is emitted and the frame bytes match the
    /// pre-trace format exactly.
    obs::WireTrace trace;
    /// Local steady clock when this message was delivered (stamped by
    /// the receiving transport; never serialized). 0 = not stamped.
    std::int64_t recv_ts_ns = 0;

    /// True for the kinds a client initiates (a shard replies to these);
    /// the socket transport learns reply routes only from them.
    bool
    is_request() const
    {
        return kind == Kind::kPush || kind == Kind::kPull ||
               kind == Kind::kRetire || kind == Kind::kStats ||
               kind == Kind::kShutdown;
    }

    /// Bytes this message would occupy on an idealized wire (header +
    /// payload, no transport framing) — the byte accounting both fabrics
    /// share so Cs-tier traffic numbers are comparable across them.
    std::size_t wire_bytes() const
    {
        if (kind == Kind::kPush) return gradient.wire_bytes();
        if (kind == Kind::kModel)
            return kWireHeaderBytes + weights.size() * sizeof(float);
        if (kind == Kind::kStats)
            return kWireHeaderBytes + stats.size() * sizeof(double);
        return kWireHeaderBytes;
    }
};

/// A closable MPMC mailbox with optional bounded-reorder delivery.
class Mailbox
{
  public:
    explicit Mailbox(std::size_t reorder_window, std::uint64_t seed)
        : reorder_window_(reorder_window == 0 ? 1 : reorder_window),
          rng_(seed)
    {}

    void push(Message&& message);

    /// Pops one message (any of the first reorder_window, under faults).
    /// Returns false on timeout, or when closed and drained.
    bool pop(Message& out, std::chrono::microseconds timeout);

    void close();
    std::size_t size() const;

  private:
    const std::size_t reorder_window_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<Message> items_;
    rng::Xorshift128Plus rng_; ///< reorder choice; guarded by mutex_
    bool closed_ = false;
};

/**
 * The endpoint-indexed fabric interface: shards at [0, shards), workers
 * and control after them (the ParameterServer defines the layout). The
 * protocol layers (ServerShard, RpcClient, the cluster trainers) are
 * written against this interface and run unchanged over threads or TCP.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    virtual std::size_t endpoints() const = 0;
    virtual const FaultModel& faults() const = 0;

    /**
     * Delivers `message` to endpoint `to` — unless the fault model (or a
     * dead connection) drops it; the sender cannot tell (counted in
     * dropped()). Latency jitter is served on the sender's clock before
     * delivery.
     */
    virtual void send(std::size_t to, Message&& message) = 0;

    /// Receives at endpoint `at`. False on timeout or closed-and-drained.
    virtual bool recv(std::size_t at, Message& out,
                      std::chrono::microseconds timeout) = 0;

    /// Closes every local mailbox: receivers drain, then see closed.
    virtual void close() = 0;
    virtual bool closed() const = 0;

    /// The fabric's expected request/reply latency floor; RpcClient's
    /// per-attempt timeout starts here. In-proc mailboxes answer in
    /// microseconds; a real TCP hop plus shard service time does not —
    /// retransmitting on a mailbox-tuned clock would duplicate nearly
    /// every healthy call.
    virtual std::chrono::microseconds rpc_base_timeout() const
    {
        return std::chrono::microseconds(200);
    }

    // Fabric counters: messages and idealized wire bytes attempted /
    // lost / delivered (Message::wire_bytes accounting on both fabrics).
    virtual std::uint64_t sent() const = 0;
    virtual std::uint64_t dropped() const = 0;
    virtual std::uint64_t sent_bytes() const = 0;
    virtual std::uint64_t recv_bytes() const = 0;
};

/// The seed fabric: every endpoint is a mailbox in this process.
class InProcTransport final : public Transport
{
  public:
    explicit InProcTransport(std::size_t endpoints, FaultModel faults = {});

    std::size_t endpoints() const override { return mailboxes_.size(); }
    const FaultModel& faults() const override { return faults_; }

    void send(std::size_t to, Message&& message) override;
    bool recv(std::size_t at, Message& out,
              std::chrono::microseconds timeout) override;

    void close() override;
    bool closed() const override
    {
        return closed_.load(std::memory_order_acquire);
    }

    std::uint64_t sent() const override { return sent_.load(); }
    std::uint64_t dropped() const override { return dropped_.load(); }
    std::uint64_t sent_bytes() const override { return sent_bytes_.load(); }
    std::uint64_t recv_bytes() const override { return recv_bytes_.load(); }

  private:
    FaultModel faults_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::mutex fault_mutex_; ///< guards fault_rng_
    rng::Xorshift128Plus fault_rng_;
    std::atomic<bool> closed_{false};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> sent_bytes_{0};
    std::atomic<std::uint64_t> recv_bytes_{0};
};

/**
 * Request/reply over the unreliable fabric: sends, waits for the reply
 * carrying the request's token, and retransmits on timeout with capped
 * exponential backoff. One client per thread (it owns its endpoint's
 * recv side while a call is in flight).
 */
class RpcClient
{
  public:
    RpcClient(Transport& transport, std::size_t self)
        : transport_(transport), self_(self)
    {}

    /**
     * Issues `request` to endpoint `to` and returns the matching reply.
     * Stale replies (retransmission duplicates, reordered leftovers) are
     * discarded by token.
     * @throws std::runtime_error when the transport closes mid-call or
     *         the retransmission cap is exhausted.
     */
    Message call(std::size_t to, Message request);

    /// Retransmissions performed so far (drop-with-retry at work).
    std::uint64_t retries() const { return retries_; }

  private:
    Transport& transport_;
    std::size_t self_;
    std::uint64_t next_token_ = 1;
    std::uint64_t retries_ = 0;
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_TRANSPORT_H
