/**
 * @file
 * Umbrella header for the sharded parameter-server training subsystem.
 *
 * From a problem to a served, cluster-trained model:
 *
 *     auto problem = dataset::generate_logistic_dense(64, 4096, 42);
 *
 *     ps::ClusterConfig cfg;
 *     cfg.workers = 4;
 *     cfg.shards = 2;
 *     cfg.codec = ps::Codec::from_bits(1); // Cs1: sign bits + magnitude
 *     cfg.tau = 8;                  // staleness bound (SSP)
 *     cfg.faults.drop_prob = 0.01;  // the fabric may lose messages
 *
 * The same cluster runs as real processes over loopback TCP via
 * ps::train_cluster_multiprocess (ps/node.h), or hand-assembled across
 * machines with `buckwild_cluster --listen / --connect / --control`.
 *
 *     serve::ModelRegistry registry;
 *     ps::ClusterResult r = ps::train_cluster(problem, cfg, &registry);
 *     // registry now holds the trained model — serve::Server instances
 *     // reading it hot-swapped onto it; r.metrics has the staleness
 *     // histogram, wire bytes, drop/retry counts, GNPS.
 */
#ifndef BUCKWILD_PS_PS_H
#define BUCKWILD_PS_PS_H

#include "ps/cluster.h"
#include "ps/metrics.h"
#include "ps/node.h"
#include "ps/quantize.h"
#include "ps/server.h"
#include "ps/shard.h"
#include "ps/socket_transport.h"
#include "ps/transport.h"
#include "ps/wire.h"

#endif // BUCKWILD_PS_PS_H
