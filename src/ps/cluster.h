/**
 * @file
 * ClusterTrainer — data-parallel SGD over the sharded parameter server.
 *
 * W worker threads each own a contiguous slice of the training examples.
 * A worker's round: pull every shard's slice (assembling its local model
 * replica), compute a mini-batch gradient, add the carried error-feedback
 * residual, quantize each shard's slice of it to the communication
 * precision (Cs32 / Cs8 / Cs1, via ps/quantize), and push the wire
 * gradients; a push bounced by the staleness gate is retried after a
 * short backoff. This is the *executed* version of the DMGC C axis that
 * core/comm_sgd only emulates: real threads, real message traffic, real
 * asynchrony — with convergence preserved by the same error-feedback
 * trick (Seide et al.) the emulation validates statistically.
 *
 * When a serve::ModelRegistry is supplied, a publisher on the caller's
 * thread checkpoints the shards every `publish_every` applied worker
 * rounds (and once at the end) straight into the registry — a serving
 * cluster hot-swaps onto the training cluster's progress with no file in
 * between.
 */
#ifndef BUCKWILD_PS_CLUSTER_H
#define BUCKWILD_PS_CLUSTER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/loss.h"
#include "core/model_io.h"
#include "dataset/problem.h"
#include "ps/server.h"
#include "serve/model_registry.h"
#include "serve/precision.h"

namespace buckwild::ps {

/// Configuration of a training cluster run.
struct ClusterConfig
{
    std::size_t workers = 2;
    std::size_t shards = 2;
    /// Communication codec: Cs32 / Cs8 / Cs1 / CsQ<b> (ps/quantize.h).
    Codec codec;
    /// Carry the quantization error forward (essential below 32 bits).
    bool error_feedback = true;
    /// Rounds (mini-batch pushes) per worker.
    std::size_t rounds = 200;
    /// Examples per mini-batch gradient.
    std::size_t batch = 16;
    /// Staleness bound: max rounds a worker may run ahead of the slowest.
    std::size_t tau = 8;
    float step_size = 0.25f;
    core::Loss loss = core::Loss::kLogistic;
    simd::Impl impl = simd::best_impl();
    FaultModel faults;
    /// Publish a checkpoint into the registry every this many applied
    /// worker rounds (0 = only the final publish). Ignored without a
    /// registry.
    std::size_t publish_every = 0;
    serve::Precision publish_precision = serve::Precision::kFloat32;

    // ---- distributed observability (multi-process runs) ----

    /// When non-empty, every --spawn child enables tracing, tags itself
    /// (shard<i> / worker<i>, the parent as control) and writes
    /// <trace_dir>/<role>.trace.json on exit — the per-process inputs
    /// buckwild_tracemerge stitches into one fleet timeline.
    std::string trace_dir;
    /// When >= 0, every --spawn child serves /metrics on an ephemeral
    /// port and the parent re-exposes the merged, node-labeled fleet
    /// scrape on this port (0 = ephemeral, printed at startup) for the
    /// duration of the run.
    int fleet_port = -1;
};

/// Outcome of a cluster run: convergence, traffic, and cluster metrics.
struct ClusterResult
{
    /// Communication-precision label, e.g. "Cs1" (matching the emulated
    /// trainer's signatures).
    std::string comm;
    double final_loss = 0.0;
    double accuracy = 0.0;
    /// Wire bytes one worker pushes per round (all shard slices).
    /// Computed statically for the fixed-size codecs; *measured* from
    /// the encoded traffic for the variable-bit CsQ tiers.
    double bytes_per_round = 0.0;
    /// Worker rounds applied across the cluster.
    std::uint64_t rounds = 0;
    double wall_seconds = 0.0;
    /// The final model with its async-C DMGC provenance — ready for
    /// core::save_model_file or another registry publish.
    core::SavedModel checkpoint;
    /// Shard, fabric, and worker counters.
    PsMetrics metrics;
    /// Registry versions published during the run (last one is final).
    std::vector<std::uint64_t> published_versions;
    /// The port the merged fleet /metrics actually bound during a
    /// multi-process run (-1 = fleet view off or bind failed).
    int fleet_port = -1;
    /// The final merged, node-labeled Prometheus exposition body taken
    /// while the fleet was still up (empty = fleet view off). Also
    /// written to `<trace_dir>/fleet.prom` when tracing to a directory.
    std::string fleet_metrics;
};

/**
 * Trains on `problem` with a freshly started parameter-server cluster
 * and returns once every worker finished its rounds and the shards
 * stopped. Publishes into `registry` when non-null.
 *
 * @throws std::runtime_error on an invalid configuration.
 */
ClusterResult train_cluster(const dataset::DenseProblem& problem,
                            const ClusterConfig& config,
                            serve::ModelRegistry* registry = nullptr);

/**
 * The sparse-workload sibling: workers run the sparse round loop
 * (touched-coordinate accumulation, sparse error feedback) and every
 * push on the fabric is a quantized sparse gradient — nnz values plus an
 * Elias-gamma index-gap stream — applied at the shards through the
 * gather-scatter sparse kernels. bytes_per_round is always measured
 * (sparse traffic is nnz-dependent at every tier) and the checkpoint
 * carries the sparse DMGC signature row.
 */
ClusterResult train_cluster(const dataset::SparseProblem& problem,
                            const ClusterConfig& config,
                            serve::ModelRegistry* registry = nullptr);

} // namespace buckwild::ps

#endif // BUCKWILD_PS_CLUSTER_H
