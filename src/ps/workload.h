/**
 * @file
 * Per-workload-kind facts shared by the cluster assemblers — the small
 * surface on which dense and sparse problems differ, so the trainer and
 * the fork choreography are each written once and templated over the
 * problem type.
 */
#ifndef BUCKWILD_PS_WORKLOAD_H
#define BUCKWILD_PS_WORKLOAD_H

#include <cstddef>

#include "dataset/problem.h"

namespace buckwild::ps::detail {

inline std::size_t
example_count(const dataset::DenseProblem& problem)
{
    return problem.examples;
}

inline std::size_t
example_count(const dataset::SparseProblem& problem)
{
    return problem.examples();
}

/// Gradient numbers one example contributes: the full dimension for a
/// dense row, the mean nnz for a sparse one.
inline double
numbers_per_example(const dataset::DenseProblem& problem)
{
    return static_cast<double>(problem.dim);
}

inline double
numbers_per_example(const dataset::SparseProblem& problem)
{
    return static_cast<double>(problem.nnz()) /
           static_cast<double>(problem.examples());
}

constexpr bool
is_sparse_workload(const dataset::DenseProblem&)
{
    return false;
}

constexpr bool
is_sparse_workload(const dataset::SparseProblem&)
{
    return true;
}

} // namespace buckwild::ps::detail

#endif // BUCKWILD_PS_WORKLOAD_H
