/**
 * @file
 * SharedRandom — the §5.2 shared-randomness state machine, hoisted out of
 * core/engine.h so every layer (engine AXPY dither, ps encode, serve
 * publish) can reuse it.
 *
 * One vectorized XORSHIFT generator produces a 256-bit block (8 x 32-bit
 * words); the block is *shared* across all the rounding decisions of an
 * operation (an AXPY, an array quantization) instead of drawing a fresh
 * word per write, and refreshed every `refresh_iters` operations. The
 * per-thread seeding expression is preserved verbatim from the engine so
 * existing loss traces stay bit-identical.
 */
#ifndef BUCKWILD_LOWP_SHARED_RANDOM_H
#define BUCKWILD_LOWP_SHARED_RANDOM_H

#include <cstddef>
#include <cstdint>

#include "rng/avx2_xorshift.h"

namespace buckwild::lowp {

/// A periodically-refreshed 256-bit block of shared dither randomness.
class SharedRandom
{
  public:
    SharedRandom(std::uint64_t seed, std::size_t refresh_iters)
        : refresh_iters_(refresh_iters), gen_(seed)
    {
        refresh();
    }

    /// Seed expression used for worker `tid` of a run seeded with `seed`
    /// (kept verbatim from the original engine implementation).
    static std::uint64_t
    worker_seed(std::uint64_t seed, std::size_t tid)
    {
        return seed * 0x9E3779B9u + 0xB5297A4Du * (tid + 1);
    }

    /// Draws a fresh block immediately.
    void
    refresh()
    {
        gen_.fill(words_, 8);
        since_refresh_ = 0;
    }

    /// Called once per operation; refreshes every `refresh_iters` calls.
    /// Returns true when this call refreshed the block.
    bool
    tick()
    {
        if (++since_refresh_ >= refresh_iters_) {
            refresh();
            return true;
        }
        return false;
    }

    /// The current 8-word block (stable until the next refresh/tick).
    const std::uint32_t* words() const { return words_; }

  private:
    std::size_t refresh_iters_;
    std::size_t since_refresh_ = 0;
    rng::Avx2Xorshift128Plus gen_;
    alignas(32) std::uint32_t words_[8] = {};
};

} // namespace buckwild::lowp

#endif // BUCKWILD_LOWP_SHARED_RANDOM_H
