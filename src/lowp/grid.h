/**
 * @file
 * GridSpec — the one description of a low-precision value grid.
 *
 * Every quantization site in the tree (dataset D-writes, engine M-writes
 * and G-intermediates, nn weight/activation grids, the ps C-codec, serve
 * publish-time Ms re-quantization) rounds onto *some* uniform grid: a
 * quantum (the real value of one raw step) plus raw saturation bounds.
 * Historically each subsystem carried its own struct for this
 * (`fixed::FixedFormat`, `nn::QuantSpec`, ad-hoc bits/range pairs);
 * GridSpec is the common denominator they all lower to before rounding.
 *
 * Two saturation conventions exist in the wild and both are expressible:
 *
 *  - `from_fixed()` — two's-complement asymmetric bounds
 *    [-2^(b-1), 2^(b-1)-1], matching the hardware pack-with-saturation
 *    instructions the SIMD kernels use (fixed::FixedFormat semantics);
 *  - `symmetric()` — symmetric bounds ±(2^(b-1)-1) over [-range, range],
 *    the float-storage emulation convention (nn::QuantSpec and the
 *    engine's G-term), where -2^(b-1) is deliberately unreachable so
 *    negation never saturates.
 *
 * The substrate makes the choice *explicit in the spec* instead of
 * implicit in five scattered clamp expressions; tests/test_lowp.cpp pins
 * both conventions.
 */
#ifndef BUCKWILD_LOWP_GRID_H
#define BUCKWILD_LOWP_GRID_H

#include "fixed/fixed_point.h"

namespace buckwild::lowp {

/// Rounding mode for grid writes: biased nearest-neighbor, or the
/// unbiased stochastic rounding of Eq. (4), Q(x) = floor(x/q + u).
enum class Round {
    kNearest,    ///< biased
    kStochastic, ///< unbiased, Eq. (4)
};

/// "nearest" / "stochastic".
const char* to_string(Round mode);

/// A uniform quantization grid: quantum plus raw saturation bounds.
struct GridSpec
{
    double quantum = 1.0; ///< real value of one raw step
    long raw_min = 0;     ///< smallest representable raw value
    long raw_max = 0;     ///< largest representable raw value

    /// The quantum as the float the float-domain paths multiply by.
    float quantum_f() const { return static_cast<float>(quantum); }

    /// Asymmetric two's-complement grid of a fixed-point format.
    static GridSpec
    from_fixed(const fixed::FixedFormat& fmt)
    {
        return {fmt.quantum(), fmt.raw_min(), fmt.raw_max()};
    }

    /// Symmetric b-bit grid over [-range, range] (nn / G-term semantics):
    /// quantum = range / 2^(b-1), bounds ±(2^(b-1) - 1).
    static GridSpec
    symmetric(int bits, double range)
    {
        const long lim = (1L << (bits - 1)) - 1;
        return {range / static_cast<double>(1L << (bits - 1)), -lim, lim};
    }

    bool operator==(const GridSpec&) const = default;
};

} // namespace buckwild::lowp

#endif // BUCKWILD_LOWP_GRID_H
