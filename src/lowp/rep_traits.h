/**
 * @file
 * Rep traits — compile-time facts about the storage representations the
 * DMGC signature can pick (int8 / int16 / float values, u8 / u16 / u32
 * sparse indices), plus the rep-parameterized quantum and quantize-one
 * helpers that used to live as private copies in core/engine.h
 * (`model_format`, `model_quantum`) and dataset/quantized.h
 * (`detail::quantum_of`, `detail::quantize_value`).
 */
#ifndef BUCKWILD_LOWP_REP_TRAITS_H
#define BUCKWILD_LOWP_REP_TRAITS_H

#include <cstdint>
#include <type_traits>

#include "fixed/fixed_point.h"
#include "lowp/grid.h"
#include "lowp/round.h"

namespace buckwild::lowp {

/// True for the full-precision (pass-through) value rep.
template <typename Rep>
inline constexpr bool is_float_rep = std::is_same_v<Rep, float>;

/// Storage width of a value rep in bits.
template <typename Rep>
inline constexpr int rep_bits = static_cast<int>(sizeof(Rep)) * 8;

/// Library-default fixed-point format of a value rep; float reps report
/// the {32, 0} pass-through format (quantum 1, never used for rounding).
template <typename Rep>
fixed::FixedFormat
rep_default_format()
{
    if constexpr (is_float_rep<Rep>)
        return fixed::FixedFormat{32, 0};
    else
        return fixed::default_format(rep_bits<Rep>);
}

/// Quantum of a rep under `fmt`: fixed reps read the format; float is
/// identity (quantum 1).
template <typename Rep>
float
rep_quantum(const fixed::FixedFormat& fmt)
{
    if constexpr (is_float_rep<Rep>) {
        (void)fmt;
        return 1.0f;
    } else {
        return static_cast<float>(fmt.quantum());
    }
}

/// Quantum of a rep under its library-default format.
template <typename Rep>
float
rep_default_quantum()
{
    if constexpr (is_float_rep<Rep>)
        return 1.0f;
    else
        return static_cast<float>(rep_default_format<Rep>().quantum());
}

/// Biased-quantizes one value to rep `Rep` under `fmt`; float reps pass
/// through unchanged.
template <typename Rep>
Rep
quantize_value(float v, const fixed::FixedFormat& fmt)
{
    if constexpr (is_float_rep<Rep>) {
        (void)fmt;
        return v;
    } else {
        return static_cast<Rep>(round_biased_raw(
            static_cast<double>(v), GridSpec::from_fixed(fmt)));
    }
}

} // namespace buckwild::lowp

#endif // BUCKWILD_LOWP_REP_TRAITS_H
