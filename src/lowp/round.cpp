/**
 * @file
 * Array rounding kernels: scalar reference implementations plus the AVX2
 * fast paths (§5.2 vectorized rounding applied to every array-quantizing
 * call site, not just the SGD inner loop), registered as "lowp.*" ops in
 * the process-wide KernelLibrary. Public entries resolve once and cache
 * the function pointer behind a kernel_generation() check, so a
 * force_impl() (tests, BUCKWILD_KERNEL_IMPL) re-steers them while the
 * steady-state cost stays one indirect call.
 *
 * Bit-identity notes — the AVX2 paths must agree with the scalar
 * references bit-for-bit, which rests on three identities:
 *
 *  - `trunc(s + copysign(0.5, s)) == lround(s)` exactly, whenever the
 *    addition is exact. Every grid in the tree has a power-of-two
 *    quantum, so s = x / quantum is an exactly-scaled float (<= 24
 *    significand bits); adding 0.5 spans at most ~30 bits, well inside
 *    double's 53. (quantize_biased)
 *  - `_mm256_cvtps_epi32` rounds half-to-even under the default MXCSR
 *    rounding mode, exactly matching `nearbyintf` + int conversion.
 *    (round_levels_i8)
 *  - clamping in the wide float/double domain *before* the int
 *    conversion equals converting then saturating, because the clamp
 *    bounds are themselves exactly representable grid endpoints — and it
 *    avoids the 0x80000000 "integer indefinite" result on overflow.
 *
 * NaN conventions follow the scalar code each kernel replaced:
 * `max_abs` ignores NaN elements (std::max(acc, fabs) keeps acc when fabs
 * is NaN — mirrored by `_mm256_max_ps(abs, acc)`, which returns the
 * second operand on unordered compare), and `quantize_sign_1bit` treats
 * NaN as negative (`!(g >= 0)` — mirrored by `_CMP_NGE_UQ`).
 */
#include "lowp/round.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "simd/cpu.h"
#include "simd/registry.h"

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace buckwild::lowp {

const char*
to_string(Round mode)
{
    switch (mode) {
    case Round::kNearest: return "nearest";
    case Round::kStochastic: return "stochastic";
    }
    return "unknown";
}

namespace scalar {

template <typename Rep>
static void
quantize_biased_impl(const float* in, Rep* out, std::size_t n,
                     const GridSpec& grid)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<Rep>(
            round_biased_raw(static_cast<double>(in[i]), grid));
}

void
quantize_biased(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid)
{
    quantize_biased_impl(in, out, n, grid);
}

void
quantize_biased(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid)
{
    quantize_biased_impl(in, out, n, grid);
}

template <typename Rep>
static void
quantize_shared_impl(const float* in, Rep* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8])
{
    const float q = grid.quantum_f();
    const float hi = static_cast<float>(grid.raw_max);
    const float lo = static_cast<float>(grid.raw_min);
    float unit[8];
    for (int w = 0; w < 8; ++w)
        unit[w] = rng::to_unit_float(words[w]);
    for (std::size_t i = 0; i < n; ++i) {
        float raw = std::floor(in[i] / q + unit[i % 8]);
        if (raw > hi) raw = hi;
        if (raw < lo) raw = lo;
        out[i] = static_cast<Rep>(static_cast<int>(raw));
    }
}

void
quantize_shared(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    quantize_shared_impl(in, out, n, grid, words);
}

void
quantize_shared(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    quantize_shared_impl(in, out, n, grid, words);
}

template <typename Rep>
static void
dequantize_impl(const Rep* in, float* out, std::size_t n,
                const GridSpec& grid)
{
    const float q = grid.quantum_f();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(in[i]) * q;
}

void
dequantize(const std::int8_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    dequantize_impl(in, out, n, grid);
}

void
dequantize(const std::int16_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    dequantize_impl(in, out, n, grid);
}

float
max_abs(const float* g, std::size_t n)
{
    float maxabs = 0.0f;
    for (std::size_t k = 0; k < n; ++k)
        maxabs = std::max(maxabs, std::fabs(g[k]));
    return maxabs;
}

void
round_levels_i8(const float* g, std::size_t n, float scale,
                std::int8_t* levels, float* q, float* residual)
{
    for (std::size_t k = 0; k < n; ++k) {
        const float level = std::nearbyintf(g[k] / scale);
        q[k] = level * scale;
        if (levels != nullptr)
            levels[k] = static_cast<std::int8_t>(level);
        if (residual != nullptr)
            residual[k] = g[k] - q[k];
    }
}

void
quantize_sign_1bit(const float* g, std::size_t n, float scale, float* q,
                   float* residual, std::uint8_t* payload)
{
    for (std::size_t k = 0; k < n; ++k) {
        const bool negative = !(g[k] >= 0.0f);
        q[k] = negative ? -scale : scale;
        if (payload != nullptr && negative)
            payload[k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
        if (residual != nullptr)
            residual[k] = g[k] - q[k];
    }
}

} // namespace scalar

namespace {

template <typename Rep>
void
quantize_unbiased_impl(const float* in, Rep* out, std::size_t n,
                       const GridSpec& grid, rng::RandomWordSource& source)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<Rep>(round_unbiased_raw(
            static_cast<double>(in[i]), grid, source.next_unit_float()));
}

} // namespace

void
quantize_unbiased(const float* in, std::int8_t* out, std::size_t n,
                  const GridSpec& grid, rng::RandomWordSource& source)
{
    quantize_unbiased_impl(in, out, n, grid, source);
}

void
quantize_unbiased(const float* in, std::int16_t* out, std::size_t n,
                  const GridSpec& grid, rng::RandomWordSource& source)
{
    quantize_unbiased_impl(in, out, n, grid, source);
}

// ---------------------------------------------------------------------
// AVX2 variants (compiled only when the build carries AVX2 codegen)
// ---------------------------------------------------------------------

#ifdef __AVX2__

namespace avx2 {

namespace {

/// lround of 4 doubles already divided by the quantum: add copysign(0.5)
/// and truncate, clamping in the double domain first.
inline __m128i
lround4_clamped(__m256d s, __m256d lo, __m256d hi)
{
    const __m256d signmask = _mm256_set1_pd(-0.0);
    const __m256d half = _mm256_or_pd(_mm256_and_pd(s, signmask),
                                      _mm256_set1_pd(0.5));
    __m256d t = _mm256_add_pd(s, half);
    t = _mm256_min_pd(_mm256_max_pd(t, lo), hi);
    return _mm256_cvttpd_epi32(t);
}

inline void
store4_i16(std::int16_t* out, __m128i v32)
{
    const __m128i v16 = _mm_packs_epi32(v32, v32);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out), v16);
}

inline void
store4_i8(std::int8_t* out, __m128i v32)
{
    const __m128i v16 = _mm_packs_epi32(v32, v32);
    const __m128i v8 = _mm_packs_epi16(v16, v16);
    const int packed = _mm_cvtsi128_si32(v8);
    std::memcpy(out, &packed, 4);
}

/// 8 int32 lanes -> 8 int16 values, preserving element order.
inline __m128i
pack8_i16(__m256i v32)
{
    const __m128i lo = _mm256_castsi256_si128(v32);
    const __m128i hi = _mm256_extracti128_si256(v32, 1);
    return _mm_packs_epi32(lo, hi);
}

template <typename Rep>
void
quantize_biased_impl(const float* in, Rep* out, std::size_t n,
                     const GridSpec& grid)
{
    const __m256d qinv = _mm256_set1_pd(1.0 / grid.quantum);
    const __m256d lo = _mm256_set1_pd(static_cast<double>(grid.raw_min));
    const __m256d hi = _mm256_set1_pd(static_cast<double>(grid.raw_max));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d x =
            _mm256_cvtps_pd(_mm_loadu_ps(in + i));
        const __m128i raw = lround4_clamped(_mm256_mul_pd(x, qinv), lo, hi);
        if constexpr (sizeof(Rep) == 1)
            store4_i8(out + i, raw);
        else
            store4_i16(out + i, raw);
    }
    for (; i < n; ++i)
        out[i] = static_cast<Rep>(
            round_biased_raw(static_cast<double>(in[i]), grid));
}

template <typename Rep>
void
quantize_shared_impl(const float* in, Rep* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8])
{
    alignas(32) float unit[8];
    for (int w = 0; w < 8; ++w)
        unit[w] = rng::to_unit_float(words[w]);
    const __m256 u = _mm256_load_ps(unit);
    const __m256 qinv = _mm256_set1_ps(1.0f / grid.quantum_f());
    const __m256 lo = _mm256_set1_ps(static_cast<float>(grid.raw_min));
    const __m256 hi = _mm256_set1_ps(static_cast<float>(grid.raw_max));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(in + i);
        __m256 raw = _mm256_floor_ps(_mm256_add_ps(_mm256_mul_ps(x, qinv), u));
        raw = _mm256_min_ps(_mm256_max_ps(raw, lo), hi);
        const __m128i v16 = pack8_i16(_mm256_cvttps_epi32(raw));
        if constexpr (sizeof(Rep) == 1)
            _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                             _mm_packs_epi16(v16, v16));
        else
            _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v16);
    }
    // tail keeps the dither phase: element k uses words[k % 8]
    const float q = grid.quantum_f();
    const float hif = static_cast<float>(grid.raw_max);
    const float lof = static_cast<float>(grid.raw_min);
    for (; i < n; ++i) {
        float raw = std::floor(in[i] / q + unit[i % 8]);
        if (raw > hif) raw = hif;
        if (raw < lof) raw = lof;
        out[i] = static_cast<Rep>(static_cast<int>(raw));
    }
}

} // namespace

void
quantize_biased(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid)
{
    quantize_biased_impl(in, out, n, grid);
}

void
quantize_biased(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid)
{
    quantize_biased_impl(in, out, n, grid);
}

void
quantize_shared(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    quantize_shared_impl(in, out, n, grid, words);
}

void
quantize_shared(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    quantize_shared_impl(in, out, n, grid, words);
}

void
dequantize(const std::int8_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    const __m256 q = _mm256_set1_ps(grid.quantum_f());
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i raw8 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
        const __m256 x = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw8));
        _mm256_storeu_ps(out + i, _mm256_mul_ps(x, q));
    }
    for (; i < n; ++i)
        out[i] = static_cast<float>(in[i]) * grid.quantum_f();
}

void
dequantize(const std::int16_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    const __m256 q = _mm256_set1_ps(grid.quantum_f());
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i raw16 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
        const __m256 x = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(raw16));
        _mm256_storeu_ps(out + i, _mm256_mul_ps(x, q));
    }
    for (; i < n; ++i)
        out[i] = static_cast<float>(in[i]) * grid.quantum_f();
}

float
max_abs(const float* g, std::size_t n)
{
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 a = _mm256_and_ps(_mm256_loadu_ps(g + i), absmask);
        // operand order keeps std::max's ignore-NaN behaviour: max_ps
        // returns the second operand (acc) on unordered compare
        acc = _mm256_max_ps(a, acc);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    float maxabs = 0.0f;
    for (float lane : lanes)
        maxabs = std::max(maxabs, lane);
    for (; i < n; ++i)
        maxabs = std::max(maxabs, std::fabs(g[i]));
    return maxabs;
}

void
round_levels_i8(const float* g, std::size_t n, float scale,
                std::int8_t* levels, float* q, float* residual)
{
    // The reference loop (div / nearbyintf / cast / sub) is exactly the
    // shape GCC auto-vectorizes under -mavx2 — it compiles to a 32-wide
    // vdivps/vroundps/vpackuswb pipeline that a hand-written 16-wide
    // kernel measurably loses to (see bench_lowp_round). Reuse it rather
    // than re-deriving the compiler's schedule by hand; the hand kernels
    // above cover the loops auto-vectorization cannot handle (the max_abs
    // reduction, the branchy 1-bit codec, the double-domain biased path).
    scalar::round_levels_i8(g, n, scale, levels, q, residual);
}

void
quantize_sign_1bit(const float* g, std::size_t n, float scale, float* q,
                   float* residual, std::uint8_t* payload)
{
    const __m256 zero = _mm256_setzero_ps();
    const __m256 pos = _mm256_set1_ps(scale);
    const __m256 neg = _mm256_set1_ps(-scale);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(g + i);
        // !(g >= 0): NGE unordered-quiet, so NaN counts as negative
        const __m256 nge = _mm256_cmp_ps(x, zero, _CMP_NGE_UQ);
        const __m256 qv = _mm256_blendv_ps(pos, neg, nge);
        _mm256_storeu_ps(q + i, qv);
        if (payload != nullptr)
            payload[i / 8] |=
                static_cast<std::uint8_t>(_mm256_movemask_ps(nge));
        if (residual != nullptr)
            _mm256_storeu_ps(residual + i, _mm256_sub_ps(x, qv));
    }
    for (; i < n; ++i) {
        const bool negative = !(g[i] >= 0.0f);
        q[i] = negative ? -scale : scale;
        if (payload != nullptr && negative)
            payload[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        if (residual != nullptr)
            residual[i] = g[i] - q[i];
    }
}

} // namespace avx2

#endif // __AVX2__

// ---------------------------------------------------------------------
// Registry wiring
// ---------------------------------------------------------------------

namespace {

// Registered-signature aliases (the array parameter decays to a pointer).
using QuantizeI8Fn = void (*)(const float*, std::int8_t*, std::size_t,
                              const GridSpec&);
using QuantizeI16Fn = void (*)(const float*, std::int16_t*, std::size_t,
                               const GridSpec&);
using SharedI8Fn = void (*)(const float*, std::int8_t*, std::size_t,
                            const GridSpec&, const std::uint32_t*);
using SharedI16Fn = void (*)(const float*, std::int16_t*, std::size_t,
                             const GridSpec&, const std::uint32_t*);
using DequantizeI8Fn = void (*)(const std::int8_t*, float*, std::size_t,
                                const GridSpec&);
using DequantizeI16Fn = void (*)(const std::int16_t*, float*, std::size_t,
                                 const GridSpec&);
using MaxAbsFn = float (*)(const float*, std::size_t);
using RoundLevelsFn = void (*)(const float*, std::size_t, float,
                               std::int8_t*, float*, float*);
using Sign1BitFn = void (*)(const float*, std::size_t, float, float*,
                            float*, std::uint8_t*);

#ifdef __AVX2__
bool
lowp_avx2_ok()
{
    return simd::host_cpu().avx2;
}
#endif

template <typename Fn>
void
add_op(simd::KernelLibrary& lib, const char* op, Fn ref_fn, Fn avx2_fn)
{
    lib.add(op, simd::Impl::kReference,
            reinterpret_cast<void*>(ref_fn));
#ifdef __AVX2__
    lib.add(op, simd::Impl::kAvx2, reinterpret_cast<void*>(avx2_fn),
            &lowp_avx2_ok);
#else
    (void)avx2_fn;
#endif
}

#ifdef __AVX2__
#define BUCKWILD_LOWP_AVX2(fn) (fn)
#else
#define BUCKWILD_LOWP_AVX2(fn) (nullptr)
#endif

void
do_register(simd::KernelLibrary& lib)
{
    add_op<QuantizeI8Fn>(
        lib, "lowp.quantize_biased_i8", &scalar::quantize_biased,
        BUCKWILD_LOWP_AVX2(&avx2::quantize_biased));
    add_op<QuantizeI16Fn>(
        lib, "lowp.quantize_biased_i16", &scalar::quantize_biased,
        BUCKWILD_LOWP_AVX2(&avx2::quantize_biased));
    add_op<SharedI8Fn>(
        lib, "lowp.quantize_shared_i8", &scalar::quantize_shared,
        BUCKWILD_LOWP_AVX2(&avx2::quantize_shared));
    add_op<SharedI16Fn>(
        lib, "lowp.quantize_shared_i16", &scalar::quantize_shared,
        BUCKWILD_LOWP_AVX2(&avx2::quantize_shared));
    add_op<DequantizeI8Fn>(
        lib, "lowp.dequantize_i8", &scalar::dequantize,
        BUCKWILD_LOWP_AVX2(&avx2::dequantize));
    add_op<DequantizeI16Fn>(
        lib, "lowp.dequantize_i16", &scalar::dequantize,
        BUCKWILD_LOWP_AVX2(&avx2::dequantize));
    add_op<MaxAbsFn>(lib, "lowp.max_abs", &scalar::max_abs,
                     BUCKWILD_LOWP_AVX2(&avx2::max_abs));
    add_op<RoundLevelsFn>(
        lib, "lowp.round_levels_i8", &scalar::round_levels_i8,
        BUCKWILD_LOWP_AVX2(&avx2::round_levels_i8));
    add_op<Sign1BitFn>(
        lib, "lowp.quantize_sign_1bit", &scalar::quantize_sign_1bit,
        BUCKWILD_LOWP_AVX2(&avx2::quantize_sign_1bit));
}

#undef BUCKWILD_LOWP_AVX2

/// One resolved-pointer cache per public entry. The pointer revalidates
/// against kernel_generation(), so a force_impl() in a test re-steers
/// every entry while the steady state costs one relaxed load + compare.
struct CachedKernel
{
    std::atomic<void*> fn{nullptr};
    std::atomic<std::uint64_t> gen{0};

    template <typename Fn>
    Fn
    get(const char* op)
    {
        const std::uint64_t current = simd::kernel_generation();
        void* p = fn.load(std::memory_order_acquire);
        if (p == nullptr ||
            gen.load(std::memory_order_acquire) != current) {
            register_lowp_kernels();
            p = simd::KernelLibrary::instance().resolve_auto(op).fn;
            fn.store(p, std::memory_order_release);
            gen.store(current, std::memory_order_release);
        }
        return reinterpret_cast<Fn>(p);
    }
};

} // namespace

void
register_lowp_kernels()
{
    static const bool once = [] {
        do_register(simd::KernelLibrary::instance());
        return true;
    }();
    (void)once;
}

bool
vectorized()
{
    register_lowp_kernels();
    return simd::is_vectorized(simd::KernelLibrary::instance()
                                   .resolve_auto("lowp.quantize_biased_i8")
                                   .impl);
}

void
quantize_biased(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid)
{
    static CachedKernel cache;
    cache.get<QuantizeI8Fn>("lowp.quantize_biased_i8")(in, out, n, grid);
}

void
quantize_biased(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid)
{
    static CachedKernel cache;
    cache.get<QuantizeI16Fn>("lowp.quantize_biased_i16")(in, out, n, grid);
}

void
quantize_shared(const float* in, std::int8_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    static CachedKernel cache;
    cache.get<SharedI8Fn>("lowp.quantize_shared_i8")(in, out, n, grid,
                                                     words);
}

void
quantize_shared(const float* in, std::int16_t* out, std::size_t n,
                const GridSpec& grid, const std::uint32_t words[8])
{
    static CachedKernel cache;
    cache.get<SharedI16Fn>("lowp.quantize_shared_i16")(in, out, n, grid,
                                                       words);
}

void
dequantize(const std::int8_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    static CachedKernel cache;
    cache.get<DequantizeI8Fn>("lowp.dequantize_i8")(in, out, n, grid);
}

void
dequantize(const std::int16_t* in, float* out, std::size_t n,
           const GridSpec& grid)
{
    static CachedKernel cache;
    cache.get<DequantizeI16Fn>("lowp.dequantize_i16")(in, out, n, grid);
}

float
max_abs(const float* g, std::size_t n)
{
    static CachedKernel cache;
    return cache.get<MaxAbsFn>("lowp.max_abs")(g, n);
}

void
round_levels_i8(const float* g, std::size_t n, float scale,
                std::int8_t* levels, float* q, float* residual)
{
    static CachedKernel cache;
    cache.get<RoundLevelsFn>("lowp.round_levels_i8")(g, n, scale, levels,
                                                     q, residual);
}

void
quantize_sign_1bit(const float* g, std::size_t n, float scale, float* q,
                   float* residual, std::uint8_t* payload)
{
    static CachedKernel cache;
    cache.get<Sign1BitFn>("lowp.quantize_sign_1bit")(g, n, scale, q,
                                                     residual, payload);
}

} // namespace buckwild::lowp
