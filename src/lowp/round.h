/**
 * @file
 * The rounding engine — one implementation of biased and unbiased (Eq. 4)
 * rounding for every quantization site in the tree.
 *
 * Two numeric domains exist, preserved bit-for-bit from the code this
 * substrate replaced:
 *
 *  - the *raw* domain (fixed:: semantics): values are scaled in double
 *    precision and rounded to a raw integer — biased rounding is
 *    std::lround (ties away from zero). Used by dataset D-quantization,
 *    serve publish-time Ms weights, and the fixed:: array quantizers.
 *  - the *snap* domain (nn / G-term semantics): values stay in float
 *    storage, constrained to the grid — biased rounding is nearbyintf
 *    (ties to even), all arithmetic in float.
 *
 * Array entry points dispatch through the process-wide KernelLibrary
 * (simd/registry.h): each op registers its scalar reference and — when
 * the build carries them — the hand-vectorized AVX2 kernels (§5.2
 * applied beyond the SGD inner loop: the same vectorized-rounding idea
 * now covers the ps C-codec encode and the serve publish path). The
 * public entries cache the resolved function pointer behind a generation
 * check, so BUCKWILD_KERNEL_IMPL / force_impl() re-steer them without a
 * per-call registry lookup. `lowp::scalar::` always carries the scalar
 * reference implementations so tests can assert scalar/AVX2 bit-identity
 * independent of what the resolver picked.
 *
 * Shared randomness (§5.2): `quantize_shared()` rounds an array against
 * one 256-bit block of randomness (8 words, applied cyclically), the
 * "generate 256 fresh bits once, share them across the AXPY" strategy
 * generalized to array quantization. SharedRandom (shared_random.h)
 * produces and refreshes such blocks.
 */
#ifndef BUCKWILD_LOWP_ROUND_H
#define BUCKWILD_LOWP_ROUND_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "lowp/grid.h"
#include "rng/random_source.h"

namespace buckwild::lowp {

// ---------------------------------------------------------------------
// Raw domain (double math, fixed:: semantics)
// ---------------------------------------------------------------------

/// Saturates a raw value into the grid's representable range.
inline long
saturate_raw(long raw, const GridSpec& grid)
{
    if (raw < grid.raw_min) return grid.raw_min;
    if (raw > grid.raw_max) return grid.raw_max;
    return raw;
}

/// Nearest-neighbor ("biased") rounding of real `x` to raw grid units
/// (lround: ties away from zero).
inline long
round_biased_raw(double x, const GridSpec& grid)
{
    return saturate_raw(std::lround(x / grid.quantum), grid);
}

/// Unbiased (stochastic) rounding per Eq. (4): floor(x/q + u), u ~ U[0,1).
/// Saturation at the range ends reintroduces bias for out-of-range
/// inputs; in-range inputs are exactly unbiased.
inline long
round_unbiased_raw(double x, const GridSpec& grid, float u)
{
    const double scaled = x / grid.quantum + static_cast<double>(u);
    return saturate_raw(static_cast<long>(std::floor(scaled)), grid);
}

/// Real value of `raw` grid units.
inline double
dequantize_raw(long raw, const GridSpec& grid)
{
    return static_cast<double>(raw) * grid.quantum;
}

// ---------------------------------------------------------------------
// Snap domain (float math, nn / G-term semantics)
// ---------------------------------------------------------------------

/// Snaps `x` to the nearest grid point (nearbyintf: ties to even), value
/// kept in float storage.
inline float
snap_nearest(float x, const GridSpec& grid)
{
    const float q = grid.quantum_f();
    float raw = std::nearbyintf(x / q);
    const float hi = static_cast<float>(grid.raw_max);
    const float lo = static_cast<float>(grid.raw_min);
    if (raw > hi) raw = hi;
    if (raw < lo) raw = lo;
    return raw * q;
}

/// Stochastic grid snap per Eq. (4), float domain: floor(x/q + u).
inline float
snap_stochastic(float x, const GridSpec& grid, float u)
{
    const float q = grid.quantum_f();
    float raw = std::floor(x / q + u);
    const float hi = static_cast<float>(grid.raw_max);
    const float lo = static_cast<float>(grid.raw_min);
    if (raw > hi) raw = hi;
    if (raw < lo) raw = lo;
    return raw * q;
}

// ---------------------------------------------------------------------
// Array kernels (round.cpp; registry-dispatched, AVX2 when available)
// ---------------------------------------------------------------------

/// Idempotent registration of the lowp array kernels ("lowp.*" ops) into
/// the KernelLibrary. The public entries below call it themselves;
/// sweeps call it before enumerating the library.
void register_lowp_kernels();

/// True when the resolver currently routes the array kernels to a
/// vectorized variant (build has AVX2, host executes it, and no scalar
/// override is forced).
bool vectorized();

/// Biased float -> raw-rep array quantization (raw domain: lround
/// semantics, bit-identical to the scalar reference).
void quantize_biased(const float* in, std::int8_t* out, std::size_t n,
                     const GridSpec& grid);
void quantize_biased(const float* in, std::int16_t* out, std::size_t n,
                     const GridSpec& grid);

/// Per-write unbiased quantization: one fresh word from `source` per
/// element (the Mersenne / scalar-XORSHIFT strategies of Fig 5). Scalar
/// by construction — the word stream is sequential.
void quantize_unbiased(const float* in, std::int8_t* out, std::size_t n,
                       const GridSpec& grid, rng::RandomWordSource& source);
void quantize_unbiased(const float* in, std::int16_t* out, std::size_t n,
                       const GridSpec& grid, rng::RandomWordSource& source);

/// Shared-randomness unbiased quantization (§5.2): element i rounds with
/// unit dither from words[i % 8] — one 256-bit draw shared across the
/// array. Float domain (vectorizable); scalar and AVX2 are bit-identical.
void quantize_shared(const float* in, std::int8_t* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8]);
void quantize_shared(const float* in, std::int16_t* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8]);

/// Array dequantization: floats from raw reps.
void dequantize(const std::int8_t* in, float* out, std::size_t n,
                const GridSpec& grid);
void dequantize(const std::int16_t* in, float* out, std::size_t n,
                const GridSpec& grid);

// ---------------------------------------------------------------------
// Codec kernels (the ps C-term hot path)
// ---------------------------------------------------------------------

/// max |g[k]| (0 for empty input; NaN elements are ignored, matching
/// std::max semantics of the scalar loop it replaces).
float max_abs(const float* g, std::size_t n);

/// QSGD-style k-bit linear level rounding: level = nearbyintf(g/scale),
/// q = level * scale, residual = g - q. `levels` and `residual` may be
/// null; `q` must not. No saturation — callers guarantee |g| <= scale *
/// level_max (the per-message scale is fitted to max|g|).
void round_levels_i8(const float* g, std::size_t n, float scale,
                     std::int8_t* levels, float* q, float* residual);

/// Seide-style 1-bit sign quantization: q = sign(g) * scale (negative
/// for g < 0 and NaN, matching `!(g >= 0)`), residual = g - q, and one
/// sign bit per coordinate packed 8-per-byte into `payload` (bit set =
/// negative). `residual` and `payload` may be null; `payload`, when
/// given, must be zeroed by the caller.
void quantize_sign_1bit(const float* g, std::size_t n, float scale,
                        float* q, float* residual, std::uint8_t* payload);

/// Always-scalar reference implementations of every array kernel above,
/// for scalar-vs-AVX2 equivalence testing.
namespace scalar {

void quantize_biased(const float* in, std::int8_t* out, std::size_t n,
                     const GridSpec& grid);
void quantize_biased(const float* in, std::int16_t* out, std::size_t n,
                     const GridSpec& grid);
void quantize_shared(const float* in, std::int8_t* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8]);
void quantize_shared(const float* in, std::int16_t* out, std::size_t n,
                     const GridSpec& grid, const std::uint32_t words[8]);
void dequantize(const std::int8_t* in, float* out, std::size_t n,
                const GridSpec& grid);
void dequantize(const std::int16_t* in, float* out, std::size_t n,
                const GridSpec& grid);
float max_abs(const float* g, std::size_t n);
void round_levels_i8(const float* g, std::size_t n, float scale,
                     std::int8_t* levels, float* q, float* residual);
void quantize_sign_1bit(const float* g, std::size_t n, float scale,
                        float* q, float* residual, std::uint8_t* payload);

} // namespace scalar

} // namespace buckwild::lowp

#endif // BUCKWILD_LOWP_ROUND_H
