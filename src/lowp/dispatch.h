/**
 * @file
 * Signature-driven rep dispatch: turns the runtime widths of a
 * `dmgc::Signature` (D / M value reps, sparse index rep) into compile-time
 * rep types by invoking a generic visitor with a RepTag.
 *
 * This replaces the nested switch pyramids that core/trainer.cpp used to
 * carry — one `switch (width)` per DMGC letter, multiplied together — with
 * composable single-letter dispatchers:
 *
 *     lowp::with_value_rep(d_width, [&](auto d) {
 *         lowp::with_value_rep(m_width, [&](auto m) {
 *             using D = typename decltype(d)::type;
 *             using M = typename decltype(m)::type;
 *             ...instantiate the <D, M> engine...
 *         });
 *     });
 *
 * Width validation (including the exact diagnostic wording) lives here too
 * as `checked_rep_width`, so every tool that accepts a signature reports
 * unsupported widths identically.
 */
#ifndef BUCKWILD_LOWP_DISPATCH_H
#define BUCKWILD_LOWP_DISPATCH_H

#include <cstdint>
#include <string>
#include <utility>

#include "dmgc/signature.h"
#include "util/logging.h"

namespace buckwild::lowp {

/// Carries a rep type through a generic visitor.
template <typename T>
struct RepTag
{
    using type = T;
};

/// Validates a precision term and normalizes it to a value-rep width
/// selector (8, 16, or 32); fatals with the canonical diagnostic for
/// unsupported widths.
inline int
checked_rep_width(const dmgc::Precision& p, const char* what)
{
    if (p.is_float) {
        if (p.bits != 32)
            fatal(std::string(what) + " float precision must be 32 bits");
        return 32;
    }
    if (p.bits != 8 && p.bits != 16)
        fatal(std::string(what) +
              " fixed precision must be 8 or 16 bits (got " +
              std::to_string(p.bits) + "); use src/isa for 4-bit emulation");
    return p.bits;
}

/// Invokes `f` with the RepTag of the value rep selected by `width`
/// (8 -> int8_t, 16 -> int16_t, anything else -> float, matching the
/// historical trainer behaviour of treating 32 as the default arm).
template <typename F>
decltype(auto)
with_value_rep(int width, F&& f)
{
    switch (width) {
      case 8: return std::forward<F>(f)(RepTag<std::int8_t>{});
      case 16: return std::forward<F>(f)(RepTag<std::int16_t>{});
      default: return std::forward<F>(f)(RepTag<float>{});
    }
}

/// Invokes `f` with the RepTag of the sparse index rep selected by
/// `bits`; fatals on unsupported widths.
template <typename F>
decltype(auto)
with_index_rep(int bits, F&& f)
{
    switch (bits) {
      case 8: return std::forward<F>(f)(RepTag<std::uint8_t>{});
      case 16: return std::forward<F>(f)(RepTag<std::uint16_t>{});
      case 32: return std::forward<F>(f)(RepTag<std::uint32_t>{});
      default:
        fatal("index precision must be 8, 16, or 32 bits (got " +
              std::to_string(bits) + ")");
    }
}

} // namespace buckwild::lowp

#endif // BUCKWILD_LOWP_DISPATCH_H
