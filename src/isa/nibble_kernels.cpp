#include "isa/nibble_kernels.h"

namespace buckwild::isa {

float
dot_d4m4(const std::uint8_t* x_packed, const std::uint8_t* w_packed,
         std::size_t n, float scale)
{
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<std::int64_t>(fixed::load_nibble(x_packed, i)) *
               static_cast<std::int64_t>(fixed::load_nibble(w_packed, i));
    return static_cast<float>(acc) * scale;
}

void
axpy_d4m4(std::uint8_t* w_packed, const std::uint8_t* x_packed,
          std::size_t n, simd::FixedScalar cs,
          const simd::DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i) {
        const int x = fixed::load_nibble(x_packed, i);
        const int w = fixed::load_nibble(w_packed, i);
        const std::int32_t delta =
            (cs.mult * x +
             static_cast<std::int32_t>(dither.dither_fixed(i, cs.shift))) >>
            cs.shift;
        // Symmetric 4-bit model saturation, [-7, 7].
        int v = w + delta;
        if (v > 7) v = 7;
        if (v < -7) v = -7;
        fixed::store_nibble(w_packed, i, v);
    }
}

} // namespace buckwild::isa
