#include "isa/proxy_kernels.h"

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "simd/dense_avx2.h"
#include "simd/dense_ref.h"

namespace buckwild::isa {

#ifndef __AVX2__

// Scalar fallbacks so non-AVX2 builds still link; timings are then not
// meaningful as instruction proxies.
float
dot_d8m8_fused_proxy(const std::int8_t* x, const std::int8_t* w,
                     std::size_t n)
{
    return simd::ref::dot_d8m8(x, w, n, 1.0f);
}

void
axpy_d8m8_fused_proxy(std::int8_t* w, const std::int8_t* x, std::size_t n,
                      simd::FixedScalar cs)
{
    simd::ref::axpy_d8m8(w, x, n, cs, simd::biased_fixed(cs.shift));
}

float
dot_d4m4_proxy(const std::uint8_t* x_packed, const std::uint8_t* w_packed,
               std::size_t n)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n / 2; ++i)
        acc += static_cast<float>(x_packed[i]) * w_packed[i];
    return acc;
}

void
axpy_d4m4_proxy(std::uint8_t* w_packed, const std::uint8_t* x_packed,
                std::size_t n, simd::FixedScalar cs)
{
    for (std::size_t i = 0; i < n / 2; ++i)
        w_packed[i] = static_cast<std::uint8_t>(
            w_packed[i] + ((cs.mult * x_packed[i]) >> cs.shift));
}

#else // __AVX2__

namespace {

inline float
hsum_epi32_as_float(__m256i v)
{
    const __m128i s =
        _mm_add_epi32(_mm256_castsi256_si128(v),
                      _mm256_extracti128_si256(v, 1));
    const __m128i s2 = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    const __m128i s3 = _mm_add_epi32(s2, _mm_srli_si128(s2, 4));
    return static_cast<float>(_mm_cvtsi128_si32(s3));
}

} // namespace

float
dot_d8m8_fused_proxy(const std::int8_t* x, const std::int8_t* w,
                     std::size_t n)
{
    // One vpmaddwd per 32 bytes: the latency proxy for the proposed
    // "multiply 8-bit, horizontal-add to 32-bit float" instruction. The
    // operands are reinterpreted as int16, so the value is garbage — only
    // the instruction count/latency matches the proposal.
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, wv));
    }
    float total = hsum_epi32_as_float(acc);
    for (; i < n; ++i) total += static_cast<float>(x[i]) * w[i];
    return total;
}

void
axpy_d8m8_fused_proxy(std::int8_t* w, const std::int8_t* x, std::size_t n,
                      simd::FixedScalar cs)
{
    // vpmullw (the multiply proxy) + vpaddb (the dither-add/truncate
    // proxy): two instruction slots per 32 bytes, matching the proposed
    // AXPY instruction pair.
    const __m256i mult = _mm256_set1_epi16(static_cast<short>(cs.mult));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i prod = _mm256_mullo_epi16(xv, mult);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i),
                            _mm256_add_epi8(wv, prod));
    }
    for (; i < n; ++i)
        w[i] = static_cast<std::int8_t>(w[i] + ((cs.mult * x[i]) >> cs.shift));
}

float
dot_d4m4_proxy(const std::uint8_t* x_packed, const std::uint8_t* w_packed,
               std::size_t n)
{
    // The paper's assumption: native 4-bit instructions with "the same
    // latency characteristics as their 8-bit equivalents". So the proxy
    // is exactly the hand-optimized 8-bit dot run over the packed byte
    // stream (half the bytes of the logical 8-bit problem).
    return simd::avx2::dot_d8m8(
        reinterpret_cast<const std::int8_t*>(x_packed),
        reinterpret_cast<const std::int8_t*>(w_packed), n / 2, 1.0f);
}

void
axpy_d4m4_proxy(std::uint8_t* w_packed, const std::uint8_t* x_packed,
                std::size_t n, simd::FixedScalar cs)
{
    // Likewise: the full 8-bit AXPY chain over half the bytes.
    static const simd::DitherBlock kDither = simd::biased_fixed(cs.shift);
    simd::avx2::axpy_d8m8(reinterpret_cast<std::int8_t*>(w_packed),
                          reinterpret_cast<const std::int8_t*>(x_packed),
                          n / 2, cs, kDither);
}

#endif // __AVX2__

} // namespace buckwild::isa
