/**
 * @file
 * Proxy kernels for the proposed vector ALU instructions (§6.1).
 *
 * The paper evaluates hypothetical instructions by running "an existing
 * ALU instruction ... as a proxy in place of the new instruction": the
 * proxy program produces *invalid output* but, because the proxied
 * instruction has the same latency class and does not affect control
 * flow, its runtime is exactly the runtime the program would have with
 * the real instruction.
 *
 * Two families are modeled:
 *
 *  1. The §6.1 fused instructions for D8M8:
 *     - a dot instruction that multiplies signed 8-bit vectors into
 *       16-bit intermediates and horizontally reduces to 32-bit floats
 *       (proxied by `vpmaddwd`), collapsing the dot inner loop to ONE
 *       instruction per vector;
 *     - an AXPY instruction that multiplies an 8-bit vector by a scalar,
 *       adds a hardware-generated pseudorandom dither, and truncates
 *       (proxied by `vpmullw` + add), collapsing the AXPY body to TWO
 *       instructions.
 *
 *  2. Hypothetical 4-bit (D4M4) arithmetic: nibble-packed arrays are
 *     processed with the 8-bit instructions as latency proxies — half the
 *     memory traffic, same per-vector instruction latency (Fig 5c).
 *
 * WARNING: every function here returns numerically meaningless results by
 * design. Use isa/nibble_kernels.h for *functional* 4-bit arithmetic.
 */
#ifndef BUCKWILD_ISA_PROXY_KERNELS_H
#define BUCKWILD_ISA_PROXY_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "simd/fixed_scalar.h"

namespace buckwild::isa {

/// Timing proxy for the proposed fused D8M8 dot instruction: one
/// vpmaddwd-class instruction per 32 bytes. Output is invalid.
float dot_d8m8_fused_proxy(const std::int8_t* x, const std::int8_t* w,
                           std::size_t n);

/// Timing proxy for the proposed D8M8 AXPY instruction with hardware
/// dither: two instruction-slots per 32 bytes. Output is invalid.
void axpy_d8m8_fused_proxy(std::int8_t* w, const std::int8_t* x,
                           std::size_t n, simd::FixedScalar cs);

/// Timing proxy for a native 4-bit dot on nibble-packed arrays: the
/// packed byte stream (n/2 bytes for n logical elements) is processed
/// with 8-bit-latency instructions. Output is invalid.
float dot_d4m4_proxy(const std::uint8_t* x_packed,
                     const std::uint8_t* w_packed, std::size_t n);

/// Timing proxy for a native 4-bit AXPY on nibble-packed arrays.
/// Output is invalid.
void axpy_d4m4_proxy(std::uint8_t* w_packed, const std::uint8_t* x_packed,
                     std::size_t n, simd::FixedScalar cs);

} // namespace buckwild::isa

#endif // BUCKWILD_ISA_PROXY_KERNELS_H
