/**
 * @file
 * Functional (numerically correct) 4-bit kernels over nibble-packed
 * arrays, plus a D4M4 training step helper.
 *
 * These complement isa/proxy_kernels.h: the proxies measure what native
 * 4-bit instructions would *cost*; these compute what 4-bit arithmetic
 * *does* — used by the statistical-efficiency side of Fig 5c ("it often
 * affects statistical efficiency") and by the D4M4 LeNet sweeps.
 *
 * Semantics mirror the 8-bit contract at 4-bit width:
 *   dot: exact int64 accumulation of nibble products, times scale;
 *   axpy: delta = (mult * x + dither) >> shift, model saturated to the
 *         symmetric range [-7, 7].
 */
#ifndef BUCKWILD_ISA_NIBBLE_KERNELS_H
#define BUCKWILD_ISA_NIBBLE_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "fixed/nibble.h"
#include "simd/fixed_scalar.h"

namespace buckwild::isa {

/// Fixed-scalar shift for the 4-bit AXPY (dither from bytes, 4 bits).
inline constexpr int kShiftD4M4 = 4;
inline constexpr int kMultLimitD4M4 = 255;

/// Builds the 4-bit AXPY scale (model quanta per raw x unit).
inline simd::FixedScalar
make_scalar_d4m4(float c)
{
    const long raw = std::lround(static_cast<double>(c) * (1 << kShiftD4M4));
    return {static_cast<std::int32_t>(
                std::clamp<long>(raw, -kMultLimitD4M4, kMultLimitD4M4)),
            kShiftD4M4};
}

/// Exact dot of two nibble-packed vectors of n logical elements.
float dot_d4m4(const std::uint8_t* x_packed, const std::uint8_t* w_packed,
               std::size_t n, float scale);

/// In-place 4-bit AXPY: w <- sat4(w + (mult*x + dither) >> shift), with
/// the dither read from the shared block (masked to `shift` bits).
void axpy_d4m4(std::uint8_t* w_packed, const std::uint8_t* x_packed,
               std::size_t n, simd::FixedScalar cs,
               const simd::DitherBlock& dither);

} // namespace buckwild::isa

#endif // BUCKWILD_ISA_NIBBLE_KERNELS_H
