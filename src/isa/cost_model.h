/**
 * @file
 * Instruction cost model for the SGD inner loops (§5.1 / §6.1).
 *
 * Estimates the instruction count per 256-bit vector of the dot and AXPY
 * inner-loop bodies for each implementation strategy, which is what the
 * paper's hand-optimization and new-instruction arguments are about:
 *
 *  - GCC's float-cast code: "almost a dozen instructions to accomplish
 *    what the hand-optimized version does in a single instruction";
 *  - hand-optimized AVX2 (this library's kernels);
 *  - the §6.1 proposed instructions: dot in 1 instruction, AXPY in 2 —
 *    "an upper bound on the speedup that can result from new ALU
 *    instructions", measured at 5-15%.
 *
 * The model counts arithmetic/shuffle instructions only (loads/stores are
 * common to every strategy and typically hidden), so relative counts
 * approximate relative compute-bound throughput.
 */
#ifndef BUCKWILD_ISA_COST_MODEL_H
#define BUCKWILD_ISA_COST_MODEL_H

#include <string>

namespace buckwild::isa {

/// Implementation strategy being costed.
enum class Strategy {
    kCompilerFloatCast, ///< GCC -Ofast on Figure-1-style code
    kHandAvx2,          ///< §5.1 hand-optimized kernels
    kProposedIsa,       ///< §6.1 fused instructions
};

/// "compiler" / "avx2" / "proposed".
std::string to_string(Strategy strategy);

/// Instruction-count estimate for one (dot + AXPY) inner-loop pass over
/// one 256-bit vector of data.
struct LoopCost
{
    int dot_instructions;
    int axpy_instructions;
    int elements_per_vector; ///< how many numbers one vector covers

    /// Instructions per processed number (lower is better).
    double
    per_element() const
    {
        return static_cast<double>(dot_instructions + axpy_instructions) /
               static_cast<double>(elements_per_vector);
    }
};

/// Cost of the D-bit dataset / M-bit model inner loop under `strategy`.
/// Supported widths: 4 (proposed ISA only), 8, 16, 32 (float).
LoopCost loop_cost(int dataset_bits, int model_bits, Strategy strategy);

/// Predicted compute-bound speedup of `to` over `from` for the same
/// precisions (ratio of per-element instruction counts).
double predicted_speedup(int dataset_bits, int model_bits, Strategy from,
                         Strategy to);

} // namespace buckwild::isa

#endif // BUCKWILD_ISA_COST_MODEL_H
