#include "isa/cost_model.h"

#include "util/logging.h"

namespace buckwild::isa {

std::string
to_string(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kCompilerFloatCast: return "compiler";
      case Strategy::kHandAvx2: return "avx2";
      case Strategy::kProposedIsa: return "proposed";
    }
    fatal("unknown Strategy");
}

LoopCost
loop_cost(int dataset_bits, int model_bits, Strategy strategy)
{
    // Elements covered by one 256-bit vector of the *narrower* stream
    // (the loop is structured around it).
    const int narrow = dataset_bits < model_bits ? dataset_bits
                                                 : model_bits;
    const int elements = narrow > 0 ? 256 / narrow : 8;

    auto make = [elements](int dot, int axpy) {
        return LoopCost{dot, axpy, elements};
    };

    const bool fixed_fixed = dataset_bits <= 16 && model_bits <= 16;

    switch (strategy) {
      case Strategy::kCompilerFloatCast:
        // The float-cast path widens every low-precision element to a
        // 32-bit float: 4 widen + 4 convert per input stream per vector,
        // then float multiplies/adds — "almost a dozen instructions" per
        // fused-op's worth of work, repeated for the four sub-vectors.
        if (dataset_bits == 32 && model_bits == 32)
            return make(2, 2); // mul+add / mul+add-store: already float
        if (fixed_fixed) return make(26, 34);
        return make(14, 18); // one stream already float

      case Strategy::kHandAvx2:
        if (dataset_bits == 32 && model_bits == 32)
            return make(1, 1); // one FMA each
        if (dataset_bits == 8 && model_bits == 8)
            // dot: abs, sign, maddubs, madd, add; AXPY: widen x2,
            // mullo x2, add x2, srai x2, widen w x2, add x2, pack,
            // permute, max.
            return make(5, 15);
        if (fixed_fixed)
            // 16-bit-involved paths: madd-based dot, 32-bit-lane AXPY.
            return make(6, 13);
        return make(4, 3); // mixed fixed/float: widen + cvt + FMA

      case Strategy::kProposedIsa:
        if (dataset_bits == 4 || model_bits == 4)
            return make(1, 2); // native 4-bit fused ops
        if (fixed_fixed) return make(1, 2); // §6.1: dot 1, AXPY 2
        return make(2, 2);
    }
    fatal("unknown Strategy");
}

double
predicted_speedup(int dataset_bits, int model_bits, Strategy from,
                  Strategy to)
{
    const double a = loop_cost(dataset_bits, model_bits, from).per_element();
    const double b = loop_cost(dataset_bits, model_bits, to).per_element();
    if (b <= 0.0) fatal("degenerate cost");
    return a / b;
}

} // namespace buckwild::isa
