file(REMOVE_RECURSE
  "libbuckwild_nn.a"
)
