# Empty dependencies file for buckwild_nn.
# This may be replaced when dependencies are built.
