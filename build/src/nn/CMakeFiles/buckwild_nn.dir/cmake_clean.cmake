file(REMOVE_RECURSE
  "CMakeFiles/buckwild_nn.dir/conv_lowp.cpp.o"
  "CMakeFiles/buckwild_nn.dir/conv_lowp.cpp.o.d"
  "CMakeFiles/buckwild_nn.dir/layers.cpp.o"
  "CMakeFiles/buckwild_nn.dir/layers.cpp.o.d"
  "CMakeFiles/buckwild_nn.dir/lenet.cpp.o"
  "CMakeFiles/buckwild_nn.dir/lenet.cpp.o.d"
  "libbuckwild_nn.a"
  "libbuckwild_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
