file(REMOVE_RECURSE
  "libbuckwild_simd.a"
)
