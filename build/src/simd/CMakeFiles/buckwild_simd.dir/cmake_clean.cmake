file(REMOVE_RECURSE
  "CMakeFiles/buckwild_simd.dir/dense_avx2.cpp.o"
  "CMakeFiles/buckwild_simd.dir/dense_avx2.cpp.o.d"
  "CMakeFiles/buckwild_simd.dir/dense_avx512.cpp.o"
  "CMakeFiles/buckwild_simd.dir/dense_avx512.cpp.o.d"
  "CMakeFiles/buckwild_simd.dir/dense_naive.cpp.o"
  "CMakeFiles/buckwild_simd.dir/dense_naive.cpp.o.d"
  "CMakeFiles/buckwild_simd.dir/dense_ref.cpp.o"
  "CMakeFiles/buckwild_simd.dir/dense_ref.cpp.o.d"
  "CMakeFiles/buckwild_simd.dir/ops.cpp.o"
  "CMakeFiles/buckwild_simd.dir/ops.cpp.o.d"
  "libbuckwild_simd.a"
  "libbuckwild_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
