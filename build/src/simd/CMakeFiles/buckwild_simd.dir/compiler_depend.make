# Empty compiler generated dependencies file for buckwild_simd.
# This may be replaced when dependencies are built.
