
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/dense_avx2.cpp" "src/simd/CMakeFiles/buckwild_simd.dir/dense_avx2.cpp.o" "gcc" "src/simd/CMakeFiles/buckwild_simd.dir/dense_avx2.cpp.o.d"
  "/root/repo/src/simd/dense_avx512.cpp" "src/simd/CMakeFiles/buckwild_simd.dir/dense_avx512.cpp.o" "gcc" "src/simd/CMakeFiles/buckwild_simd.dir/dense_avx512.cpp.o.d"
  "/root/repo/src/simd/dense_naive.cpp" "src/simd/CMakeFiles/buckwild_simd.dir/dense_naive.cpp.o" "gcc" "src/simd/CMakeFiles/buckwild_simd.dir/dense_naive.cpp.o.d"
  "/root/repo/src/simd/dense_ref.cpp" "src/simd/CMakeFiles/buckwild_simd.dir/dense_ref.cpp.o" "gcc" "src/simd/CMakeFiles/buckwild_simd.dir/dense_ref.cpp.o.d"
  "/root/repo/src/simd/ops.cpp" "src/simd/CMakeFiles/buckwild_simd.dir/ops.cpp.o" "gcc" "src/simd/CMakeFiles/buckwild_simd.dir/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
