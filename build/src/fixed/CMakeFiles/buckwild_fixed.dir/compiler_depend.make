# Empty compiler generated dependencies file for buckwild_fixed.
# This may be replaced when dependencies are built.
