file(REMOVE_RECURSE
  "CMakeFiles/buckwild_fixed.dir/fixed_point.cpp.o"
  "CMakeFiles/buckwild_fixed.dir/fixed_point.cpp.o.d"
  "CMakeFiles/buckwild_fixed.dir/nibble.cpp.o"
  "CMakeFiles/buckwild_fixed.dir/nibble.cpp.o.d"
  "CMakeFiles/buckwild_fixed.dir/quantize.cpp.o"
  "CMakeFiles/buckwild_fixed.dir/quantize.cpp.o.d"
  "libbuckwild_fixed.a"
  "libbuckwild_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
