
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixed/fixed_point.cpp" "src/fixed/CMakeFiles/buckwild_fixed.dir/fixed_point.cpp.o" "gcc" "src/fixed/CMakeFiles/buckwild_fixed.dir/fixed_point.cpp.o.d"
  "/root/repo/src/fixed/nibble.cpp" "src/fixed/CMakeFiles/buckwild_fixed.dir/nibble.cpp.o" "gcc" "src/fixed/CMakeFiles/buckwild_fixed.dir/nibble.cpp.o.d"
  "/root/repo/src/fixed/quantize.cpp" "src/fixed/CMakeFiles/buckwild_fixed.dir/quantize.cpp.o" "gcc" "src/fixed/CMakeFiles/buckwild_fixed.dir/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
