file(REMOVE_RECURSE
  "libbuckwild_fixed.a"
)
