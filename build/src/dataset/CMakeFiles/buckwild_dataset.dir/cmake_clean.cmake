file(REMOVE_RECURSE
  "CMakeFiles/buckwild_dataset.dir/digits.cpp.o"
  "CMakeFiles/buckwild_dataset.dir/digits.cpp.o.d"
  "CMakeFiles/buckwild_dataset.dir/fourier.cpp.o"
  "CMakeFiles/buckwild_dataset.dir/fourier.cpp.o.d"
  "CMakeFiles/buckwild_dataset.dir/libsvm.cpp.o"
  "CMakeFiles/buckwild_dataset.dir/libsvm.cpp.o.d"
  "CMakeFiles/buckwild_dataset.dir/problem.cpp.o"
  "CMakeFiles/buckwild_dataset.dir/problem.cpp.o.d"
  "libbuckwild_dataset.a"
  "libbuckwild_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
