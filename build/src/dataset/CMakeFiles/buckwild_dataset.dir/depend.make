# Empty dependencies file for buckwild_dataset.
# This may be replaced when dependencies are built.
