file(REMOVE_RECURSE
  "libbuckwild_dataset.a"
)
