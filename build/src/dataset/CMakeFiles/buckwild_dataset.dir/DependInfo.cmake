
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/digits.cpp" "src/dataset/CMakeFiles/buckwild_dataset.dir/digits.cpp.o" "gcc" "src/dataset/CMakeFiles/buckwild_dataset.dir/digits.cpp.o.d"
  "/root/repo/src/dataset/fourier.cpp" "src/dataset/CMakeFiles/buckwild_dataset.dir/fourier.cpp.o" "gcc" "src/dataset/CMakeFiles/buckwild_dataset.dir/fourier.cpp.o.d"
  "/root/repo/src/dataset/libsvm.cpp" "src/dataset/CMakeFiles/buckwild_dataset.dir/libsvm.cpp.o" "gcc" "src/dataset/CMakeFiles/buckwild_dataset.dir/libsvm.cpp.o.d"
  "/root/repo/src/dataset/problem.cpp" "src/dataset/CMakeFiles/buckwild_dataset.dir/problem.cpp.o" "gcc" "src/dataset/CMakeFiles/buckwild_dataset.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/buckwild_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
