file(REMOVE_RECURSE
  "libbuckwild_rng.a"
)
