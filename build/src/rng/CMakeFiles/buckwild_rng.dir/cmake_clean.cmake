file(REMOVE_RECURSE
  "CMakeFiles/buckwild_rng.dir/random_source.cpp.o"
  "CMakeFiles/buckwild_rng.dir/random_source.cpp.o.d"
  "CMakeFiles/buckwild_rng.dir/xorshift.cpp.o"
  "CMakeFiles/buckwild_rng.dir/xorshift.cpp.o.d"
  "libbuckwild_rng.a"
  "libbuckwild_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
