# Empty dependencies file for buckwild_rng.
# This may be replaced when dependencies are built.
