
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmgc/advisor.cpp" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/advisor.cpp.o" "gcc" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/advisor.cpp.o.d"
  "/root/repo/src/dmgc/perf_model.cpp" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/perf_model.cpp.o" "gcc" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/perf_model.cpp.o.d"
  "/root/repo/src/dmgc/signature.cpp" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/signature.cpp.o" "gcc" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/signature.cpp.o.d"
  "/root/repo/src/dmgc/statistical.cpp" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/statistical.cpp.o" "gcc" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/statistical.cpp.o.d"
  "/root/repo/src/dmgc/taxonomy.cpp" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/taxonomy.cpp.o" "gcc" "src/dmgc/CMakeFiles/buckwild_dmgc.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
