file(REMOVE_RECURSE
  "libbuckwild_dmgc.a"
)
