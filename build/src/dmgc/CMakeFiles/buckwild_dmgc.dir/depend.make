# Empty dependencies file for buckwild_dmgc.
# This may be replaced when dependencies are built.
