file(REMOVE_RECURSE
  "CMakeFiles/buckwild_dmgc.dir/advisor.cpp.o"
  "CMakeFiles/buckwild_dmgc.dir/advisor.cpp.o.d"
  "CMakeFiles/buckwild_dmgc.dir/perf_model.cpp.o"
  "CMakeFiles/buckwild_dmgc.dir/perf_model.cpp.o.d"
  "CMakeFiles/buckwild_dmgc.dir/signature.cpp.o"
  "CMakeFiles/buckwild_dmgc.dir/signature.cpp.o.d"
  "CMakeFiles/buckwild_dmgc.dir/statistical.cpp.o"
  "CMakeFiles/buckwild_dmgc.dir/statistical.cpp.o.d"
  "CMakeFiles/buckwild_dmgc.dir/taxonomy.cpp.o"
  "CMakeFiles/buckwild_dmgc.dir/taxonomy.cpp.o.d"
  "libbuckwild_dmgc.a"
  "libbuckwild_dmgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_dmgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
