# Empty compiler generated dependencies file for buckwild_util.
# This may be replaced when dependencies are built.
