file(REMOVE_RECURSE
  "libbuckwild_util.a"
)
