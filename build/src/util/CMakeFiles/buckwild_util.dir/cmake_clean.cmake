file(REMOVE_RECURSE
  "CMakeFiles/buckwild_util.dir/logging.cpp.o"
  "CMakeFiles/buckwild_util.dir/logging.cpp.o.d"
  "CMakeFiles/buckwild_util.dir/stats.cpp.o"
  "CMakeFiles/buckwild_util.dir/stats.cpp.o.d"
  "CMakeFiles/buckwild_util.dir/stopwatch.cpp.o"
  "CMakeFiles/buckwild_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/buckwild_util.dir/table.cpp.o"
  "CMakeFiles/buckwild_util.dir/table.cpp.o.d"
  "CMakeFiles/buckwild_util.dir/thread_pool.cpp.o"
  "CMakeFiles/buckwild_util.dir/thread_pool.cpp.o.d"
  "libbuckwild_util.a"
  "libbuckwild_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
