
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cost_model.cpp" "src/isa/CMakeFiles/buckwild_isa.dir/cost_model.cpp.o" "gcc" "src/isa/CMakeFiles/buckwild_isa.dir/cost_model.cpp.o.d"
  "/root/repo/src/isa/nibble_kernels.cpp" "src/isa/CMakeFiles/buckwild_isa.dir/nibble_kernels.cpp.o" "gcc" "src/isa/CMakeFiles/buckwild_isa.dir/nibble_kernels.cpp.o.d"
  "/root/repo/src/isa/proxy_kernels.cpp" "src/isa/CMakeFiles/buckwild_isa.dir/proxy_kernels.cpp.o" "gcc" "src/isa/CMakeFiles/buckwild_isa.dir/proxy_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/buckwild_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
