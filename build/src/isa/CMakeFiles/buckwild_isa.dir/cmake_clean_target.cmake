file(REMOVE_RECURSE
  "libbuckwild_isa.a"
)
