file(REMOVE_RECURSE
  "CMakeFiles/buckwild_isa.dir/cost_model.cpp.o"
  "CMakeFiles/buckwild_isa.dir/cost_model.cpp.o.d"
  "CMakeFiles/buckwild_isa.dir/nibble_kernels.cpp.o"
  "CMakeFiles/buckwild_isa.dir/nibble_kernels.cpp.o.d"
  "CMakeFiles/buckwild_isa.dir/proxy_kernels.cpp.o"
  "CMakeFiles/buckwild_isa.dir/proxy_kernels.cpp.o.d"
  "libbuckwild_isa.a"
  "libbuckwild_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
