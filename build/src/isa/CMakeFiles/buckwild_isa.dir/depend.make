# Empty dependencies file for buckwild_isa.
# This may be replaced when dependencies are built.
