
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_sgd.cpp" "src/core/CMakeFiles/buckwild_core.dir/comm_sgd.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/comm_sgd.cpp.o.d"
  "/root/repo/src/core/delayed_sgd.cpp" "src/core/CMakeFiles/buckwild_core.dir/delayed_sgd.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/delayed_sgd.cpp.o.d"
  "/root/repo/src/core/loss.cpp" "src/core/CMakeFiles/buckwild_core.dir/loss.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/loss.cpp.o.d"
  "/root/repo/src/core/matrix_fact.cpp" "src/core/CMakeFiles/buckwild_core.dir/matrix_fact.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/matrix_fact.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/buckwild_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/buckwild_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/buckwild_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/buckwild_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/buckwild_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/dmgc/CMakeFiles/buckwild_dmgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
