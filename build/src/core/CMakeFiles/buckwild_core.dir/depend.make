# Empty dependencies file for buckwild_core.
# This may be replaced when dependencies are built.
