file(REMOVE_RECURSE
  "CMakeFiles/buckwild_core.dir/comm_sgd.cpp.o"
  "CMakeFiles/buckwild_core.dir/comm_sgd.cpp.o.d"
  "CMakeFiles/buckwild_core.dir/delayed_sgd.cpp.o"
  "CMakeFiles/buckwild_core.dir/delayed_sgd.cpp.o.d"
  "CMakeFiles/buckwild_core.dir/loss.cpp.o"
  "CMakeFiles/buckwild_core.dir/loss.cpp.o.d"
  "CMakeFiles/buckwild_core.dir/matrix_fact.cpp.o"
  "CMakeFiles/buckwild_core.dir/matrix_fact.cpp.o.d"
  "CMakeFiles/buckwild_core.dir/model_io.cpp.o"
  "CMakeFiles/buckwild_core.dir/model_io.cpp.o.d"
  "CMakeFiles/buckwild_core.dir/trainer.cpp.o"
  "CMakeFiles/buckwild_core.dir/trainer.cpp.o.d"
  "libbuckwild_core.a"
  "libbuckwild_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
