file(REMOVE_RECURSE
  "libbuckwild_core.a"
)
