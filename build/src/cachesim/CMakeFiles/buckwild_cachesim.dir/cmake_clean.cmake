file(REMOVE_RECURSE
  "CMakeFiles/buckwild_cachesim.dir/cache.cpp.o"
  "CMakeFiles/buckwild_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/buckwild_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/buckwild_cachesim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/buckwild_cachesim.dir/sgd_trace.cpp.o"
  "CMakeFiles/buckwild_cachesim.dir/sgd_trace.cpp.o.d"
  "CMakeFiles/buckwild_cachesim.dir/stale_sgd.cpp.o"
  "CMakeFiles/buckwild_cachesim.dir/stale_sgd.cpp.o.d"
  "libbuckwild_cachesim.a"
  "libbuckwild_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
