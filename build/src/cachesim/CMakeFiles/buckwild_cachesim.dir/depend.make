# Empty dependencies file for buckwild_cachesim.
# This may be replaced when dependencies are built.
