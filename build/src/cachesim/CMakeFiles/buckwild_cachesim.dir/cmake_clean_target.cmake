file(REMOVE_RECURSE
  "libbuckwild_cachesim.a"
)
