file(REMOVE_RECURSE
  "CMakeFiles/buckwild_fpga.dir/model.cpp.o"
  "CMakeFiles/buckwild_fpga.dir/model.cpp.o.d"
  "CMakeFiles/buckwild_fpga.dir/search.cpp.o"
  "CMakeFiles/buckwild_fpga.dir/search.cpp.o.d"
  "libbuckwild_fpga.a"
  "libbuckwild_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
