# Empty dependencies file for buckwild_fpga.
# This may be replaced when dependencies are built.
