file(REMOVE_RECURSE
  "libbuckwild_fpga.a"
)
