file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6ab_prefetch.dir/bench/bench_fig6ab_prefetch.cpp.o"
  "CMakeFiles/bench_fig6ab_prefetch.dir/bench/bench_fig6ab_prefetch.cpp.o.d"
  "bench/bench_fig6ab_prefetch"
  "bench/bench_fig6ab_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6ab_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
