# Empty compiler generated dependencies file for bench_fig5b_rng_throughput.
# This may be replaced when dependencies are built.
