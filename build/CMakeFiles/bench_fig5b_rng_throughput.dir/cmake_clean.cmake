file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_rng_throughput.dir/bench/bench_fig5b_rng_throughput.cpp.o"
  "CMakeFiles/bench_fig5b_rng_throughput.dir/bench/bench_fig5b_rng_throughput.cpp.o.d"
  "bench/bench_fig5b_rng_throughput"
  "bench/bench_fig5b_rng_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_rng_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
