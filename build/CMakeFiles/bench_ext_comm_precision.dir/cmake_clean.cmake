file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_comm_precision.dir/bench/bench_ext_comm_precision.cpp.o"
  "CMakeFiles/bench_ext_comm_precision.dir/bench/bench_ext_comm_precision.cpp.o.d"
  "bench/bench_ext_comm_precision"
  "bench/bench_ext_comm_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_comm_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
