# Empty dependencies file for bench_ext_comm_precision.
# This may be replaced when dependencies are built.
