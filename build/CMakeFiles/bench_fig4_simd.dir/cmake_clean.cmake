file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_simd.dir/bench/bench_fig4_simd.cpp.o"
  "CMakeFiles/bench_fig4_simd.dir/bench/bench_fig4_simd.cpp.o.d"
  "bench/bench_fig4_simd"
  "bench/bench_fig4_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
