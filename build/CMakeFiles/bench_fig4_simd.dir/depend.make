# Empty dependencies file for bench_fig4_simd.
# This may be replaced when dependencies are built.
