file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_conv.dir/bench/bench_fig7a_conv.cpp.o"
  "CMakeFiles/bench_fig7a_conv.dir/bench/bench_fig7a_conv.cpp.o.d"
  "bench/bench_fig7a_conv"
  "bench/bench_fig7a_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
