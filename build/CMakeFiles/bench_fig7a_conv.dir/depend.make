# Empty dependencies file for bench_fig7a_conv.
# This may be replaced when dependencies are built.
