file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_4bit.dir/bench/bench_fig5c_4bit.cpp.o"
  "CMakeFiles/bench_fig5c_4bit.dir/bench/bench_fig5c_4bit.cpp.o.d"
  "bench/bench_fig5c_4bit"
  "bench/bench_fig5c_4bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_4bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
