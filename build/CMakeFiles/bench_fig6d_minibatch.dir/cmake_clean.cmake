file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d_minibatch.dir/bench/bench_fig6d_minibatch.cpp.o"
  "CMakeFiles/bench_fig6d_minibatch.dir/bench/bench_fig6d_minibatch.cpp.o.d"
  "bench/bench_fig6d_minibatch"
  "bench/bench_fig6d_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
