# Empty dependencies file for bench_fig6d_minibatch.
# This may be replaced when dependencies are built.
