file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6e_minibatch_statistical.dir/bench/bench_fig6e_minibatch_statistical.cpp.o"
  "CMakeFiles/bench_fig6e_minibatch_statistical.dir/bench/bench_fig6e_minibatch_statistical.cpp.o.d"
  "bench/bench_fig6e_minibatch_statistical"
  "bench/bench_fig6e_minibatch_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6e_minibatch_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
