# Empty compiler generated dependencies file for bench_fig6e_minibatch_statistical.
# This may be replaced when dependencies are built.
