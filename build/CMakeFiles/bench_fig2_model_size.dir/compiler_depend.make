# Empty compiler generated dependencies file for bench_fig2_model_size.
# This may be replaced when dependencies are built.
