# Empty dependencies file for bench_fig5a_rng_statistical.
# This may be replaced when dependencies are built.
