file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_rng_statistical.dir/bench/bench_fig5a_rng_statistical.cpp.o"
  "CMakeFiles/bench_fig5a_rng_statistical.dir/bench/bench_fig5a_rng_statistical.cpp.o.d"
  "bench/bench_fig5a_rng_statistical"
  "bench/bench_fig5a_rng_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_rng_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
