file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_base_throughput.dir/bench/bench_table2_base_throughput.cpp.o"
  "CMakeFiles/bench_table2_base_throughput.dir/bench/bench_table2_base_throughput.cpp.o.d"
  "bench/bench_table2_base_throughput"
  "bench/bench_table2_base_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_base_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
