file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_obstinate.dir/bench/bench_fig6c_obstinate.cpp.o"
  "CMakeFiles/bench_fig6c_obstinate.dir/bench/bench_fig6c_obstinate.cpp.o.d"
  "bench/bench_fig6c_obstinate"
  "bench/bench_fig6c_obstinate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_obstinate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
