# Empty dependencies file for bench_fig6c_obstinate.
# This may be replaced when dependencies are built.
