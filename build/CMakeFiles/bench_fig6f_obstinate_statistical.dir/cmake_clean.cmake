file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6f_obstinate_statistical.dir/bench/bench_fig6f_obstinate_statistical.cpp.o"
  "CMakeFiles/bench_fig6f_obstinate_statistical.dir/bench/bench_fig6f_obstinate_statistical.cpp.o.d"
  "bench/bench_fig6f_obstinate_statistical"
  "bench/bench_fig6f_obstinate_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6f_obstinate_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
