# Empty dependencies file for bench_fig6f_obstinate_statistical.
# This may be replaced when dependencies are built.
