# Empty dependencies file for bench_sec61_new_instructions.
# This may be replaced when dependencies are built.
