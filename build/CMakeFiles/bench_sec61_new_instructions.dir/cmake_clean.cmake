file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_new_instructions.dir/bench/bench_sec61_new_instructions.cpp.o"
  "CMakeFiles/bench_sec61_new_instructions.dir/bench/bench_sec61_new_instructions.cpp.o.d"
  "bench/bench_sec61_new_instructions"
  "bench/bench_sec61_new_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_new_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
