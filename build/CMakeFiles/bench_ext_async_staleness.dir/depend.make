# Empty dependencies file for bench_ext_async_staleness.
# This may be replaced when dependencies are built.
