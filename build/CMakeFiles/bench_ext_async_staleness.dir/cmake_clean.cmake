file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_async_staleness.dir/bench/bench_ext_async_staleness.cpp.o"
  "CMakeFiles/bench_ext_async_staleness.dir/bench/bench_ext_async_staleness.cpp.o.d"
  "bench/bench_ext_async_staleness"
  "bench/bench_ext_async_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_async_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
