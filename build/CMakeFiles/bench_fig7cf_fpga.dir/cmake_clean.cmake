file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7cf_fpga.dir/bench/bench_fig7cf_fpga.cpp.o"
  "CMakeFiles/bench_fig7cf_fpga.dir/bench/bench_fig7cf_fpga.cpp.o.d"
  "bench/bench_fig7cf_fpga"
  "bench/bench_fig7cf_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7cf_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
