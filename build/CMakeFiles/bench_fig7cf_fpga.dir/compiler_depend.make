# Empty compiler generated dependencies file for bench_fig7cf_fpga.
# This may be replaced when dependencies are built.
