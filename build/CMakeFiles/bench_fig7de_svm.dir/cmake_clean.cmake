file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7de_svm.dir/bench/bench_fig7de_svm.cpp.o"
  "CMakeFiles/bench_fig7de_svm.dir/bench/bench_fig7de_svm.cpp.o.d"
  "bench/bench_fig7de_svm"
  "bench/bench_fig7de_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7de_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
