# Empty compiler generated dependencies file for bench_fig7de_svm.
# This may be replaced when dependencies are built.
