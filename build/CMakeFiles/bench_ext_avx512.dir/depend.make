# Empty dependencies file for bench_ext_avx512.
# This may be replaced when dependencies are built.
