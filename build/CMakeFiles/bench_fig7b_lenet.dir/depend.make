# Empty dependencies file for bench_fig7b_lenet.
# This may be replaced when dependencies are built.
