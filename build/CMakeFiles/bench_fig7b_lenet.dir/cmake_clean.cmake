file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_lenet.dir/bench/bench_fig7b_lenet.cpp.o"
  "CMakeFiles/bench_fig7b_lenet.dir/bench/bench_fig7b_lenet.cpp.o.d"
  "bench/bench_fig7b_lenet"
  "bench/bench_fig7b_lenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_lenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
