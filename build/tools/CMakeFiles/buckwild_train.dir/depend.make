# Empty dependencies file for buckwild_train.
# This may be replaced when dependencies are built.
