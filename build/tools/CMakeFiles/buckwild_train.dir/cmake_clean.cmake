file(REMOVE_RECURSE
  "CMakeFiles/buckwild_train.dir/buckwild_train.cpp.o"
  "CMakeFiles/buckwild_train.dir/buckwild_train.cpp.o.d"
  "buckwild_train"
  "buckwild_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buckwild_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
