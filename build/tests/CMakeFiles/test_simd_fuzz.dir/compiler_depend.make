# Empty compiler generated dependencies file for test_simd_fuzz.
# This may be replaced when dependencies are built.
