file(REMOVE_RECURSE
  "CMakeFiles/test_simd_fuzz.dir/test_simd_fuzz.cpp.o"
  "CMakeFiles/test_simd_fuzz.dir/test_simd_fuzz.cpp.o.d"
  "test_simd_fuzz"
  "test_simd_fuzz.pdb"
  "test_simd_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
