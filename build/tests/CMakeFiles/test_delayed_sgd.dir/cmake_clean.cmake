file(REMOVE_RECURSE
  "CMakeFiles/test_delayed_sgd.dir/test_delayed_sgd.cpp.o"
  "CMakeFiles/test_delayed_sgd.dir/test_delayed_sgd.cpp.o.d"
  "test_delayed_sgd"
  "test_delayed_sgd.pdb"
  "test_delayed_sgd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
