# Empty compiler generated dependencies file for test_delayed_sgd.
# This may be replaced when dependencies are built.
