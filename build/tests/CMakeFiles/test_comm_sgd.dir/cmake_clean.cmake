file(REMOVE_RECURSE
  "CMakeFiles/test_comm_sgd.dir/test_comm_sgd.cpp.o"
  "CMakeFiles/test_comm_sgd.dir/test_comm_sgd.cpp.o.d"
  "test_comm_sgd"
  "test_comm_sgd.pdb"
  "test_comm_sgd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
