# Empty dependencies file for test_comm_sgd.
# This may be replaced when dependencies are built.
