# Empty dependencies file for test_dmgc.
# This may be replaced when dependencies are built.
