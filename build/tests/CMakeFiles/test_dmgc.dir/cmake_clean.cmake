file(REMOVE_RECURSE
  "CMakeFiles/test_dmgc.dir/test_dmgc.cpp.o"
  "CMakeFiles/test_dmgc.dir/test_dmgc.cpp.o.d"
  "test_dmgc"
  "test_dmgc.pdb"
  "test_dmgc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
