
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/buckwild_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/buckwild_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dmgc/CMakeFiles/buckwild_dmgc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/buckwild_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/buckwild_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/buckwild_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/buckwild_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/buckwild_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/buckwild_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/buckwild_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buckwild_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
