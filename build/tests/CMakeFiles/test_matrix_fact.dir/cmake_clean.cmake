file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_fact.dir/test_matrix_fact.cpp.o"
  "CMakeFiles/test_matrix_fact.dir/test_matrix_fact.cpp.o.d"
  "test_matrix_fact"
  "test_matrix_fact.pdb"
  "test_matrix_fact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_fact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
