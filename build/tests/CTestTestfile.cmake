# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_fixed[1]_include.cmake")
include("/root/repo/build/tests/test_dmgc[1]_include.cmake")
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_simd_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_comm_sgd[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_fact[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_statistical[1]_include.cmake")
include("/root/repo/build/tests/test_delayed_sgd[1]_include.cmake")
