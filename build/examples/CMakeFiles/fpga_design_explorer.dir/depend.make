# Empty dependencies file for fpga_design_explorer.
# This may be replaced when dependencies are built.
