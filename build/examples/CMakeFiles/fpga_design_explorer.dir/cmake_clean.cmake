file(REMOVE_RECURSE
  "CMakeFiles/fpga_design_explorer.dir/fpga_design_explorer.cpp.o"
  "CMakeFiles/fpga_design_explorer.dir/fpga_design_explorer.cpp.o.d"
  "fpga_design_explorer"
  "fpga_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
