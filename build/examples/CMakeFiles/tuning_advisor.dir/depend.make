# Empty dependencies file for tuning_advisor.
# This may be replaced when dependencies are built.
