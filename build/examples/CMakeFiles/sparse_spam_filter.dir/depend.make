# Empty dependencies file for sparse_spam_filter.
# This may be replaced when dependencies are built.
