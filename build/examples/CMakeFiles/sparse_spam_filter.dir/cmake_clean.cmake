file(REMOVE_RECURSE
  "CMakeFiles/sparse_spam_filter.dir/sparse_spam_filter.cpp.o"
  "CMakeFiles/sparse_spam_filter.dir/sparse_spam_filter.cpp.o.d"
  "sparse_spam_filter"
  "sparse_spam_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_spam_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
