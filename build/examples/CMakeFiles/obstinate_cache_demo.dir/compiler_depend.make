# Empty compiler generated dependencies file for obstinate_cache_demo.
# This may be replaced when dependencies are built.
