file(REMOVE_RECURSE
  "CMakeFiles/obstinate_cache_demo.dir/obstinate_cache_demo.cpp.o"
  "CMakeFiles/obstinate_cache_demo.dir/obstinate_cache_demo.cpp.o.d"
  "obstinate_cache_demo"
  "obstinate_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obstinate_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
