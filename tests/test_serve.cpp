/**
 * @file
 * Tests for the serving subsystem: precision parsing, ServingModel
 * quantization, registry hot-swap under a concurrent scorer, the
 * batched-equals-single determinism guarantee, request-queue
 * backpressure, and the Ms8 quantization-error bound on digits.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "buckwild/buckwild.h"
#include "test_common.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "dataset/digits.h"
#include "dataset/problem.h"
#include "serve/serve.h"

namespace buckwild {
namespace {

// -------------------------------------------------------------- precision

TEST(ServePrecision, ParsesAndPrints)
{
    EXPECT_EQ(serve::parse_precision("Ms8"), serve::Precision::kInt8);
    EXPECT_EQ(serve::parse_precision("8"), serve::Precision::kInt8);
    EXPECT_EQ(serve::parse_precision("Ms16"), serve::Precision::kInt16);
    EXPECT_EQ(serve::parse_precision("Ms32f"), serve::Precision::kFloat32);
    EXPECT_EQ(serve::parse_precision("32"), serve::Precision::kFloat32);
    EXPECT_EQ(to_string(serve::Precision::kInt8), "Ms8");
    EXPECT_EQ(to_string(serve::Precision::kInt16), "Ms16");
    EXPECT_EQ(to_string(serve::Precision::kFloat32), "Ms32f");
    EXPECT_THROW(serve::parse_precision("Ms7"), std::runtime_error);
}

TEST(ServePrecision, DefaultsFromTrainedSignature)
{
    EXPECT_EQ(serve::precision_from_signature(dmgc::parse_signature("D8M8")),
              serve::Precision::kInt8);
    EXPECT_EQ(serve::precision_from_signature(dmgc::parse_signature("D8M16")),
              serve::Precision::kInt16);
    EXPECT_EQ(
        serve::precision_from_signature(dmgc::parse_signature("D32fM32f")),
        serve::Precision::kFloat32);
}

// ----------------------------------------------------------- ServingModel

TEST(ServingModel, Float32IsExact)
{
    const std::vector<float> w = {0.5f, -1.25f, 3.75f, 0.0f};
    serve::ServingModel model(testutil::make_saved_model(w), serve::Precision::kFloat32, 1);
    ASSERT_EQ(model.dim(), w.size());
    EXPECT_EQ(model.quantum(), 1.0f);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_EQ(model.weights_f32()[i], w[i]);
}

TEST(ServingModel, FormatAdaptsToWeightRange)
{
    // Trained weights escape [-1, 1): the fitted format must widen its
    // integer part (fewer fraction bits) until 5.5 is representable.
    serve::ServingModel model(testutil::make_saved_model({5.5f, -0.25f}),
                              serve::Precision::kInt8, 1);
    EXPECT_GE(model.format().max_value(), 5.5f);
    const float q = model.quantum();
    EXPECT_NEAR(model.weights_i8()[0] * q, 5.5f, q / 2 + 1e-6f);
    EXPECT_NEAR(model.weights_i8()[1] * q, -0.25f, q / 2 + 1e-6f);
}

TEST(ServingModel, QuantizationErrorBoundedByHalfQuantum)
{
    std::vector<float> w;
    for (int i = 0; i < 64; ++i) w.push_back(0.017f * (i - 31));
    serve::ServingModel m8(testutil::make_saved_model(w), serve::Precision::kInt8, 1);
    const float q = m8.quantum();
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_LE(std::fabs(m8.weights_i8()[i] * q - w[i]), q / 2 + 1e-6f);
}

// ----------------------------------------------------------- registry

TEST(ModelRegistry, PublishesMonotonicVersions)
{
    serve::ModelRegistry registry;
    EXPECT_EQ(registry.current_version(), 0u);
    EXPECT_EQ(registry.current(), nullptr);
    EXPECT_EQ(registry.publish(testutil::make_saved_model({1.0f}), serve::Precision::kInt8),
              1u);
    EXPECT_EQ(registry.publish(testutil::make_saved_model({2.0f}), serve::Precision::kInt8),
              2u);
    EXPECT_EQ(registry.current_version(), 2u);
    EXPECT_EQ(registry.current()->version(), 2u);
}

TEST(ModelRegistry, HotSwapUnderConcurrentScorer)
{
    // One thread scores continuously while the main thread keeps
    // republishing models whose weights encode their generation's sign.
    // Every observed score must be internally consistent with the
    // snapshot it came from: snapshots are immutable, so a scorer can
    // never see a half-swapped model.
    const std::size_t dim = 64;
    serve::ModelRegistry registry;
    registry.publish(testutil::make_saved_model(std::vector<float>(dim, 1.0f)),
                     serve::Precision::kInt8);

    const std::vector<float> x(dim, 1.0f);
    serve::InferenceEngine engine;
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> scored{0};
    std::atomic<bool> consistent{true};

    std::thread scorer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto model = registry.current();
            const auto result = engine.score_dense(*model, x.data(), dim);
            // Weights are +1 on odd versions, -1 on even versions: the
            // margin's sign must match the snapshot's version parity.
            const bool odd = model->version() % 2 == 1;
            if (odd != (result.margin > 0.0f))
                consistent.store(false, std::memory_order_relaxed);
            if (result.model_version != model->version())
                consistent.store(false, std::memory_order_relaxed);
            scored.fetch_add(1, std::memory_order_relaxed);
        }
    });

    for (int gen = 2; gen <= 101; ++gen) {
        const float sign = gen % 2 == 1 ? 1.0f : -1.0f;
        registry.publish(testutil::make_saved_model(std::vector<float>(dim, sign)),
                         serve::Precision::kInt8);
        std::this_thread::yield();
    }
    stop.store(true);
    scorer.join();
    EXPECT_TRUE(consistent.load());
    EXPECT_GT(scored.load(), 0u);
    EXPECT_EQ(registry.current_version(), 101u);
}

// -------------------------------------------------------------- engine

TEST(InferenceEngine, SparseMatchesDenseScatter)
{
    std::vector<float> w;
    for (int i = 0; i < 32; ++i) w.push_back(0.03f * (i - 16));
    serve::ServingModel model(testutil::make_saved_model(w), serve::Precision::kInt16, 1);
    serve::InferenceEngine engine;

    const std::vector<std::uint32_t> index = {1, 7, 19, 30};
    const std::vector<float> value = {0.5f, -2.0f, 1.25f, 4.0f};
    std::vector<float> dense(32, 0.0f);
    for (std::size_t k = 0; k < index.size(); ++k)
        dense[index[k]] = value[k];

    const auto sparse =
        engine.score_sparse(model, index.data(), value.data(), index.size());
    const auto full = engine.score_dense(model, dense.data(), dense.size());
    EXPECT_NEAR(sparse.margin, full.margin, 1e-4f);
}

TEST(InferenceEngine, RejectsBadRequests)
{
    serve::ServingModel model(testutil::make_saved_model({1.0f, 2.0f}),
                              serve::Precision::kFloat32, 1);
    serve::InferenceEngine engine;
    const float x[4] = {1, 2, 3, 4};
    EXPECT_THROW(engine.score_dense(model, x, 4), std::runtime_error);
    const std::uint32_t index[1] = {9}; // out of range for dim 2
    const float value[1] = {1.0f};
    EXPECT_THROW(engine.score_sparse(model, index, value, 1),
                 std::runtime_error);
}

TEST(InferenceEngine, LinkFunctions)
{
    using E = serve::InferenceEngine;
    EXPECT_NEAR(E::link(core::Loss::kLogistic, 0.0f), 0.5f, 1e-6f);
    EXPECT_GT(E::link(core::Loss::kLogistic, 4.0f), 0.9f);
    EXPECT_EQ(E::link(core::Loss::kSquared, 1.5f), 1.5f);
    EXPECT_EQ(E::link(core::Loss::kHinge, -2.0f), -2.0f);
}

// ---------------------------------------------------------- request queue

TEST(RequestQueue, BackpressureRejectsImmediately)
{
    serve::RequestQueue queue(2);
    serve::Request r;
    EXPECT_TRUE(queue.try_push(std::move(r)));
    EXPECT_TRUE(queue.try_push(serve::Request{}));
    // Full: the push fails NOW — it never blocks waiting for room.
    EXPECT_FALSE(queue.try_push(serve::Request{}));
    EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, VectoredPushAdmitsPrefix)
{
    serve::RequestQueue queue(4);
    std::vector<serve::Request> first(3);
    EXPECT_EQ(queue.try_push_many(first.data(), first.size()), 3u);
    std::vector<serve::Request> second(3);
    // Only one slot left: a prefix of length 1 is admitted, the caller
    // keeps the rest.
    EXPECT_EQ(queue.try_push_many(second.data(), second.size()), 1u);
    EXPECT_EQ(queue.size(), 4u);
}

TEST(RequestQueue, PopBatchCoalescesUpToMax)
{
    serve::RequestQueue queue(16);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(queue.try_push(serve::Request{}));
    std::vector<serve::Request> batch;
    EXPECT_EQ(queue.pop_batch(batch, 4), 4u);
    EXPECT_EQ(queue.pop_batch(batch, 16), 6u);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, CloseDrainsThenSignalsShutdown)
{
    serve::RequestQueue queue(4);
    ASSERT_TRUE(queue.try_push(serve::Request{}));
    queue.close();
    EXPECT_FALSE(queue.try_push(serve::Request{})) << "closed queue rejects";
    std::vector<serve::Request> batch;
    EXPECT_EQ(queue.pop_batch(batch, 4), 1u) << "drains what was queued";
    EXPECT_EQ(queue.pop_batch(batch, 4), 0u) << "then reports shutdown";
}

TEST(RequestQueue, CloseWakesBlockedConsumer)
{
    serve::RequestQueue queue(4);
    std::thread consumer([&] {
        std::vector<serve::Request> batch;
        EXPECT_EQ(queue.pop_batch(batch, 4), 0u);
    });
    queue.close();
    consumer.join(); // must not hang
}

// -------------------------------------------------------------- server

TEST(Server, BatchedScoresAreBitIdenticalToSingle)
{
    // The acceptance property: coalescing B requests into one kernel
    // sweep must not change a single bit of any score, because batching
    // only amortizes bookkeeping — each request still runs the exact
    // same dot kernel against the same snapshot.
    const std::size_t dim = 96;
    const auto problem = testutil::logistic_problem(dim, 64, 7);
    serve::ModelRegistry registry;
    std::vector<float> w(problem.row(0), problem.row(0) + dim);
    registry.publish(testutil::make_saved_model(std::move(w)), serve::Precision::kInt8);

    // Reference: one-at-a-time through a max_batch=1 server.
    std::vector<float> single(problem.examples);
    {
        serve::ServerConfig cfg;
        cfg.max_batch = 1;
        serve::Server server(registry, cfg);
        for (std::size_t i = 0; i < problem.examples; ++i) {
            auto future = server.submit_dense(std::vector<float>(
                problem.row(i), problem.row(i) + dim));
            ASSERT_TRUE(future.has_value());
            single[i] = future->get().margin;
        }
    }

    // Batched: everything in flight at once through a max_batch=16
    // server, so the workers genuinely coalesce.
    {
        serve::ServerConfig cfg;
        cfg.max_batch = 16;
        serve::Server server(registry, cfg);
        std::vector<std::future<serve::ScoreResult>> futures;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            auto future = server.submit_dense(std::vector<float>(
                problem.row(i), problem.row(i) + dim));
            ASSERT_TRUE(future.has_value());
            futures.push_back(std::move(*future));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const float batched = futures[i].get().margin;
            EXPECT_EQ(batched, single[i]) << "request " << i;
        }
    }
}

TEST(Server, SlotPathMatchesFuturePath)
{
    const std::size_t dim = 32;
    serve::ModelRegistry registry;
    std::vector<float> w(dim);
    for (std::size_t i = 0; i < dim; ++i)
        w[i] = 0.05f * static_cast<float>(i) - 0.8f;
    registry.publish(testutil::make_saved_model(std::move(w)), serve::Precision::kInt16);
    serve::ServerConfig cfg;
    serve::Server server(registry, cfg);

    std::vector<float> x(dim, 0.5f);
    auto future = server.submit_dense(x);
    ASSERT_TRUE(future.has_value());
    const float via_future = future->get().margin;

    serve::ReplySlot slot;
    ASSERT_TRUE(server.submit_dense_view(x.data(), dim, &slot));
    ASSERT_TRUE(slot.wait());
    EXPECT_EQ(slot.result.margin, via_future);
}

TEST(Server, ReportsErrorsThroughBothPaths)
{
    serve::ModelRegistry registry;
    registry.publish(testutil::make_saved_model({1.0f, 2.0f}), serve::Precision::kFloat32);
    serve::ServerConfig cfg;
    serve::Server server(registry, cfg);

    // Dimension mismatch: the future carries the engine's exception.
    auto future = server.submit_dense({1.0f, 2.0f, 3.0f});
    ASSERT_TRUE(future.has_value());
    EXPECT_THROW(future->get(), std::runtime_error);

    // Same failure through a slot: wait() returns false and the error
    // text is published.
    const float x[3] = {1, 2, 3};
    serve::ReplySlot slot;
    ASSERT_TRUE(server.submit_dense_view(x, 3, &slot));
    EXPECT_FALSE(slot.wait());
    EXPECT_FALSE(slot.error.empty());
}

TEST(Server, HotSwapAppliesToLaterRequests)
{
    const std::size_t dim = 16;
    serve::ModelRegistry registry;
    registry.publish(testutil::make_saved_model(std::vector<float>(dim, 1.0f)),
                     serve::Precision::kFloat32);
    serve::ServerConfig cfg;
    serve::Server server(registry, cfg);

    const std::vector<float> x(dim, 1.0f);
    auto before = server.submit_dense(x);
    ASSERT_TRUE(before.has_value());
    const auto first = before->get();
    EXPECT_EQ(first.model_version, 1u);
    EXPECT_GT(first.margin, 0.0f);

    registry.publish(testutil::make_saved_model(std::vector<float>(dim, -1.0f)),
                     serve::Precision::kFloat32);
    auto after = server.submit_dense(x);
    ASSERT_TRUE(after.has_value());
    const auto second = after->get();
    EXPECT_EQ(second.model_version, 2u);
    EXPECT_LT(second.margin, 0.0f);
}

TEST(Server, MetricsCountWhatHappened)
{
    serve::ModelRegistry registry;
    registry.publish(testutil::make_saved_model({0.5f, 0.5f}), serve::Precision::kFloat32);
    serve::ServerConfig cfg;
    cfg.max_batch = 4;
    serve::Server server(registry, cfg);
    for (int i = 0; i < 12; ++i) {
        auto future = server.submit_dense({1.0f, 1.0f});
        ASSERT_TRUE(future.has_value());
        future->get();
    }
    server.stop();
    const auto metrics = server.metrics();
    EXPECT_EQ(metrics.requests, 12u);
    EXPECT_EQ(metrics.rejects, 0u);
    EXPECT_GE(metrics.batches, 3u); // at most 4 per sweep
    EXPECT_EQ(metrics.latencies.size(), 12u);
    EXPECT_GE(metrics.latency_percentile(99), metrics.latency_percentile(50));
}

// ------------------------------------------------- quantization accuracy

TEST(ServeAccuracy, Ms8DigitsErrorWithinQuantizationBound)
{
    // Train a real model on the digits task, publish it at Ms8 and
    // Ms32f, and check the per-request margin error against the analytic
    // bound: biased rounding perturbs each weight by at most q/2, so
    // |z8 - zf| <= (q/2) * ||x||_1 (plus float-summation slack).
    const auto problem = testutil::digits_problem(400, 99);

    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D32fM32f");
    cfg.epochs = 4;
    core::Trainer trainer(cfg);
    trainer.fit(problem);

    const auto saved = testutil::make_saved_model(trainer.model());
    serve::ServingModel m8(saved, serve::Precision::kInt8, 1);
    serve::ServingModel mf(saved, serve::Precision::kFloat32, 2);
    serve::InferenceEngine engine;

    const float q = m8.quantum();
    for (std::size_t i = 0; i < 50; ++i) {
        const float* x = problem.row(i);
        float l1 = 0.0f;
        for (std::size_t d = 0; d < problem.dim; ++d) l1 += std::fabs(x[d]);
        const float z8 =
            engine.score_dense(m8, x, problem.dim).margin;
        const float zf =
            engine.score_dense(mf, x, problem.dim).margin;
        const float bound = q / 2 * l1;
        EXPECT_LE(std::fabs(z8 - zf), bound * 1.01f + 1e-4f)
            << "example " << i;
    }
}

} // namespace
} // namespace buckwild
