/**
 * @file
 * Tests for the first-principles statistical-efficiency model, including
 * an empirical validation: the predicted margin-noise std must match the
 * measured effect of quantizing a random model/dataset within a small
 * constant factor.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dmgc/advisor.h"
#include "dmgc/statistical.h"
#include "fixed/quantize.h"
#include "rng/xorshift.h"
#include "util/stats.h"

namespace buckwild::dmgc {
namespace {

TEST(Statistical, QuantizationVariance)
{
    EXPECT_DOUBLE_EQ(quantization_variance(0.0), 0.0);
    EXPECT_NEAR(quantization_variance(1.0), 1.0 / 12.0, 1e-12);
    EXPECT_NEAR(quantization_variance(0.5), 0.25 / 12.0, 1e-12);
}

TEST(Statistical, DefaultQuanta)
{
    EXPECT_DOUBLE_EQ(default_quantum(Precision::full()), 0.0);
    EXPECT_NEAR(default_quantum(Precision::fixed(8)), 1.0 / 64.0, 1e-12);
    EXPECT_NEAR(default_quantum(Precision::fixed(16)), 1.0 / 16384.0,
                1e-12);
    EXPECT_THROW(default_quantum(Precision::fixed(5)), std::runtime_error);
}

TEST(Statistical, FullPrecisionHasInfiniteSnr)
{
    NoiseQuery q;
    q.signature = Signature::dense_hogwild();
    EXPECT_EQ(margin_noise_std(q), 0.0);
    EXPECT_TRUE(std::isinf(margin_snr(q)));
}

TEST(Statistical, SnrFallsWithModelSize)
{
    NoiseQuery q;
    q.signature = Signature::dense_fixed(8, 8);
    q.model_size = 1 << 10;
    const double snr_small = margin_snr(q);
    q.model_size = 1 << 20;
    const double snr_large = margin_snr(q);
    EXPECT_GT(snr_small, snr_large * 10.0)
        << "noise grows as sqrt(n) while the margin stays O(1)";
}

TEST(Statistical, SixteenBitBuysEightBitsOfHeadroom)
{
    // qm shrinks by 2^8 from M8 to M16, so the same SNR is reached at a
    // model ~2^16 times larger.
    const std::size_t n8 =
        max_model_size_for_snr(Signature::dense_fixed(8, 8), 3.0);
    const std::size_t n16 =
        max_model_size_for_snr(Signature::dense_fixed(8, 16), 3.0);
    EXPECT_GT(n8, 0u);
    EXPECT_GE(n16 / n8, 1u << 10);
}

TEST(Statistical, EmpiricalValidationOfMarginNoise)
{
    // Quantize a random model + dataset at D8M8 and measure the actual
    // margin perturbation; the analytic prediction must be within a
    // factor of 2 (it models residues as uniform, which is approximate).
    constexpr std::size_t kN = 4096;
    constexpr int kTrials = 200;
    NoiseQuery q;
    q.signature = Signature::dense_fixed(8, 8);
    q.model_size = kN;
    const double predicted = margin_noise_std(q);

    const fixed::FixedFormat f8 = fixed::default_format(8);
    rng::Xorshift128 gen(99);
    RunningStats err;
    std::vector<float> w(kN), x(kN);
    const double wr = q.w_rms();
    for (int t = 0; t < kTrials; ++t) {
        double exact = 0.0, quantized = 0.0;
        for (std::size_t k = 0; k < kN; ++k) {
            // Model coordinates at the trained scale; data U[-1,1].
            w[k] = static_cast<float>(
                (rng::to_unit_float(gen()) * 2 - 1) * wr * 1.732);
            x[k] = rng::to_unit_float(gen()) * 2 - 1;
            const double wq =
                fixed::dequantize(fixed::quantize_biased_raw(w[k], f8), f8);
            const double xq =
                fixed::dequantize(fixed::quantize_biased_raw(x[k], f8), f8);
            exact += static_cast<double>(w[k]) * x[k];
            quantized += wq * xq;
        }
        err.add(quantized - exact);
    }
    const double measured = err.stddev();
    EXPECT_GT(measured, predicted / 2.0)
        << "measured " << measured << " predicted " << predicted;
    EXPECT_LT(measured, predicted * 2.0)
        << "measured " << measured << " predicted " << predicted;
}

TEST(Statistical, AdvisorWarnsOnCoarseModels)
{
    AdvisorQuery q;
    q.signature = Signature::dense_fixed(8, 8);
    q.model_size = 1 << 22; // SNR way below 3
    const auto advice = advise(q, PerfModel::paper_model());
    bool warned = false;
    for (const auto& r : advice.recommendations)
        warned |= r.action.find("Raise the model precision") !=
                  std::string::npos;
    EXPECT_TRUE(warned);

    q.model_size = 1 << 8; // tiny model: SNR is fine
    const auto ok = advise(q, PerfModel::paper_model());
    for (const auto& r : ok.recommendations)
        EXPECT_EQ(r.action.find("Raise the model precision"),
                  std::string::npos);
}

TEST(Statistical, RejectsBadQueries)
{
    NoiseQuery q;
    q.model_size = 0;
    EXPECT_THROW(margin_noise_std(q), std::runtime_error);
    q = NoiseQuery{};
    q.x_rms = -1.0;
    EXPECT_THROW(margin_noise_std(q), std::runtime_error);
    EXPECT_THROW(
        max_model_size_for_snr(Signature::dense_fixed(8, 8), 0.0),
        std::runtime_error);
}

} // namespace
} // namespace buckwild::dmgc
