/**
 * @file
 * Tests for the observability layer (src/obs):
 *
 *  - ObsRegistry: create-or-get instrument semantics, counter
 *    monotonicity, histogram percentiles agreeing with
 *    util::percentile_of, ordered snapshots, reset;
 *  - ObsTrace: ring overflow/drop accounting, runtime enable gating of
 *    ScopedSpan, cross-thread flush merge ordering;
 *  - ObsExport: golden-JSON output for both exporters plus a file
 *    round-trip through TempFile;
 *  - ObsMacros: the instrumentation macros hit the global registry when
 *    compiled in (and this suite still passes with BUCKWILD_OBS=OFF,
 *    where they expand to no-ops);
 *  - ObsStress: the TSan target — concurrent spans/counters/histograms
 *    with exact final counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/tracectx.h"
#include "test_common.h"
#include "util/stats.h"

namespace buckwild {
namespace {

// ------------------------------------------------------------- registry

TEST(ObsRegistry, CounterCreateOrGetAndMonotonic)
{
    obs::MetricsRegistry registry;
    obs::Counter& a = registry.counter("requests");
    obs::Counter& b = registry.counter("requests");
    EXPECT_EQ(&a, &b) << "same name must return the same instrument";

    EXPECT_EQ(a.value(), 0u);
    a.add();
    a.add(41);
    EXPECT_EQ(b.value(), 42u);
    b.add(0);
    EXPECT_EQ(a.value(), 42u) << "add(0) must not move the counter";
}

TEST(ObsRegistry, GaugeSetAndAccumulate)
{
    obs::MetricsRegistry registry;
    obs::Gauge& g = registry.gauge("busy_seconds");
    g.set(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.add(0.25);
    g.add(0.25);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsRegistry, HistogramPercentilesAgreeWithUtil)
{
    obs::MetricsRegistry registry;
    obs::Histo& h = registry.histogram("latency");
    std::vector<double> xs;
    // A deliberately unsorted, duplicated sample.
    for (int i = 0; i < 257; ++i)
        xs.push_back(static_cast<double>((i * 97) % 64));
    for (double x : xs) h.record(x);

    for (double p : {0.0, 12.5, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), percentile_of(xs, p))
            << "p = " << p;
    EXPECT_EQ(h.count(), xs.size());
}

TEST(ObsRegistry, ReservoirIsExactBelowCap)
{
    obs::Histo h(/*reservoir_cap=*/128);
    for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
    EXPECT_FALSE(h.sampled());
    EXPECT_EQ(h.samples().size(), 100u)
        << "below the cap every sample is kept verbatim";
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 49.5);
    const auto summary = h.summary();
    EXPECT_EQ(summary.reservoir_cap, 128u);
    EXPECT_FALSE(summary.sampled);
}

TEST(ObsRegistry, ReservoirBoundsMemoryPastCap)
{
    constexpr std::size_t kCap = 64;
    obs::Histo h(kCap);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        h.record(static_cast<double>(i));
        sum += static_cast<double>(i);
    }
    EXPECT_EQ(h.samples().size(), kCap)
        << "the reservoir must never grow past its cap";
    EXPECT_TRUE(h.sampled());
    // count/sum/min/max stay exact running totals regardless of sampling.
    EXPECT_EQ(h.count(), 10000u);
    EXPECT_DOUBLE_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 9999.0);
    const auto summary = h.summary();
    EXPECT_TRUE(summary.sampled);
    EXPECT_EQ(summary.reservoir_cap, kCap);
}

TEST(ObsRegistry, ReservoirIsDeterministicAndResetsClean)
{
    auto fill = [](obs::Histo& h) {
        for (int i = 0; i < 5000; ++i)
            h.record(static_cast<double>((i * 131) % 977));
    };
    obs::Histo a(256), b(256);
    fill(a);
    fill(b);
    EXPECT_EQ(a.samples(), b.samples())
        << "fixed-seed reservoirs must subsample identically";

    // reset() must restore the RNG too, so a reused instrument replays
    // the same reservoir for the same input stream.
    const std::vector<double> first = a.samples();
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    fill(a);
    EXPECT_EQ(a.samples(), first);
}

TEST(ObsRegistry, ReservoirPercentileStaysAReasonableEstimate)
{
    // Uniform 0..9999 through a 512-slot reservoir: the subsampled p50
    // must land near the true median (the seed is fixed, so this bound
    // is deterministic, not flaky).
    obs::Histo h(512);
    for (int i = 0; i < 10000; ++i) h.record(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(50.0), 5000.0, 750.0);
    EXPECT_NEAR(h.percentile(95.0), 9500.0, 400.0);
}

TEST(ObsRegistry, SnapshotIsOrderedAndComplete)
{
    obs::MetricsRegistry registry;
    registry.counter("z.last").add(3);
    registry.counter("a.first").add(1);
    registry.gauge("m.middle").set(0.5);
    registry.histogram("h").record(2.0);
    registry.histogram("h").record(4.0);

    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters.begin()->first, "a.first");
    EXPECT_EQ(snap.counters.at("z.last"), 3u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("m.middle"), 0.5);
    const auto& h = snap.histograms.at("h");
    EXPECT_EQ(h.count, 2u);
    EXPECT_DOUBLE_EQ(h.sum, 6.0);
    EXPECT_DOUBLE_EQ(h.min, 2.0);
    EXPECT_DOUBLE_EQ(h.max, 4.0);
    EXPECT_DOUBLE_EQ(h.p50, 3.0);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandles)
{
    obs::MetricsRegistry registry;
    obs::Counter& c = registry.counter("c");
    obs::Histo& h = registry.histogram("h");
    c.add(7);
    h.record(1.0);
    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    c.add(1);
    EXPECT_EQ(registry.counter("c").value(), 1u)
        << "handles must stay live across reset";
}

// ---------------------------------------------------------------- trace

TEST(ObsTrace, RingOverflowDropsAndCounts)
{
    obs::TraceRing ring(4, 1);
    obs::TraceEvent ev;
    ev.name = "e";
    ev.category = "t";
    for (int i = 0; i < 4; ++i) {
        ev.ts_ns = i;
        EXPECT_TRUE(ring.record(ev));
    }
    EXPECT_FALSE(ring.record(ev)) << "a full ring must drop, not grow";
    EXPECT_FALSE(ring.record(ev));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);

    std::vector<obs::TraceEvent> out;
    ring.drain(out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u) << "drain resets the drop count";
    EXPECT_TRUE(ring.record(ev)) << "a drained ring accepts again";
}

TEST(ObsTrace, ScopedSpanRecordsOnlyWhenEnabled)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.flush(); // isolate from earlier tests

    tracer.set_enabled(false);
    {
        obs::ScopedSpan span("test", "disabled");
    }
    EXPECT_TRUE(tracer.flush().empty());

    tracer.set_enabled(true);
    {
        obs::ScopedSpan span("test", "enabled");
    }
    tracer.set_enabled(false);
    const auto events = tracer.flush();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "enabled");
    EXPECT_STREQ(events[0].category, "test");
    EXPECT_EQ(events[0].type, obs::TraceEvent::Type::kComplete);
    EXPECT_GE(events[0].dur_ns, 0);
}

TEST(ObsTrace, FlushMergesThreadRingsSortedByTimestamp)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.flush();
    tracer.set_enabled(true);

    constexpr int kThreads = 4;
    constexpr int kEvents = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&tracer] {
            for (int i = 0; i < kEvents; ++i)
                tracer.instant("test", "tick");
        });
    for (auto& th : threads) th.join();
    tracer.set_enabled(false);

    const auto events = tracer.flush();
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kEvents);
    EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                               [](const auto& a, const auto& b) {
                                   return a.ts_ns < b.ts_ns;
                               }));
    // Every emitting thread contributed under its own trace tid.
    std::vector<std::uint32_t> tids;
    for (const auto& ev : events) tids.push_back(ev.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// -------------------------------------------------------------- tracectx

TEST(ObsTraceCtx, RootAndChildLineage)
{
    const obs::TraceContext a = obs::make_root_context();
    const obs::TraceContext b = obs::make_root_context();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(a.same_trace(b)) << "roots must not share a trace id";
    EXPECT_EQ(a.parent, 0u);

    const obs::TraceContext child = obs::child_of(a);
    EXPECT_TRUE(child.valid());
    EXPECT_TRUE(child.same_trace(a));
    EXPECT_EQ(child.parent, a.span);
    EXPECT_NE(child.span, a.span);

    EXPECT_FALSE(obs::child_of(obs::TraceContext{}).valid());
}

TEST(ObsTraceCtx, HexIdsAreFixedWidthLowercase)
{
    obs::TraceContext ctx;
    ctx.trace_lo = 0xabc;
    ctx.trace_hi = 0x1;
    EXPECT_EQ(obs::trace_id_hex(ctx),
              "00000000000000010000000000000abc");
    EXPECT_EQ(obs::span_id_hex(0xDEADBEEFull), "00000000deadbeef");
}

TEST(ObsTraceCtx, WireBlockRoundTripAndRejections)
{
    obs::WireTrace in;
    in.ctx.trace_lo = 0x1111;
    in.ctx.trace_hi = 0x2222;
    in.ctx.span = 0x3333;
    in.ctx.parent = 0x4444;
    in.send_ts_ns = 1234567;
    in.echo_send_ts_ns = 7;
    in.echo_recv_ts_ns = 9;
    std::vector<std::uint8_t> bytes;
    obs::append_trace_block(bytes, in);
    ASSERT_EQ(bytes.size(), obs::kTraceBlockBytes);
    EXPECT_EQ(bytes[0], obs::kTraceBlockTag);
    EXPECT_EQ(bytes[1], obs::kTraceBlockVersion);

    obs::WireTrace out;
    ASSERT_TRUE(obs::parse_trace_block(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out.ctx.trace_lo, in.ctx.trace_lo);
    EXPECT_EQ(out.ctx.trace_hi, in.ctx.trace_hi);
    EXPECT_EQ(out.ctx.span, in.ctx.span);
    EXPECT_EQ(out.ctx.parent, in.ctx.parent);
    EXPECT_EQ(out.send_ts_ns, in.send_ts_ns);
    EXPECT_EQ(out.echo_send_ts_ns, in.echo_send_ts_ns);
    EXPECT_EQ(out.echo_recv_ts_ns, in.echo_recv_ts_ns);

    // The parser takes exactly one block — nothing shorter or longer.
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_FALSE(obs::parse_trace_block(bytes.data(), n, out));
    std::vector<std::uint8_t> longer = bytes;
    longer.push_back(0);
    EXPECT_FALSE(
        obs::parse_trace_block(longer.data(), longer.size(), out));

    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 0xCF; // tag
    EXPECT_FALSE(obs::parse_trace_block(bad.data(), bad.size(), out));
    bad = bytes;
    bad[1] = obs::kTraceBlockVersion + 1;
    EXPECT_FALSE(obs::parse_trace_block(bad.data(), bad.size(), out));
    bad = bytes;
    std::fill(bad.begin() + 2, bad.begin() + 18, 0); // zero trace id
    EXPECT_FALSE(obs::parse_trace_block(bad.data(), bad.size(), out));
}

TEST(ObsTraceCtx, ClockSampleFromReply)
{
    // The NTP identity on a hand-built exchange: request sent at a1,
    // received at b1 (responder clock), reply sent at b2, received at
    // a2 (local clock again).
    obs::WireTrace reply;
    reply.ctx.trace_lo = 1;
    reply.echo_send_ts_ns = 1000; // a1
    reply.echo_recv_ts_ns = 5400; // b1
    reply.send_ts_ns = 5600;      // b2
    const obs::ClockSample s = obs::clock_sample_from_reply(reply, 2000);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.offset_ns, 4000); // ((5400-1000)+(5600-2000))/2
    EXPECT_EQ(s.rtt_ns, 800);     // (2000-1000)-(5600-5400)

    // A request block (no echoes) is not a sample.
    obs::WireTrace request;
    request.ctx.trace_lo = 1;
    request.send_ts_ns = 42;
    EXPECT_FALSE(obs::clock_sample_from_reply(request, 100).valid);
    // Non-causal timestamps (a2 < a1) are refused, not averaged in.
    EXPECT_FALSE(obs::clock_sample_from_reply(reply, 500).valid);
}

// --------------------------------------------------------------- export

TEST(ObsExport, ChromeTraceGoldenJson)
{
    std::vector<obs::TraceEvent> events(3);
    events[0].category = "test";
    events[0].name = "work";
    events[0].type = obs::TraceEvent::Type::kComplete;
    events[0].tid = 3;
    events[0].ts_ns = 1000;
    events[0].dur_ns = 500;
    events[1].category = "io";
    events[1].name = "bytes";
    events[1].type = obs::TraceEvent::Type::kCounter;
    events[1].tid = 1;
    events[1].ts_ns = 2000;
    events[1].value = 7.0;
    events[2].category = "io";
    events[2].name = "mark";
    events[2].type = obs::TraceEvent::Type::kInstant;
    events[2].tid = 2;
    events[2].ts_ns = 2500;

    std::ostringstream out;
    obs::write_chrome_trace(out, events);
    const std::string golden =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"work\",\"cat\":\"test\",\"pid\":1,\"tid\":3,"
        "\"ts\":1,\"ph\":\"X\",\"dur\":0.5}\n"
        ",{\"name\":\"bytes\",\"cat\":\"io\",\"pid\":1,\"tid\":1,"
        "\"ts\":2,\"ph\":\"C\",\"args\":{\"value\":7}}\n"
        ",{\"name\":\"mark\",\"cat\":\"io\",\"pid\":1,\"tid\":2,"
        "\"ts\":2.5,\"ph\":\"i\",\"s\":\"t\"}]}\n";
    EXPECT_EQ(out.str(), golden);
}

TEST(ObsExport, ProcessMetadataAndTraceArgs)
{
    std::vector<obs::TraceEvent> events(2);
    events[0].category = "gate";
    events[0].name = "gate.score";
    events[0].type = obs::TraceEvent::Type::kComplete;
    events[0].tid = 1;
    events[0].ts_ns = 1000;
    events[0].dur_ns = 500;
    events[0].ctx.trace_lo = 0xab;
    events[0].ctx.span = 2;
    events[0].ctx.parent = 1;
    events[1].category = "gate";
    events[1].name = "clocksync";
    events[1].type = obs::TraceEvent::Type::kClockSync;
    events[1].tid = 1;
    events[1].ts_ns = 2000;
    events[1].value = 250.0; // offset_ns
    events[1].dur_ns = 80;   // rtt_ns
    events[1].ctx.trace_lo = 0xab;
    events[1].ctx.span = 3;

    obs::TraceProcessInfo process;
    process.label = "worker1";
    process.pid = 42;
    std::ostringstream out;
    obs::write_chrome_trace(out, events, process);
    const std::string text = out.str();
    // Process metadata names the pid buckwild_tracemerge shows.
    EXPECT_NE(text.find("\"name\":\"process_name\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"name\":\"worker1\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\":42"), std::string::npos);
    // Traced events carry their fixed-width hex identity in args.
    EXPECT_NE(
        text.find(
            "\"trace\":\"000000000000000000000000000000ab\""),
        std::string::npos);
    EXPECT_NE(text.find("\"span\":\"0000000000000002\""),
              std::string::npos);
    EXPECT_NE(text.find("\"parent\":\"0000000000000001\""),
              std::string::npos);
    // The clocksync instant exposes its offset/rtt for the merge tool.
    EXPECT_NE(text.find("\"offset_ns\":250"), std::string::npos);
    EXPECT_NE(text.find("\"rtt_ns\":80"), std::string::npos);

    // Without a label the traditional single-process shape is emitted:
    // fixed pid 1, no metadata event (the golden above pins it).
    std::ostringstream plain;
    obs::write_chrome_trace(plain, events);
    EXPECT_EQ(plain.str().find("process_name"), std::string::npos);
    EXPECT_NE(plain.str().find("\"pid\":1,"), std::string::npos);
}

TEST(ObsExport, FlatMetricsGoldenJson)
{
    obs::MetricsRegistry registry;
    registry.counter("x.count").add(3);
    registry.gauge("g").set(1.5);
    obs::Histo& h = registry.histogram("h");
    // Equal samples so every percentile is bit-exact (interpolation
    // between equal neighbors), keeping the golden string stable.
    h.record(2.5);
    h.record(2.5);

    std::ostringstream out;
    obs::write_flat_metrics(out, registry.snapshot());
    const std::string golden =
        "{\"counters\":{\n"
        "\"x.count\":3},\"gauges\":{\n"
        "\"g\":1.5},\"histograms\":{\n"
        "\"h\":{\"count\":2,\"sum\":5,\"min\":2.5,\"max\":2.5,"
        "\"p50\":2.5,\"p95\":2.5,\"p99\":2.5}}}\n";
    EXPECT_EQ(out.str(), golden);
}

TEST(ObsExport, FlatMetricsNotesReservoirSampling)
{
    // Once a histogram starts subsampling, the export must say so (the
    // percentiles are estimates from that point on). A small registry
    // histogram cannot be given a custom cap, so this drives the default
    // cap over the edge.
    obs::MetricsRegistry registry;
    obs::Histo& h = registry.histogram("lat");
    for (std::size_t i = 0; i < obs::Histo::kDefaultReservoir + 1; ++i)
        h.record(1.0);

    std::ostringstream out;
    obs::write_flat_metrics(out, registry.snapshot());
    EXPECT_NE(out.str().find("\"sampled\":true,\"reservoir\":8192"),
              std::string::npos)
        << out.str();
}

TEST(ObsExport, JsonEscapesAndNonFiniteValues)
{
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("quote\"back\\slash\nline").value("tab\there");
    w.key("nan").value(std::nan(""));
    w.end_object();
    EXPECT_EQ(out.str(),
              "{\"quote\\\"back\\\\slash\\nline\":\"tab\\there\","
              "\"nan\":null}");
}

TEST(ObsExport, MetricsFileRoundTrip)
{
    obs::MetricsRegistry registry;
    registry.counter("written").add(11);
    registry.histogram("lat").record(0.25);

    testutil::TempFile file("metrics");
    ASSERT_TRUE(obs::export_metrics_file(file.path(), registry));

    std::ifstream in(file.path());
    std::stringstream read_back;
    read_back << in.rdbuf();
    std::ostringstream direct;
    obs::write_flat_metrics(direct, registry.snapshot());
    EXPECT_EQ(read_back.str(), direct.str())
        << "file bytes must match the streamed exporter exactly";
    EXPECT_NE(read_back.str().find("\"written\":11"), std::string::npos);
}

TEST(ObsExport, RejectsUnwritablePath)
{
    obs::MetricsRegistry registry;
    EXPECT_FALSE(
        obs::export_metrics_file("/nonexistent/dir/metrics.json", registry));
    EXPECT_FALSE(obs::export_trace_file("/nonexistent/dir/trace.json"));
}

// --------------------------------------------------------------- macros

TEST(ObsMacros, CountersHitTheGlobalRegistryWhenCompiledIn)
{
    obs::Counter& c =
        obs::MetricsRegistry::global().counter("test.macro_counter");
    const std::uint64_t before = c.value();
    BUCKWILD_OBS_COUNT("test.macro_counter", 5);
#if BUCKWILD_OBS_ENABLED
    EXPECT_EQ(c.value(), before + 5);
#else
    EXPECT_EQ(c.value(), before) << "OFF build must compile macros out";
#endif
}

TEST(ObsMacros, SpansAreInertWhileTracingDisabled)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.flush();
    tracer.set_enabled(false);
    {
        BUCKWILD_OBS_SPAN("test", "inert");
        BUCKWILD_OBS_INSTANT("test", "inert");
    }
    EXPECT_TRUE(tracer.flush().empty());
}

// --------------------------------------------------------------- stress

TEST(ObsStress, ConcurrentSpansCountersAndHistogramsAreExact)
{
    // The TSan target: every write path of the layer (counter RMW, gauge
    // CAS, histogram mutex, span ring push) hammered from four threads
    // while the main thread flushes mid-run — the exact race --trace-out
    // has with live workers. Rings are sized above the per-thread event
    // count so nothing drops and the final accounting is exact (the drop
    // path itself is pinned deterministically above).
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;

    obs::Tracer& tracer = obs::Tracer::global();
    tracer.flush();
    tracer.set_ring_capacity(4096);
    tracer.set_enabled(true);

    obs::Counter& counter =
        obs::MetricsRegistry::global().counter("test.stress_counter");
    obs::Gauge& gauge =
        obs::MetricsRegistry::global().gauge("test.stress_gauge");
    obs::Histo& histo =
        obs::MetricsRegistry::global().histogram("test.stress_histo");
    const std::uint64_t count_before = counter.value();
    const std::size_t histo_before = histo.count();
    gauge.set(0.0);

    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                obs::ScopedSpan span("test", "stress");
                counter.add(1);
                gauge.add(1.0);
                histo.record(static_cast<double>(i));
            }
        });
    // A reader racing the writers (what --trace-out does mid-run).
    std::size_t merged = 0;
    while (!done.load(std::memory_order_relaxed)) {
        merged += tracer.flush().size();
        if (counter.value() - count_before >=
            static_cast<std::uint64_t>(kThreads) * kIters)
            done.store(true, std::memory_order_relaxed);
        std::this_thread::yield();
    }
    for (auto& th : threads) th.join();
    tracer.set_enabled(false);

    merged += tracer.flush().size();
    EXPECT_EQ(counter.value() - count_before,
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIters);
    EXPECT_EQ(histo.count() - histo_before,
              static_cast<std::size_t>(kThreads) * kIters);
    EXPECT_EQ(merged, static_cast<std::size_t>(kThreads) * kIters)
        << "every span ends up in exactly one flush";
    EXPECT_EQ(tracer.dropped(), 0u);
    tracer.set_ring_capacity(65536);
}

} // namespace
} // namespace buckwild
