/**
 * @file
 * The precision-substrate suite: cross-layer bit-identity against golden
 * vectors captured from the pre-substrate (seed) implementations, the
 * saturation-semantics pin, unbiased-rounding statistics, and the
 * scalar-vs-AVX2 kernel equivalence checks.
 *
 * The golden constants below were printed by the seed code (hex float
 * literals, so they embed bit-exactly). Every migrated call site — engine
 * loss traces, ps wire payloads, serve published models, nn grids, fixed
 * array quantization — must keep reproducing them exactly.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "buckwild/buckwild.h"
#include "kernel_comparator.h"
#include "test_common.h"
#include "nn/quantizer.h"
#include "ps/quantize.h"
#include "serve/model_registry.h"
#include "serve/precision.h"

namespace buckwild {
namespace {

/// The deterministic input stream every golden vector was captured with.
std::vector<float>
test_input(std::size_t n, float scale)
{
    std::vector<float> v(n);
    rng::Xorshift128 gen(0xC0FFEE);
    for (auto& x : v)
        x = (rng::to_unit_float(gen()) * 2.0f - 1.0f) * scale;
    return v;
}

// ---------------------------------------------------------------------
// Saturation-semantics pin (the two conventions, made explicit)
// ---------------------------------------------------------------------

TEST(LowpGrid, FixedGridsUseAsymmetricTwosComplementBounds)
{
    const auto grid = lowp::GridSpec::from_fixed(fixed::default_format(8));
    EXPECT_EQ(grid.raw_min, -128);
    EXPECT_EQ(grid.raw_max, 127);
    // The most negative code IS representable on the raw/fixed path
    // (hardware pack-with-saturation semantics).
    EXPECT_EQ(lowp::round_biased_raw(-1e9, grid), -128);
    EXPECT_EQ(lowp::saturate_raw(-128, grid), -128);
}

TEST(LowpGrid, SymmetricGridsExcludeTheMostNegativeCode)
{
    // The nn / G-term float-storage convention: bounds are ±(2^(b-1)-1),
    // so negating any representable value never saturates.
    const auto grid = lowp::GridSpec::symmetric(8, 2.0);
    EXPECT_EQ(grid.raw_min, -127);
    EXPECT_EQ(grid.raw_max, 127);
    const float q = grid.quantum_f();
    EXPECT_EQ(lowp::snap_nearest(-1e9f, grid), -127.0f * q);
    EXPECT_EQ(lowp::snap_nearest(-1e9f, grid),
              -lowp::snap_nearest(1e9f, grid));
}

TEST(LowpGrid, SymmetricQuantumMatchesQuantSpec)
{
    for (int bits : {2, 4, 8, 16}) {
        nn::QuantSpec spec{bits, nn::Round::kNearest, 2.0f};
        EXPECT_EQ(spec.grid().quantum_f(), spec.quantum()) << bits;
    }
}

// ---------------------------------------------------------------------
// Golden: fixed:: array quantization (biased + per-write unbiased)
// ---------------------------------------------------------------------

TEST(LowpGolden, FixedUnbiasedArrayMatchesSeed)
{
    const auto v = test_input(16, 1.2f);
    std::vector<std::int8_t> out(v.size());
    rng::XorshiftSource src(7);
    fixed::quantize_array(v.data(), out.data(), v.size(),
                          fixed::default_format(8),
                          fixed::Rounding::kUnbiased, &src);
    const std::vector<std::int8_t> expected = {-76, 72, -73, -4, -59, -57,
                                               54,  62, 70,  -47, 31, -1,
                                               15,  -56, -72, 63};
    testutil::expect_all_eq(out, expected, "fixed q8 unbiased raw");
}

// ---------------------------------------------------------------------
// Golden: engine loss traces (D-quantization + M-writes + G-term)
// ---------------------------------------------------------------------

TEST(LowpGolden, EngineLossTraceD8M8MatchesSeed)
{
    const auto problem = testutil::logistic_problem(32, 256, 1234);
    core::TrainerConfig cfg;
    cfg.signature = dmgc::Signature::dense_fixed(8, 8);
    cfg.threads = 1;
    cfg.epochs = 3;
    cfg.impl = simd::Impl::kReference;
    core::Trainer trainer(cfg);
    const auto m = trainer.fit(problem);
    const std::vector<double> expected = {0x1.36c0e2bef0cp-2,
                                          0x1.104c565748p-2,
                                          0x1.027f76966a8p-2};
    ASSERT_EQ(m.loss_trace.size(), expected.size());
    testutil::expect_all_eq(m.loss_trace, expected, "d8m8 loss trace");
    EXPECT_EQ(m.final_loss, 0x1.027f76966a8p-2);
}

TEST(LowpGolden, EngineLossTraceD16M16G8MatchesSeed)
{
    const auto problem = testutil::logistic_problem(32, 256, 99);
    core::TrainerConfig cfg;
    cfg.signature = dmgc::Signature::dense_fixed(16, 16);
    cfg.signature.gradient = dmgc::Precision::fixed(8);
    cfg.threads = 1;
    cfg.epochs = 3;
    cfg.impl = simd::Impl::kReference;
    core::Trainer trainer(cfg);
    const auto m = trainer.fit(problem);
    const std::vector<double> expected = {0x1.78d76fb4834p-2,
                                          0x1.602dcbad77ep-2,
                                          0x1.59054f7305dep-2};
    ASSERT_EQ(m.loss_trace.size(), expected.size());
    testutil::expect_all_eq(m.loss_trace, expected, "d16m16g8 loss trace");
    EXPECT_EQ(m.final_loss, 0x1.59054f7305dep-2);
}

// ---------------------------------------------------------------------
// Golden: ps C-codec wire payloads (Cs1 and Cs8)
// ---------------------------------------------------------------------

TEST(LowpGolden, PsWirePayloadCs1MatchesSeed)
{
    const auto g = test_input(13, 0.8f);
    std::vector<float> residual(g.size(), 0.0f);
    const auto wire =
        ps::encode_gradient(g.data(), g.size(), 1, residual.data());
    EXPECT_EQ(wire.scale, 0x1.feb032p-2f);
    const std::vector<std::uint8_t> expected = {0x3d, 0x0a};
    testutil::expect_all_eq(wire.payload, expected, "cs1 payload");
    // Error-feedback invariant: r == g - q bit-exactly (the float
    // subtraction the worker replays when it adds the residual back).
    const auto q = ps::decode_gradient(wire);
    for (std::size_t k = 0; k < g.size(); ++k)
        EXPECT_EQ(residual[k], g[k] - q[k]) << k;
}

TEST(LowpGolden, PsWirePayloadCs8MatchesSeed)
{
    const auto g = test_input(13, 0.8f);
    std::vector<float> residual(g.size(), 0.0f);
    const auto wire =
        ps::encode_gradient(g.data(), g.size(), 8, residual.data());
    EXPECT_EQ(wire.scale, 0x1.9908f8p-8f);
    const std::vector<std::uint8_t> expected = {0x81, 0x78, 0x85, 0xfb, 0x9d,
                                                0xa0, 0x5a, 0x68, 0x76, 0xb1,
                                                0x33, 0xfd, 0x19};
    testutil::expect_all_eq(wire.payload, expected, "cs8 payload");
    const auto q = ps::decode_gradient(wire);
    for (std::size_t k = 0; k < g.size(); ++k)
        EXPECT_EQ(residual[k], g[k] - q[k]) << k;
}

// ---------------------------------------------------------------------
// Golden: serve publish-time Ms quantization
// ---------------------------------------------------------------------

TEST(LowpGolden, ServePublishedModelsMatchSeed)
{
    const auto model = testutil::make_saved_model(test_input(12, 3.0f));

    serve::ServingModel m8(model, serve::Precision::kInt8, 1);
    EXPECT_EQ(m8.format().frac_bits, 5);
    const std::vector<std::int8_t> raw8 = {-95, 90, -92, -4, -74, -72,
                                           67,  78, 88,  -59, 38, -2};
    for (std::size_t k = 0; k < raw8.size(); ++k)
        EXPECT_EQ(m8.weights_i8()[k], raw8[k]) << k;

    serve::ServingModel m16(model, serve::Precision::kInt16, 2);
    EXPECT_EQ(m16.format().frac_bits, 13);
    const std::vector<std::int16_t> raw16 = {-24350, 22943,  -23526, -1002,
                                             -18959, -18483, 17192,  19948,
                                             22538,  -15155, 9686,   -538};
    for (std::size_t k = 0; k < raw16.size(); ++k)
        EXPECT_EQ(m16.weights_i16()[k], raw16[k]) << k;
}

// ---------------------------------------------------------------------
// Golden: nn weight-grid quantization (stochastic, seeded)
// ---------------------------------------------------------------------

TEST(LowpGolden, NnStochasticGridMatchesSeed)
{
    auto v = test_input(16, 1.5f);
    nn::QuantSpec spec{8, nn::Round::kStochastic, 2.0f};
    rng::Xorshift128 gen(42);
    nn::quantize_array(v.data(), v.size(), spec, gen);
    const std::vector<float> expected = {
        -0x1.7cp+0, 0x1.68p+0,  -0x1.7p+0,  -0x1p-4,
        -0x1.28p+0, -0x1.24p+0, 0x1.0cp+0,  0x1.38p+0,
        0x1.6p+0,   -0x1.d8p-1, 0x1.3p-1,   -0x1p-5,
        0x1.3p-2,   -0x1.1cp+0, -0x1.68p+0, 0x1.3cp+0};
    testutil::expect_all_eq(v, expected, "nn q8 stochastic");
}

// ---------------------------------------------------------------------
// Unbiased rounding statistics: E[Q(x)] = x (Eq. 4)
// ---------------------------------------------------------------------

TEST(LowpRound, UnbiasedRoundingIsMeanPreserving)
{
    // For each of a spread of in-range inputs, average many stochastic
    // roundings and check the mean against a CI bound: the per-sample
    // error is < 1 quantum, so the standard error of kTrials samples is
    // < q / sqrt(kTrials); 6 sigma gives a comfortably deterministic test.
    const auto grid = lowp::GridSpec::from_fixed(fixed::default_format(8));
    const double q = grid.quantum;
    constexpr int kTrials = 40000;
    rng::Xorshift128 gen(0xF00D);
    for (double x : {-1.37, -0.5018, -0.031, 0.0, 0.24996, 0.77, 1.93}) {
        double sum = 0.0;
        for (int t = 0; t < kTrials; ++t)
            sum += lowp::dequantize_raw(
                lowp::round_unbiased_raw(x, grid,
                                         rng::to_unit_float(gen())),
                grid);
        const double mean = sum / kTrials;
        EXPECT_NEAR(mean, x, 6.0 * q / std::sqrt(double(kTrials))) << x;
    }
}

TEST(LowpRound, SharedRandomnessRoundingIsMeanPreservingAcrossBlocks)
{
    // The §5.2 path: mean over many *blocks* (fresh 256-bit draw each
    // round) of the shared-rounded value must also converge to x.
    const auto grid = lowp::GridSpec::symmetric(8, 2.0);
    const float x = 0.7113f;
    lowp::SharedRandom shared(123, 1); // refresh every tick
    constexpr int kTrials = 40000;
    double sum = 0.0;
    float in[8], out_check;
    std::int8_t out[8];
    for (int i = 0; i < 8; ++i) in[i] = x;
    for (int t = 0; t < kTrials; ++t) {
        shared.tick();
        lowp::quantize_shared(in, out, 8, grid, shared.words());
        sum += static_cast<double>(out[0]) * grid.quantum;
        // All lanes round the same input with *different* words.
        out_check = static_cast<float>(out[0]);
        (void)out_check;
    }
    EXPECT_NEAR(sum / kTrials, x,
                6.0 * grid.quantum / std::sqrt(double(kTrials)));
}

// ---------------------------------------------------------------------
// Kernel equivalence (bit-exact, registry-enumerated)
// ---------------------------------------------------------------------

TEST(LowpKernels, AllRegisteredVariantsMatchScalarReference)
{
    // The KernelComparator sweeps every registered "lowp.*" variant
    // (whatever this build + host carries) against the scalar reference
    // over all dims 0..129, large odd sizes, and unaligned offsets —
    // bit-exact everywhere, including the saturation paths.
    testutil::compare_lowp_kernels();
}

TEST(LowpKernels, PublicEntriesFollowTheForcedResolution)
{
    // The public array entries dispatch through generation-checked
    // caches; forcing the reference tier must steer them (and the
    // vectorized() report) without recompilation.
    const auto grid = lowp::GridSpec::from_fixed(fixed::default_format(8));
    const auto in = test_input(64, 6.0f);
    std::vector<std::int8_t> forced(64), direct(64);
    {
        simd::ForcedImplGuard guard(simd::Impl::kReference);
        EXPECT_FALSE(lowp::vectorized());
        lowp::quantize_biased(in.data(), forced.data(), 64, grid);
    }
    lowp::scalar::quantize_biased(in.data(), direct.data(), 64, grid);
    testutil::expect_all_eq(forced, direct, "forced-reference biased i8");
}

TEST(LowpKernels, DequantizeRoundTripsRawCodes)
{
    const auto grid = lowp::GridSpec::from_fixed(fixed::default_format(8));
    std::vector<std::int8_t> raw(256);
    for (int i = 0; i < 256; ++i)
        raw[i] = static_cast<std::int8_t>(i - 128);
    std::vector<float> vals(raw.size());
    lowp::dequantize(raw.data(), vals.data(), raw.size(), grid);
    std::vector<std::int8_t> back(raw.size());
    lowp::quantize_biased(vals.data(), back.data(), vals.size(), grid);
    testutil::expect_all_eq(back, raw, "i8 round trip");
}

// ---------------------------------------------------------------------
// SharedRandom semantics
// ---------------------------------------------------------------------

TEST(LowpSharedRandom, TickRefreshesOnSchedule)
{
    lowp::SharedRandom a(42, 3);
    lowp::SharedRandom b(42, 3);
    std::vector<std::uint32_t> first(a.words(), a.words() + 8);
    // Same seed -> same initial block.
    EXPECT_EQ(first, std::vector<std::uint32_t>(b.words(), b.words() + 8));
    // Not refreshed until the third tick.
    EXPECT_FALSE(a.tick());
    EXPECT_FALSE(a.tick());
    EXPECT_EQ(first, std::vector<std::uint32_t>(a.words(), a.words() + 8));
    EXPECT_TRUE(a.tick());
    EXPECT_NE(first, std::vector<std::uint32_t>(a.words(), a.words() + 8));
}

TEST(LowpSharedRandom, WorkerSeedMatchesEngineExpression)
{
    const std::uint64_t seed = 0x5EED;
    for (std::size_t tid = 0; tid < 4; ++tid)
        EXPECT_EQ(lowp::SharedRandom::worker_seed(seed, tid),
                  seed * 0x9E3779B9u + 0xB5297A4Du * (tid + 1));
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

TEST(LowpDispatch, ValueAndIndexRepsResolve)
{
    EXPECT_EQ(lowp::with_value_rep(
                  8, [](auto t) {
                      return static_cast<int>(
                          sizeof(typename decltype(t)::type));
                  }),
              1);
    EXPECT_EQ(lowp::with_value_rep(
                  16, [](auto t) {
                      return static_cast<int>(
                          sizeof(typename decltype(t)::type));
                  }),
              2);
    EXPECT_TRUE(lowp::with_value_rep(32, [](auto t) {
        return lowp::is_float_rep<typename decltype(t)::type>;
    }));
    EXPECT_EQ(lowp::with_index_rep(
                  16, [](auto t) {
                      return static_cast<int>(
                          sizeof(typename decltype(t)::type));
                  }),
              2);
}

TEST(LowpDispatch, CheckedRepWidthNormalizes)
{
    EXPECT_EQ(lowp::checked_rep_width(dmgc::Precision::fixed(8), "x"), 8);
    EXPECT_EQ(lowp::checked_rep_width(dmgc::Precision::fixed(16), "x"), 16);
    EXPECT_EQ(lowp::checked_rep_width(dmgc::Precision::full(), "x"), 32);
}

} // namespace
} // namespace buckwild
