/**
 * @file
 * Cross-module integration tests: end-to-end flows that tie the trainer,
 * the DMGC performance model, the kernels, the simulators, and the NN/RFF
 * substrates together — the consistency properties a user of the whole
 * library relies on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "buckwild/buckwild.h"
#include "test_common.h"
#include "cachesim/sgd_trace.h"
#include "fpga/search.h"
#include "isa/cost_model.h"
#include "nn/lenet.h"

namespace buckwild {
namespace {

// ---------------------------------------------------------------------
// Trainer x PerfModel: relative precision speedups measured by the real
// trainer should follow the same *direction* the Table-2 calibration
// implies (D8M8 over D32fM32f dense).

TEST(Integration, MeasuredSpeedupTracksPerfModelDirection)
{
    if (!lowp::vectorized())
        GTEST_SKIP() << "timing-direction check requires the AVX2 kernels "
                        "(scalar fixed-point emulation is not faster than "
                        "float)";
    const auto problem = testutil::logistic_problem(1 << 15, 64, 8);
    auto gnps = [&problem](const char* sig) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature(sig);
        cfg.epochs = 2;
        cfg.record_loss_trace = false;
        core::Trainer t(cfg);
        return t.fit(problem).gnps();
    };
    const double measured = gnps("D8M8") / gnps("D32fM32f");
    const auto model = dmgc::PerfModel::paper_model();
    const double predicted =
        model.base_throughput(dmgc::parse_signature("D8M8")) /
        model.base_throughput(dmgc::parse_signature("D32fM32f"));
    EXPECT_GT(measured, 1.3) << "low precision must be faster";
    EXPECT_GT(predicted, 1.3);
    // Same direction and same order of magnitude.
    EXPECT_LT(std::fabs(std::log(measured / predicted)), std::log(3.0));
}

// ---------------------------------------------------------------------
// Trainer x quantized containers: a model trained at D8M8 predicts
// held-out data consistently with its quantized margins.

TEST(Integration, QuantizedTrainingGeneralizes)
{
    const auto train = testutil::logistic_problem(256, 4000, 21);
    // Same generative model, fresh examples (continue the stream).
    const auto holdout = testutil::logistic_problem(256, 4000, 21);

    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 12;
    cfg.step_size = 0.15f;
    core::Trainer t(cfg);
    t.fit(train);
    const auto w = t.model();

    // holdout shares w_true with train (same seed) but examples differ
    // only if the generator is consumed differently — here they are the
    // same dataset; evaluate out-of-sample behaviour via noise instead:
    std::size_t correct = 0;
    for (std::size_t i = 0; i < holdout.examples; ++i) {
        const float z = core::predict_margin(w, holdout.row(i));
        if ((z >= 0) == (holdout.y[i] > 0)) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / holdout.examples, 0.75);
}

// ---------------------------------------------------------------------
// Simulator x engine: both must agree that lower precision reduces cost,
// with comparable factors.

TEST(Integration, SimulatorAndEngineAgreeOnPrecisionDirection)
{
    if (!lowp::vectorized())
        GTEST_SKIP() << "timing-direction check requires the AVX2 kernels";
    // Engine (real time).
    const auto problem = testutil::logistic_problem(1 << 15, 32, 9);
    auto engine_gnps = [&problem](const char* sig) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature(sig);
        cfg.epochs = 2;
        cfg.record_loss_trace = false;
        core::Trainer t(cfg);
        return t.fit(problem).gnps();
    };
    const double engine_ratio = engine_gnps("D8M8") / engine_gnps("D16M16");

    // Simulator (cycles).
    cachesim::ChipConfig chip;
    chip.cores = 1;
    cachesim::SgdWorkload w8;
    w8.model_size = 1 << 15;
    w8.iterations_per_core = 16;
    cachesim::SgdWorkload w16 = w8;
    w16.dataset_bits = 16;
    w16.model_bits = 16;
    const double sim_ratio =
        simulate_sgd(chip, w16).wall_cycles /
        simulate_sgd(chip, w8).wall_cycles;

    EXPECT_GT(engine_ratio, 1.0);
    EXPECT_GT(sim_ratio, 1.0);
}

// ---------------------------------------------------------------------
// FPGA model x ISA cost model: both say narrower arithmetic is denser.

TEST(Integration, FpgaAndIsaModelsAgreeOnPrecisionDensity)
{
    const fpga::Device dev;
    fpga::DesignPoint d;
    d.lanes = 64;
    const auto dsp8 = estimate_resources(d, dev).dsps;
    d.dataset_bits = d.model_bits = 16;
    const auto dsp16 = estimate_resources(d, dev).dsps;
    EXPECT_LT(dsp8, dsp16);

    const double isa8 =
        isa::loop_cost(8, 8, isa::Strategy::kHandAvx2).per_element();
    const double isa16 =
        isa::loop_cost(16, 16, isa::Strategy::kHandAvx2).per_element();
    EXPECT_LT(isa8, isa16 * 1.05);
}

// ---------------------------------------------------------------------
// NN x RFF SVM: the two §7 substrates solve the same digit task with
// comparable accuracy, and both beat chance by a wide margin.

TEST(Integration, CnnAndRffSvmBothSolveDigits)
{
    const auto train = dataset::generate_digits(500, 61, 0.1f);
    const auto test = dataset::generate_digits(200, 62, 0.1f);

    // CNN.
    nn::LenetConfig lcfg;
    lcfg.epochs = 3;
    lcfg.weight_spec = nn::QuantSpec{8, nn::Round::kStochastic, 2.0f};
    nn::Lenet net(lcfg);
    const auto cnn = net.train(train, test);
    EXPECT_GT(cnn.test_accuracy, 0.8);

    // RFF + hinge Buckwild! (one-vs-all, digit 3 vs rest to keep the
    // integration test quick).
    const dataset::FourierFeatures rff(dataset::kDigitPixels, 256, 6.0f,
                                       63);
    auto feats = rff.transform_batch(train.pixels.data(), train.count);
    for (auto& v : feats) v *= 8.0f;
    dataset::DenseProblem svm_problem;
    svm_problem.dim = 256;
    svm_problem.examples = train.count;
    svm_problem.x = std::move(feats);
    svm_problem.y.resize(train.count);
    for (std::size_t i = 0; i < train.count; ++i)
        svm_problem.y[i] = train.labels[i] == 3 ? 1.0f : -1.0f;

    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D8M16");
    cfg.loss = core::Loss::kHinge;
    cfg.epochs = 8;
    cfg.step_size = 0.4f;
    core::Trainer svm(cfg);
    const auto m = svm.fit(svm_problem);
    EXPECT_GT(m.accuracy, 0.93) << "one-vs-all base rate is 0.9";
}

// ---------------------------------------------------------------------
// Signature round-trip through the whole stack: parse -> trainer ->
// calibrated model lookup stays consistent.

class SignatureRoundTrip : public ::testing::TestWithParam<const char*>
{};

TEST_P(SignatureRoundTrip, ParseTrainPredictLookup)
{
    const auto sig = dmgc::parse_signature(GetParam());
    EXPECT_EQ(dmgc::parse_signature(sig.to_string()), sig);
    const auto model = dmgc::PerfModel::paper_model();
    EXPECT_TRUE(model.is_calibrated(sig)) << GetParam();
    EXPECT_GT(model.predict_gnps(sig, 18, 1 << 20), 0.0);

    const auto problem = testutil::logistic_problem(64, 200, 77);
    if (!sig.sparse) {
        core::TrainerConfig cfg;
        cfg.signature = sig;
        cfg.epochs = 1;
        core::Trainer t(cfg);
        EXPECT_NO_THROW(t.fit(problem));
    }
}

INSTANTIATE_TEST_SUITE_P(AllCalibrated, SignatureRoundTrip,
                         ::testing::Values("D8M8", "D8M16", "D16M8",
                                           "D16M16", "D8M32f", "D16M32f",
                                           "D32fM8", "D32fM16", "D32fM32f"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace buckwild
