/**
 * @file
 * Shared test fixtures and helpers used across the suites (test_ps,
 * test_serve, test_integration, test_obs, test_lowp, test_fixed,
 * test_nn, test_simd): synthetic dataset builders, saved-model
 * construction, sequence equality/tolerance asserts, and temp-file
 * RAII. Header-only; everything lives in buckwild::testutil.
 */
#ifndef BUCKWILD_TESTS_TEST_COMMON_H
#define BUCKWILD_TESTS_TEST_COMMON_H

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/loss.h"
#include "core/model_io.h"
#include "dataset/digits.h"
#include "dataset/problem.h"
#include "dmgc/signature.h"

namespace buckwild::testutil {

/// A SavedModel with the given weights, ready to publish into a serving
/// registry or write through model_io.
inline core::SavedModel
make_saved_model(std::vector<float> weights,
                 core::Loss loss = core::Loss::kLogistic,
                 const char* signature = "D32fM32f")
{
    core::SavedModel model;
    model.signature = dmgc::parse_signature(signature);
    model.loss = loss;
    model.weights = std::move(weights);
    return model;
}

/// Synthetic dense logistic problem (thin, named wrapper so suites share
/// one spelling and grep finds every synthetic dataset in the tests).
inline dataset::DenseProblem
logistic_problem(std::size_t dim, std::size_t examples, std::uint64_t seed)
{
    return dataset::generate_logistic_dense(dim, examples, seed);
}

/// The canonical small cluster-training problem (64 dims x 1024
/// examples, seed 77), cached because several PsCluster tests reuse it.
inline const dataset::DenseProblem&
cluster_problem()
{
    static const auto kProblem =
        dataset::generate_logistic_dense(64, 1024, 77);
    return kProblem;
}

/// The canonical sparse cluster-training problem: an RCV1-style
/// synthetic libsvm workload (256 dims x 1024 examples at 5% density,
/// seed 77), cached like cluster_problem().
inline const dataset::SparseProblem&
sparse_cluster_problem()
{
    static const auto kProblem =
        dataset::generate_logistic_sparse(256, 1024, 0.05, 77);
    return kProblem;
}

/// The same examples expanded to a row-major DenseProblem, so sparse
/// runs can be scored against the dense path on identical data.
inline dataset::DenseProblem
densify(const dataset::SparseProblem& sparse)
{
    dataset::DenseProblem dense;
    dense.dim = sparse.dim;
    dense.examples = sparse.examples();
    dense.y = sparse.y;
    dense.w_true = sparse.w_true;
    dense.x.assign(dense.examples * dense.dim, 0.0f);
    for (std::size_t i = 0; i < dense.examples; ++i) {
        const auto& row = sparse.rows[i];
        for (std::size_t j = 0; j < row.index.size(); ++j)
            dense.x[i * dense.dim + row.index[j]] = row.value[j];
    }
    return dense;
}

/// Synthetic digits as a binary DenseProblem (digit >= 5 labeled +1) —
/// the conversion test_serve and the serving CLI both use.
inline dataset::DenseProblem
digits_problem(std::size_t count, std::uint64_t seed)
{
    const auto digits = dataset::generate_digits(count, seed);
    dataset::DenseProblem problem;
    problem.dim = dataset::kDigitPixels;
    problem.examples = digits.count;
    problem.x = digits.pixels;
    problem.y.resize(digits.count);
    for (std::size_t i = 0; i < digits.count; ++i)
        problem.y[i] = digits.labels[i] >= 5 ? 1.0f : -1.0f;
    return problem;
}

/// Element-wise |a[i] - b[i]| <= tol over two equal-length sequences
/// (std::vector, AlignedBuffer, ... — anything with size() and []), with
/// the failing index in the message.
template <typename ActualSeq, typename ExpectedSeq>
void
expect_all_near(const ActualSeq& actual, const ExpectedSeq& expected,
                double tol, const char* what = "vector")
{
    ASSERT_EQ(actual.size(), expected.size()) << what << " length";
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_NEAR(static_cast<double>(actual[i]),
                    static_cast<double>(expected[i]), tol)
            << what << "[" << i << "]";
}

/// Bit-exact element-wise equality with the failing index in the message.
template <typename ActualSeq, typename ExpectedSeq>
void
expect_all_eq(const ActualSeq& actual, const ExpectedSeq& expected,
              const char* what = "vector")
{
    ASSERT_EQ(actual.size(), expected.size()) << what << " length";
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_EQ(actual[i], expected[i]) << what << "[" << i << "]";
}

/// A uniquely named file under gtest's temp directory, removed on scope
/// exit. Use `.path()` as the file name; the file itself is created (or
/// not) by the code under test.
class TempFile
{
  public:
    explicit TempFile(const std::string& stem)
    {
        static int counter = 0;
        path_ = ::testing::TempDir() + "buckwild_" + stem + "_" +
                std::to_string(++counter) + ".tmp";
        std::remove(path_.c_str());
    }

    ~TempFile() { std::remove(path_.c_str()); }

    TempFile(const TempFile&) = delete;
    TempFile& operator=(const TempFile&) = delete;

    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

} // namespace buckwild::testutil

#endif // BUCKWILD_TESTS_TEST_COMMON_H
