/**
 * @file
 * Tests for the bounded-staleness harness: Hogwild!-style delays must be
 * benign at realistic magnitudes (the paper's premise) and only degrade
 * at extreme staleness.
 */
#include <gtest/gtest.h>

#include "core/delayed_sgd.h"
#include "dataset/problem.h"

namespace buckwild::core {
namespace {

const dataset::DenseProblem&
problem()
{
    static const auto kProblem =
        dataset::generate_logistic_dense(96, 2500, 654);
    return kProblem;
}

DelayedSgdConfig
base()
{
    DelayedSgdConfig cfg;
    cfg.epochs = 10;
    cfg.step_size = 0.15f;
    return cfg;
}

TEST(DelayedSgd, SynchronousBaselineConverges)
{
    const auto r = train_with_delayed_updates(problem(), base());
    EXPECT_LT(r.final_loss, 0.5);
    EXPECT_GT(r.accuracy, 0.78);
    EXPECT_DOUBLE_EQ(r.average_delay, 0.0);
}

TEST(DelayedSgd, HogwildScaleDelaysAreBenign)
{
    // tau ~ #threads (18-core-machine scale): the Hogwild! claim.
    DelayedSgdConfig cfg = base();
    const auto sync = train_with_delayed_updates(problem(), cfg);
    cfg.max_delay = 18;
    const auto stale = train_with_delayed_updates(problem(), cfg);
    EXPECT_GT(stale.average_delay, 1.0);
    EXPECT_NEAR(stale.final_loss, sync.final_loss, 0.03)
        << "realistic asynchrony must not hurt convergence";
}

TEST(DelayedSgd, ExtremeDelaysDegrade)
{
    DelayedSgdConfig cfg = base();
    cfg.step_size = 0.5f; // large steps amplify staleness error
    cfg.step_decay = 1.0f;
    const auto sync = train_with_delayed_updates(problem(), cfg);
    cfg.max_delay = 2000; // nearly an epoch of staleness
    const auto stale = train_with_delayed_updates(problem(), cfg);
    EXPECT_GT(stale.final_loss, sync.final_loss + 0.01)
        << "staleness comparable to the dataset size must show up";
}

TEST(DelayedSgd, DelayMonotonicityCoarse)
{
    // Loss should be (weakly) monotone across widely spaced delays.
    DelayedSgdConfig cfg = base();
    cfg.step_size = 0.4f;
    cfg.step_decay = 1.0f;
    double prev = 0.0;
    bool first = true;
    for (std::size_t tau : {0u, 50u, 5000u}) {
        cfg.max_delay = tau;
        const auto r = train_with_delayed_updates(problem(), cfg);
        if (!first)
            EXPECT_GT(r.final_loss, prev - 0.05)
                << "tau=" << tau << " should not be much better";
        prev = r.final_loss;
        first = false;
    }
}

TEST(DelayedSgd, AverageDelayMatchesConfiguredRange)
{
    DelayedSgdConfig cfg = base();
    cfg.max_delay = 100;
    cfg.epochs = 2;
    const auto r = train_with_delayed_updates(problem(), cfg);
    // Delays are U{1..100}: mean ~ 50.5.
    EXPECT_NEAR(r.average_delay, 50.5, 3.0);
}

} // namespace
} // namespace buckwild::core
