/**
 * @file
 * Tests for the I/O layers: LIBSVM dataset parsing/writing and model
 * serialization, including malformed-input rejection and a full
 * save -> load -> train round trip.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "buckwild/buckwild.h"
#include "core/model_io.h"
#include "dataset/libsvm.h"
#include "test_common.h"

namespace buckwild {
namespace {

// ----------------------------------------------------------------- libsvm

TEST(Libsvm, ParsesBasicFile)
{
    std::istringstream in("+1 1:0.5 3:-0.25 10:1\n"
                          "-1 2:0.125\n"
                          "\n"
                          "+1 1:1 # trailing comment\n");
    const auto p = dataset::load_libsvm(in);
    ASSERT_EQ(p.examples(), 3u);
    EXPECT_EQ(p.dim, 10u); // inferred from the largest index
    EXPECT_EQ(p.y[0], 1.0f);
    EXPECT_EQ(p.y[1], -1.0f);
    ASSERT_EQ(p.rows[0].index.size(), 3u);
    EXPECT_EQ(p.rows[0].index[0], 0u); // 1-based -> 0-based
    EXPECT_EQ(p.rows[0].index[2], 9u);
    EXPECT_FLOAT_EQ(p.rows[0].value[1], -0.25f);
    ASSERT_EQ(p.rows[2].index.size(), 1u);
}

TEST(Libsvm, NonBinaryLabelsMapBySign)
{
    std::istringstream in("3 1:1\n0 1:1\n-2 1:1\n");
    const auto p = dataset::load_libsvm(in);
    EXPECT_EQ(p.y[0], 1.0f);
    EXPECT_EQ(p.y[1], 1.0f);
    EXPECT_EQ(p.y[2], -1.0f);
}

TEST(Libsvm, ExplicitDimOverridesInference)
{
    std::istringstream in("+1 1:1 5:2\n");
    const auto p = dataset::load_libsvm(in, 100);
    EXPECT_EQ(p.dim, 100u);
}

TEST(Libsvm, RejectsMalformedInput)
{
    {
        std::istringstream in("+1 notatoken\n");
        EXPECT_THROW(dataset::load_libsvm(in), std::runtime_error);
    }
    {
        std::istringstream in("+1 0:1\n"); // 0 index (must be 1-based)
        EXPECT_THROW(dataset::load_libsvm(in), std::runtime_error);
    }
    {
        std::istringstream in("+1 3:1 2:1\n"); // non-ascending
        EXPECT_THROW(dataset::load_libsvm(in), std::runtime_error);
    }
    {
        std::istringstream in("+1 7:1\n"); // exceeds explicit dim
        EXPECT_THROW(dataset::load_libsvm(in, 4), std::runtime_error);
    }
    {
        std::istringstream in("\n\n");
        EXPECT_THROW(dataset::load_libsvm(in), std::runtime_error);
    }
    EXPECT_THROW(dataset::load_libsvm_file("/nonexistent/path.svm"),
                 std::runtime_error);
}

TEST(Libsvm, SaveLoadRoundTrip)
{
    const auto original =
        dataset::generate_logistic_sparse(128, 50, 0.1, 44);
    std::stringstream buffer;
    dataset::save_libsvm(original, buffer);
    const auto reloaded = dataset::load_libsvm(buffer, original.dim);

    ASSERT_EQ(reloaded.examples(), original.examples());
    EXPECT_EQ(reloaded.dim, original.dim);
    for (std::size_t i = 0; i < original.examples(); ++i) {
        EXPECT_EQ(reloaded.y[i], original.y[i]);
        ASSERT_EQ(reloaded.rows[i].index, original.rows[i].index);
        for (std::size_t j = 0; j < original.rows[i].value.size(); ++j)
            EXPECT_NEAR(reloaded.rows[i].value[j],
                        original.rows[i].value[j], 1e-5f);
    }
}

TEST(Libsvm, FileSaveLoadRoundTripPreservesStats)
{
    // The on-disk variant the sparse cluster tools use, checked through
    // the density summary: save -> load must preserve every nnz count.
    const auto original =
        dataset::generate_logistic_sparse(200, 64, 0.04, 46);
    const auto before = dataset::sparse_stats(original);
    EXPECT_EQ(before.examples, 64u);
    EXPECT_EQ(before.dim, 200u);
    EXPECT_EQ(before.nnz, original.nnz());
    // ceil(0.04 * 200) = 8 nonzeros in every generated row.
    EXPECT_EQ(before.min_row_nnz, 8u);
    EXPECT_EQ(before.max_row_nnz, 8u);
    EXPECT_DOUBLE_EQ(before.mean_row_nnz, 8.0);
    EXPECT_DOUBLE_EQ(before.density, 8.0 / 200.0);

    testutil::TempFile file("libsvm_roundtrip");
    dataset::save_libsvm_file(original, file.path());
    const auto reloaded =
        dataset::load_libsvm_file(file.path(), original.dim);
    const auto after = dataset::sparse_stats(reloaded);
    EXPECT_EQ(after.examples, before.examples);
    EXPECT_EQ(after.dim, before.dim);
    EXPECT_EQ(after.nnz, before.nnz);
    EXPECT_EQ(after.min_row_nnz, before.min_row_nnz);
    EXPECT_EQ(after.max_row_nnz, before.max_row_nnz);
    for (std::size_t i = 0; i < original.examples(); ++i) {
        EXPECT_EQ(reloaded.y[i], original.y[i]);
        ASSERT_EQ(reloaded.rows[i].index, original.rows[i].index);
    }
}

TEST(Libsvm, LoadedDataTrains)
{
    // End to end: synthesize -> serialize -> parse -> train.
    const auto original =
        dataset::generate_logistic_sparse(256, 1500, 0.05, 45);
    std::stringstream buffer;
    dataset::save_libsvm(original, buffer);
    const auto reloaded = dataset::load_libsvm(buffer, 256);

    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D8i16M8");
    cfg.epochs = 15;
    cfg.step_size = 0.3f;
    core::Trainer trainer(cfg);
    const auto m = trainer.fit(reloaded);
    EXPECT_LT(m.final_loss, 0.55);
}

// ------------------------------------------------------------- model io

TEST(ModelIo, SaveLoadRoundTrip)
{
    core::SavedModel model;
    model.signature = dmgc::parse_signature("D8M16");
    model.loss = core::Loss::kHinge;
    model.weights = {0.5f, -1.25f, 0.0f, 3.14159f};

    std::stringstream buffer;
    core::save_model(model, buffer);
    const auto loaded = core::load_model(buffer);
    EXPECT_EQ(loaded.signature, model.signature);
    EXPECT_EQ(loaded.loss, core::Loss::kHinge);
    ASSERT_EQ(loaded.weights.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_FLOAT_EQ(loaded.weights[k], model.weights[k]);
}

TEST(ModelIo, RejectsMalformedFiles)
{
    {
        std::istringstream in("NOT-A-MODEL\n");
        EXPECT_THROW(core::load_model(in), std::runtime_error);
    }
    {
        std::istringstream in("BUCKWILD-MODEL v1\ndim 4\n0 0 0 0\n");
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "missing signature";
    }
    {
        std::istringstream in(
            "BUCKWILD-MODEL v1\nsignature D8M8\nloss logistic\ndim 4\n0 0\n");
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "truncated weights";
    }
    {
        std::istringstream in(
            "BUCKWILD-MODEL v1\nsignature D8M8\nloss banana\ndim 1\n0\n");
        EXPECT_THROW(core::load_model(in), std::runtime_error);
    }
    EXPECT_THROW(core::load_model_file("/nonexistent/model.bw"),
                 std::runtime_error);
}

TEST(ModelIo, RejectsHostileDimLines)
{
    const auto model_with_dim = [](const std::string& dim_line) {
        return "BUCKWILD-MODEL v1\nsignature D8M8\nloss logistic\n" +
            dim_line + "\n0 0 0 0\n";
    };
    {
        std::istringstream in(model_with_dim("dim -5"));
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "negative dim";
    }
    {
        // Overflows long long -> failbit -> clean rejection, never a
        // wrapped-around allocation.
        std::istringstream in(model_with_dim("dim 99999999999999999999"));
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "overflowing dim";
    }
    {
        // Parses fine but is past the plausibility bound; must be
        // rejected before the weight buffer is allocated.
        std::istringstream in(model_with_dim("dim 4611686018427387904"));
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "implausibly large dim";
    }
    {
        std::istringstream in(model_with_dim("dim banana"));
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "non-numeric dim";
    }
    {
        // Garbage where a weight should be is malformed, not silently 0.
        std::istringstream in(
            "BUCKWILD-MODEL v1\nsignature D8M8\nloss logistic\ndim 4\n"
            "0.5 oops 0.25 0\n");
        EXPECT_THROW(core::load_model(in), std::runtime_error)
            << "garbage weight token";
    }
}

TEST(ModelIo, TrainedModelRoundTripsAndPredicts)
{
    const auto problem = dataset::generate_logistic_dense(64, 1000, 46);
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 10;
    cfg.step_size = 0.15f;
    core::Trainer trainer(cfg);
    trainer.fit(problem);

    core::SavedModel model;
    model.signature = cfg.signature;
    model.loss = cfg.loss;
    model.weights = trainer.model();

    std::stringstream buffer;
    core::save_model(model, buffer);
    const auto loaded = core::load_model(buffer);

    // Predictions with the reloaded model match the live trainer's.
    std::size_t agree = 0;
    for (std::size_t i = 0; i < problem.examples; ++i) {
        const float a = core::predict_margin(model.weights, problem.row(i));
        const float b =
            core::predict_margin(loaded.weights, problem.row(i));
        if ((a >= 0) == (b >= 0)) ++agree;
    }
    EXPECT_EQ(agree, problem.examples);
}

} // namespace
} // namespace buckwild
