/**
 * @file
 * Tests for the FPGA design model (§8): resource scaling with precision,
 * the 2-stage/3-stage trade-off, the mini-batch DRAM-burst crossover, the
 * design search, and GNPS/watt.
 */
#include <gtest/gtest.h>

#include "fpga/design.h"
#include "fpga/model.h"
#include "fpga/search.h"

namespace buckwild::fpga {
namespace {

DesignPoint
base_design()
{
    DesignPoint d;
    d.dataset_bits = 8;
    d.model_bits = 8;
    d.lanes = 64;
    d.shape = PipelineShape::kThreeStage;
    d.batch_size = 4;
    d.model_size = 1 << 14;
    return d;
}

TEST(FpgaResources, LowerPrecisionUsesFewerResources)
{
    const Device dev;
    DesignPoint d = base_design();
    const auto r8 = estimate_resources(d, dev);
    d.dataset_bits = 16;
    d.model_bits = 16;
    const auto r16 = estimate_resources(d, dev);
    d.dataset_bits = 32;
    d.model_bits = 32;
    const auto r32 = estimate_resources(d, dev);
    EXPECT_LT(r8.dsps, r16.dsps);
    EXPECT_LT(r16.dsps, r32.dsps);
    EXPECT_LT(r8.bram_kbits, r16.bram_kbits);
    EXPECT_LT(r8.alms, r32.alms);
}

TEST(FpgaResources, HalvingDatasetPrecisionAloneShrinksArea)
{
    // §8: "when keeping the model precision fixed, halving the dataset
    // precision improves both throughput and area".
    const Device dev;
    DesignPoint d16 = base_design();
    d16.dataset_bits = 16;
    DesignPoint d8 = d16;
    d8.dataset_bits = 8;
    const auto r16 = estimate_resources(d16, dev);
    const auto r8 = estimate_resources(d8, dev);
    EXPECT_LT(r8.bram_kbits, r16.bram_kbits);
    EXPECT_LE(r8.alms, r16.alms);
    EXPECT_GE(estimate_throughput(d8, dev).gnps,
              estimate_throughput(d16, dev).gnps);
}

TEST(FpgaResources, ThreeStageNeedsMoreBramThanTwoStage)
{
    // Fig 7c: the 3-stage design copies example data between BRAMs.
    const Device dev;
    DesignPoint two = base_design();
    two.shape = PipelineShape::kTwoStage;
    DesignPoint three = base_design();
    three.shape = PipelineShape::kThreeStage;
    EXPECT_GT(estimate_resources(three, dev).bram_kbits,
              estimate_resources(two, dev).bram_kbits);
}

TEST(FpgaResources, UnbiasedRoundingCostsAlms)
{
    const Device dev;
    DesignPoint on = base_design();
    DesignPoint off = base_design();
    off.unbiased_rounding = false;
    EXPECT_GT(estimate_resources(on, dev).alms,
              estimate_resources(off, dev).alms);
}

TEST(FpgaResources, OversizedDesignDoesNotFit)
{
    const Device dev;
    DesignPoint d = base_design();
    d.dataset_bits = 32;
    d.model_bits = 32;
    d.lanes = 1 << 14;
    EXPECT_FALSE(estimate_resources(d, dev).fits(dev));
    EXPECT_TRUE(estimate_resources(base_design(), dev).fits(dev));
}

TEST(FpgaResources, RejectsInvalidDesigns)
{
    const Device dev;
    DesignPoint d = base_design();
    d.dataset_bits = 12;
    EXPECT_THROW(estimate_resources(d, dev), std::runtime_error);
    d = base_design();
    d.lanes = 0;
    EXPECT_THROW(estimate_throughput(d, dev), std::runtime_error);
}

TEST(FpgaThroughput, TwoStageHalvesComputeRate)
{
    const Device dev;
    DesignPoint two = base_design();
    two.shape = PipelineShape::kTwoStage;
    DesignPoint three = base_design();
    EXPECT_DOUBLE_EQ(
        estimate_throughput(two, dev).compute_elements_per_cycle,
        estimate_throughput(three, dev).compute_elements_per_cycle / 2.0);
}

TEST(FpgaThroughput, LowerPrecisionRaisesMemoryRate)
{
    // Fig 7f: "our optimized designs have higher throughput (by up to
    // 2.5x) ... as the precision decreases" — memory-bound designs gain
    // the full bandwidth factor.
    const Device dev;
    DesignPoint d = base_design();
    d.lanes = 256; // force memory-bound
    const auto t8 = estimate_throughput(d, dev);
    d.dataset_bits = 32;
    const auto t32 = estimate_throughput(d, dev);
    EXPECT_TRUE(t8.memory_bound);
    EXPECT_GT(t8.gnps / t32.gnps, 2.5);
    EXPECT_LT(t8.gnps / t32.gnps, 4.5);
}

TEST(FpgaThroughput, MiniBatchCrossoverNearHundredBursts)
{
    // §8: "mini-batch SGD has the highest throughput unless a single data
    // vector spans at least 100 DRAM bursts". With few bursts per
    // example, batching amortizes the command overhead; with many, plain
    // SGD is already command-efficient.
    const Device dev;

    DesignPoint small = base_design();
    small.lanes = 256;
    small.model_size = 1 << 10; // 1 KB at 8 bits = 16 bursts
    DesignPoint small_plain = small;
    small_plain.batch_size = 1;
    DesignPoint small_batched = small;
    small_batched.batch_size = 16;
    EXPECT_LT(estimate_throughput(small, dev).bursts_per_example, 100.0);
    EXPECT_GT(estimate_throughput(small_batched, dev).gnps,
              estimate_throughput(small_plain, dev).gnps * 1.2);

    DesignPoint large = small;
    large.model_size = 1 << 20; // 1 MB at 8 bits = 16K bursts
    DesignPoint large_plain = large;
    large_plain.batch_size = 1;
    DesignPoint large_batched = large;
    large_batched.batch_size = 16;
    EXPECT_GT(estimate_throughput(large, dev).bursts_per_example, 100.0);
    // Amortization gains vanish (within 2%).
    EXPECT_LT(estimate_throughput(large_batched, dev).gnps /
                  estimate_throughput(large_plain, dev).gnps,
              1.02);
}

TEST(FpgaPower, GnpsPerWattInPaperBallpark)
{
    // The paper reports 0.339 GNPS/W on the Stratix V (vs 0.143 for the
    // Xeon). Our model should land in that order of magnitude for a tuned
    // 8-bit design and must beat the Xeon figure.
    const Device dev;
    SearchSpace space;
    space.dataset_bits = 8;
    space.model_bits = 8;
    const auto best = best_design(space, dev);
    const double eff = best.gnps_per_watt();
    EXPECT_GT(eff, 0.143) << "FPGA must beat the Xeon's 0.143 GNPS/W";
    EXPECT_LT(eff, 3.0);
}

TEST(FpgaSearch, FindsFittingDesignsSortedByThroughput)
{
    const Device dev;
    SearchSpace space;
    const auto designs = enumerate_designs(space, dev);
    ASSERT_FALSE(designs.empty());
    for (std::size_t i = 1; i < designs.size(); ++i)
        EXPECT_GE(designs[i - 1].throughput.gnps,
                  designs[i].throughput.gnps);
    for (const auto& e : designs) EXPECT_TRUE(e.resources.fits(dev));
}

TEST(FpgaSearch, LowerPrecisionWinsTheSearch)
{
    const Device dev;
    SearchSpace s8;
    s8.dataset_bits = 8;
    s8.model_bits = 8;
    SearchSpace s32 = s8;
    s32.dataset_bits = 32;
    s32.model_bits = 32;
    EXPECT_GT(best_design(s8, dev).throughput.gnps,
              best_design(s32, dev).throughput.gnps);
}

TEST(FpgaSearch, ImpossibleSpaceThrows)
{
    Device tiny;
    tiny.alms = 100; // nothing fits
    tiny.dsps = 1;
    tiny.bram_kbits = 1;
    SearchSpace space;
    EXPECT_THROW(best_design(space, tiny), std::runtime_error);
}

TEST(FpgaDesign, Naming)
{
    EXPECT_EQ(to_string(PipelineShape::kTwoStage), "2-stage");
    EXPECT_EQ(to_string(PipelineShape::kThreeStage), "3-stage");
    const std::string s = base_design().to_string();
    EXPECT_NE(s.find("D8M8"), std::string::npos);
    EXPECT_NE(s.find("3-stage"), std::string::npos);
}

} // namespace
} // namespace buckwild::fpga
