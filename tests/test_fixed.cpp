/**
 * @file
 * Unit and property tests for fixed-point formats and quantizers.
 *
 * Key invariants from the paper:
 *  - biased rounding maps to the nearest representable value;
 *  - unbiased rounding satisfies E[Q(x)] = x for in-range x (Eq. 4);
 *  - shared randomness keeps each element's rounding unbiased even though
 *    draws are correlated across elements;
 *  - saturation matches hardware pack-with-saturation behaviour.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "fixed/fixed_point.h"
#include "fixed/nibble.h"
#include "fixed/quantize.h"
#include "rng/random_source.h"
#include "test_common.h"

namespace buckwild::fixed {
namespace {

TEST(FixedFormat, QuantumAndBounds)
{
    const FixedFormat f8{8, 6};
    EXPECT_DOUBLE_EQ(f8.quantum(), 1.0 / 64.0);
    EXPECT_DOUBLE_EQ(f8.max_value(), 127.0 / 64.0);
    EXPECT_DOUBLE_EQ(f8.min_value(), -2.0);
    EXPECT_EQ(f8.raw_min(), -128);
    EXPECT_EQ(f8.raw_max(), 127);
    EXPECT_EQ(f8.to_string(), "fix8.6");
}

TEST(FixedFormat, DefaultFormatsCoverUnitRangeWithHeadroom)
{
    for (int bits : {4, 8, 16, 32}) {
        const FixedFormat f = default_format(bits);
        EXPECT_EQ(f.bits, bits);
        EXPECT_GE(f.max_value(), 1.0) << "must represent +1";
        EXPECT_LE(f.min_value(), -1.0) << "must represent -1";
    }
    EXPECT_THROW(default_format(7), std::runtime_error);
    EXPECT_TRUE(is_supported_width(8));
    EXPECT_FALSE(is_supported_width(12));
}

TEST(BiasedQuantize, RoundsToNearest)
{
    const FixedFormat f{8, 6}; // quantum 1/64
    EXPECT_EQ(quantize_biased_raw(0.0, f), 0);
    EXPECT_EQ(quantize_biased_raw(1.0, f), 64);
    EXPECT_EQ(quantize_biased_raw(1.0 / 128.0 - 1e-9, f), 0);  // just below .5
    EXPECT_EQ(quantize_biased_raw(1.5 / 64.0, f), 2);          // ties away: lround
    EXPECT_EQ(quantize_biased_raw(-1.0, f), -64);
}

TEST(BiasedQuantize, SaturatesAtFormatBounds)
{
    const FixedFormat f{8, 6};
    EXPECT_EQ(quantize_biased_raw(100.0, f), 127);
    EXPECT_EQ(quantize_biased_raw(-100.0, f), -128);
}

TEST(Dequantize, RoundTripsRepresentableValues)
{
    const FixedFormat f{16, 14};
    for (long raw : {-16384L, -1L, 0L, 1L, 37L, 16383L}) {
        const double x = dequantize(raw, f);
        EXPECT_EQ(quantize_biased_raw(x, f), raw);
    }
}

TEST(UnbiasedQuantize, ExactValuesAreFixedPoints)
{
    const FixedFormat f{8, 6};
    rng::XorshiftSource src(5);
    // Values already on the grid must never be perturbed.
    for (long raw : {-128L, -3L, 0L, 64L, 127L}) {
        const double x = dequantize(raw, f);
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(quantize_unbiased_raw(x, f, src), raw);
    }
}

TEST(UnbiasedQuantize, OutputIsOneOfTwoNeighbours)
{
    const FixedFormat f{8, 6};
    rng::XorshiftSource src(5);
    const double x = 0.3; // 19.2 quanta
    for (int i = 0; i < 200; ++i) {
        const long q = quantize_unbiased_raw(x, f, src);
        EXPECT_TRUE(q == 19 || q == 20) << q;
    }
}

/// Property: E[Q(x)] = x within sampling error, for every RNG strategy.
class UnbiasedMean
    : public ::testing::TestWithParam<std::tuple<rng::RoundingRng, double>>
{};

TEST_P(UnbiasedMean, ExpectationMatchesInput)
{
    const auto [strategy, x] = GetParam();
    const FixedFormat f{8, 6};
    auto src = rng::make_source(strategy, 1234, /*shared_period=*/8);
    constexpr int kTrials = 200000;
    double sum = 0.0;
    for (int i = 0; i < kTrials; ++i)
        sum += dequantize(quantize_unbiased_raw(x, f, *src), f);
    const double mean = sum / kTrials;
    // stddev of the estimate <= quantum / (2*sqrt(kTrials)) ~ 1.7e-5;
    // allow 6 sigma plus a little slack for the shared source correlation.
    EXPECT_NEAR(mean, x, 6e-4)
        << "strategy=" << to_string(strategy) << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndValues, UnbiasedMean,
    ::testing::Combine(::testing::Values(rng::RoundingRng::kMersenne,
                                         rng::RoundingRng::kXorshift,
                                         rng::RoundingRng::kSharedXorshift),
                       ::testing::Values(-0.731, -0.125, 0.0031, 0.3, 0.9517)),
    [](const auto& info) {
        std::string name;
        for (char c : rng::to_string(std::get<0>(info.param)))
            if (c != '-') name += c;
        name += "_x";
        for (char c : std::to_string(std::get<1>(info.param)))
            name += (c == '-' ? 'm' : (c == '.' ? 'p' : c));
        return name;
    });

TEST(UnbiasedQuantize, BiasedRoundingIsBiasedOnAsymmetricInput)
{
    // Sanity check of the *contrast*: nearest rounding of x=k+0.3 always
    // yields k, so its mean error is -0.3 quanta, while unbiased is ~0.
    const FixedFormat f{8, 6};
    const double x = dequantize(20, f) * 0.985; // 19.7 quanta
    EXPECT_EQ(quantize_biased_raw(x, f), 20);   // deterministic
}

TEST(QuantizeArray, BiasedMatchesScalarLoop)
{
    const FixedFormat f{8, 6};
    std::vector<float> in = {0.0f, 0.5f, -0.51f, 1.9f, -7.0f, 0.0078125f};
    std::vector<std::int8_t> out(in.size());
    quantize_array(in.data(), out.data(), in.size(), f, Rounding::kBiased,
                   nullptr);
    std::vector<std::int8_t> expected(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expected[i] =
            static_cast<std::int8_t>(quantize_biased_raw(in[i], f));
    testutil::expect_all_eq(out, expected, "biased array");
}

TEST(QuantizeArray, RoundTripErrorBoundedByHalfQuantum)
{
    const FixedFormat f{16, 14};
    std::vector<float> in, back;
    for (int i = 0; i < 1000; ++i)
        in.push_back(static_cast<float>(std::sin(0.1 * i)));
    std::vector<std::int16_t> q(in.size());
    back.resize(in.size());
    quantize_array(in.data(), q.data(), in.size(), f, Rounding::kBiased,
                   nullptr);
    dequantize_array(q.data(), back.data(), in.size(), f);
    testutil::expect_all_near(back, in, f.quantum() / 2 + 1e-7,
                              "round trip");
}

TEST(QuantizeArray, UnbiasedConsumesSource)
{
    const FixedFormat f{8, 6};
    std::vector<float> in(64, 0.3f);
    std::vector<std::int8_t> out(in.size());
    rng::XorshiftSource src(9);
    quantize_array(in.data(), out.data(), in.size(), f, Rounding::kUnbiased,
                   &src);
    int n19 = 0, n20 = 0;
    for (auto v : out) {
        EXPECT_TRUE(v == 19 || v == 20);
        (v == 19 ? n19 : n20)++;
    }
    // 0.3*64 = 19.2 quanta → ~80% 19s, ~20% 20s; require both present.
    EXPECT_GT(n19, 0);
    EXPECT_GT(n20, 0);
}

TEST(QuantizeArray, SharedRandomnessRoundsBlockTogether)
{
    // With period >= block length and identical inputs, every element gets
    // the same random draw, hence the same rounded value.
    const FixedFormat f{8, 6};
    std::vector<float> in(8, 0.3f);
    std::vector<std::int8_t> out(in.size());
    rng::SharedXorshiftSource src(/*period=*/8, /*seed=*/11);
    quantize_array(in.data(), out.data(), in.size(), f, Rounding::kUnbiased,
                   &src);
    for (auto v : out) EXPECT_EQ(v, out[0]);
}

TEST(RoundingNames, ToString)
{
    EXPECT_STREQ(to_string(Rounding::kBiased), "biased");
    EXPECT_STREQ(to_string(Rounding::kUnbiased), "unbiased");
}

// ---------------------------------------------------------------- nibbles

TEST(Nibble, SignExtension)
{
    EXPECT_EQ(sign_extend_nibble(0x0), 0);
    EXPECT_EQ(sign_extend_nibble(0x7), 7);
    EXPECT_EQ(sign_extend_nibble(0x8), -8);
    EXPECT_EQ(sign_extend_nibble(0xF), -1);
}

TEST(Nibble, SaturationBounds)
{
    EXPECT_EQ(saturate_nibble(100), 7);
    EXPECT_EQ(saturate_nibble(-100), -8);
    EXPECT_EQ(saturate_nibble(3), 3);
}

TEST(Nibble, PackUnpackRoundTrip)
{
    std::vector<std::int8_t> in = {0, 1, -1, 7, -8, 3, -5, 2, 6}; // odd count
    std::vector<std::uint8_t> packed(packed_nibble_bytes(in.size()), 0);
    std::vector<std::int8_t> out(in.size());
    pack_nibbles(in.data(), packed.data(), in.size());
    unpack_nibbles(packed.data(), out.data(), in.size());
    EXPECT_EQ(in, out);
    EXPECT_EQ(packed.size(), 5u);
}

TEST(Nibble, StoreSaturatesOutOfRange)
{
    std::vector<std::uint8_t> packed(1, 0);
    store_nibble(packed.data(), 0, 99);
    store_nibble(packed.data(), 1, -99);
    EXPECT_EQ(load_nibble(packed.data(), 0), 7);
    EXPECT_EQ(load_nibble(packed.data(), 1), -8);
}

TEST(Nibble, IndependentSlots)
{
    std::vector<std::uint8_t> packed(2, 0);
    store_nibble(packed.data(), 0, -3);
    store_nibble(packed.data(), 1, 5);
    store_nibble(packed.data(), 2, -8);
    EXPECT_EQ(load_nibble(packed.data(), 0), -3);
    EXPECT_EQ(load_nibble(packed.data(), 1), 5);
    EXPECT_EQ(load_nibble(packed.data(), 2), -8);
    // Overwrite the middle one; neighbours unaffected.
    store_nibble(packed.data(), 1, 7);
    EXPECT_EQ(load_nibble(packed.data(), 0), -3);
    EXPECT_EQ(load_nibble(packed.data(), 1), 7);
    EXPECT_EQ(load_nibble(packed.data(), 2), -8);
}

TEST(Nibble, QuantizeToNibbleFormat)
{
    // default_format(4) = fix4.2: quantum 0.25, range [-2, 1.75].
    const FixedFormat f4 = default_format(4);
    EXPECT_EQ(quantize_biased_raw(0.25, f4), 1);
    EXPECT_EQ(quantize_biased_raw(1.75, f4), 7);
    EXPECT_EQ(quantize_biased_raw(5.0, f4), 7);
    EXPECT_EQ(quantize_biased_raw(-5.0, f4), -8);
}

} // namespace
} // namespace buckwild::fixed
