/**
 * @file
 * Unit tests for the kernel-dispatch substrate: the cached CPU-features
 * probe (simd/cpu.h), the KernelLibrary registry (registration,
 * fallback-chain resolution, the forced-impl override and its generation
 * counter), and the resolver's process-wide policy (impl_supported /
 * resolve_impl / best_impl). Equivalence of the registered kernels
 * themselves is the KernelComparator's job (test_simd / test_lowp);
 * everything here is about *selection*.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "lowp/round.h"
#include "simd/cpu.h"
#include "simd/ops.h"
#include "simd/registry.h"

namespace buckwild::simd {
namespace {

// ------------------------------------------------------------- CPU probe

TEST(CpuFeatures, CachedProbeMatchesFreshProbe)
{
    const CpuFeatures fresh = detect_cpu_features();
    const CpuFeatures& cached = host_cpu();
    EXPECT_EQ(cached.avx2, fresh.avx2);
    EXPECT_EQ(cached.fma, fresh.fma);
    EXPECT_EQ(cached.avx512f, fresh.avx512f);
    EXPECT_EQ(cached.avx512bw, fresh.avx512bw);
    // The cached reference is stable across calls.
    EXPECT_EQ(&host_cpu(), &cached);
}

TEST(CpuFeatures, Avx512RequiresBothFAndBw)
{
    CpuFeatures f;
    EXPECT_FALSE(f.avx512());
    f.avx512f = true;
    EXPECT_FALSE(f.avx512());
    f.avx512bw = true;
    EXPECT_TRUE(f.avx512());
    f.avx512f = false;
    EXPECT_FALSE(f.avx512());
}

TEST(CpuFeatures, FeatureLadderIsMonotone)
{
    // Every x86 with AVX-512BW also has AVX2 + FMA; the probe must never
    // report an inverted ladder (it would break fallback resolution).
    const CpuFeatures& cpu = host_cpu();
    if (cpu.avx512()) {
        EXPECT_TRUE(cpu.avx2);
        EXPECT_TRUE(cpu.fma);
    }
    if (!kBuiltWithAvx2) {
        // Scalar build: codegen support is off regardless of the host.
        EXPECT_FALSE(impl_supported(Impl::kAvx2));
        EXPECT_FALSE(impl_supported(Impl::kFma));
        EXPECT_FALSE(impl_supported(Impl::kAvx512));
    }
}

// ------------------------------------------------------- names and tags

TEST(ImplNames, ToStringParseRoundTrip)
{
    for (Impl impl : kAllImpls) {
        const auto parsed = parse_impl(to_string(impl));
        ASSERT_TRUE(parsed.has_value()) << to_string(impl);
        EXPECT_EQ(*parsed, impl);
    }
    EXPECT_FALSE(parse_impl("").has_value());
    EXPECT_FALSE(parse_impl("sse2").has_value());
    EXPECT_FALSE(parse_impl("AVX2").has_value()); // names are lower-case
}

TEST(ImplNames, IndexAndVectorizedClassification)
{
    EXPECT_EQ(kImplCount, 5);
    for (int i = 0; i < kImplCount; ++i)
        EXPECT_EQ(impl_index(kAllImpls[i]), i);
    EXPECT_FALSE(is_vectorized(Impl::kReference));
    EXPECT_FALSE(is_vectorized(Impl::kNaive));
    EXPECT_TRUE(is_vectorized(Impl::kAvx2));
    EXPECT_TRUE(is_vectorized(Impl::kFma));
    EXPECT_TRUE(is_vectorized(Impl::kAvx512));
}

// -------------------------------------------- registry + fallback chain

// Distinct dummy kernels so resolution results are distinguishable.
int dummy_ref() { return 0; }
int dummy_naive() { return 1; }
int dummy_avx2() { return 2; }
int dummy_fma() { return 3; }
bool pred_true() { return true; }
bool pred_false() { return false; }

using DummyFn = int (*)();

TEST(KernelRegistry, ResolutionFollowsTheFallbackChain)
{
    auto& lib = KernelLibrary::instance();
    const char* op = "test.chain";
    lib.add(op, Impl::kReference, reinterpret_cast<void*>(&dummy_ref));
    lib.add(op, Impl::kNaive, reinterpret_cast<void*>(&dummy_naive));
    lib.add(op, Impl::kAvx2, reinterpret_cast<void*>(&dummy_avx2),
            &pred_true);
    lib.add(op, Impl::kFma, reinterpret_cast<void*>(&dummy_fma),
            &pred_false); // registered but not runnable on this "host"

    // Runnable variants resolve to themselves.
    EXPECT_EQ(lib.resolve(op, Impl::kReference).impl, Impl::kReference);
    EXPECT_EQ(lib.get<DummyFn>(op, Impl::kNaive)(), 1);
    EXPECT_EQ(lib.get<DummyFn>(op, Impl::kAvx2)(), 2);
    // kFma's predicate fails -> falls to avx2; kAvx512 is unregistered
    // -> falls through fma (unsupported) to avx2.
    EXPECT_EQ(lib.resolve(op, Impl::kFma).impl, Impl::kAvx2);
    EXPECT_EQ(lib.resolve(op, Impl::kAvx512).impl, Impl::kAvx2);
    // runnable() reports exact-variant availability, no fallback.
    EXPECT_TRUE(lib.runnable(op, Impl::kAvx2));
    EXPECT_FALSE(lib.runnable(op, Impl::kFma));
    EXPECT_FALSE(lib.runnable(op, Impl::kAvx512));
    // naive never serves as an implicit fallback target, and itself
    // falls only to reference.
    const char* scalar_op = "test.scalar_only";
    lib.add(scalar_op, Impl::kReference,
            reinterpret_cast<void*>(&dummy_ref));
    lib.add(scalar_op, Impl::kNaive,
            reinterpret_cast<void*>(&dummy_naive));
    EXPECT_EQ(lib.resolve(scalar_op, Impl::kAvx512).impl,
              Impl::kReference);
    EXPECT_EQ(lib.resolve(scalar_op, Impl::kNaive).impl, Impl::kNaive);
}

TEST(KernelRegistry, ReRegistrationIsIdempotent)
{
    auto& lib = KernelLibrary::instance();
    const char* op = "test.idempotent";
    lib.add(op, Impl::kReference, reinterpret_cast<void*>(&dummy_ref));
    lib.add(op, Impl::kReference, reinterpret_cast<void*>(&dummy_naive));
    // Re-registration updates the variant in place — never stacks a
    // duplicate entry.
    EXPECT_EQ(lib.registered(op).size(), 1u);
    EXPECT_EQ(lib.get<DummyFn>(op, Impl::kReference)(), 1);
    // The dense/lowp ensure-hooks lean on this: calling them twice must
    // not duplicate variants.
    register_dense_kernels();
    register_dense_kernels();
    lowp::register_lowp_kernels();
    lowp::register_lowp_kernels();
    const auto impls = lib.registered("simd.dot_d8m8");
    for (std::size_t i = 1; i < impls.size(); ++i)
        EXPECT_NE(impls[i - 1], impls[i]);
}

TEST(KernelRegistry, UnknownOpThrows)
{
    const auto& lib = KernelLibrary::instance();
    EXPECT_THROW((void)lib.resolve("no.such_op", Impl::kReference),
                 std::invalid_argument);
    EXPECT_THROW((void)lib.resolve_auto("no.such_op"),
                 std::invalid_argument);
    EXPECT_FALSE(lib.runnable("no.such_op", Impl::kReference));
    EXPECT_TRUE(lib.registered("no.such_op").empty());
}

TEST(KernelRegistry, EveryDenseAndLowpOpResolvesTotally)
{
    register_dense_kernels();
    lowp::register_lowp_kernels();
    const auto& lib = KernelLibrary::instance();
    const auto ops = lib.ops();
    // 9 pairs x {dot, axpy} + 9 lowp ops + whatever tests added.
    EXPECT_GE(ops.size(), 27u);
    for (const auto& op : ops) {
        EXPECT_TRUE(lib.runnable(op, Impl::kReference)) << op;
        for (Impl impl : kAllImpls) {
            const auto r = lib.resolve(op, impl);
            EXPECT_NE(r.fn, nullptr) << op << " " << to_string(impl);
            EXPECT_TRUE(lib.runnable(op, r.impl))
                << op << " " << to_string(impl) << " -> "
                << to_string(r.impl);
        }
    }
}

// --------------------------------------------------- override machinery

TEST(KernelOverride, ForceImplBumpsGenerationAndGuardRestores)
{
    const auto prev = forced_impl();
    const auto gen0 = kernel_generation();
    {
        ForcedImplGuard guard(Impl::kReference);
        EXPECT_EQ(forced_impl(), Impl::kReference);
        EXPECT_GT(kernel_generation(), gen0);
        {
            ForcedImplGuard inner(std::nullopt);
            EXPECT_EQ(forced_impl(), std::nullopt);
        }
        EXPECT_EQ(forced_impl(), Impl::kReference);
    }
    EXPECT_EQ(forced_impl(), prev);
    EXPECT_GT(kernel_generation(), gen0);
}

TEST(KernelOverride, BestImplTracksOverrideClampedToSupported)
{
    {
        ForcedImplGuard guard(Impl::kReference);
        EXPECT_EQ(best_impl(), Impl::kReference);
    }
    {
        ForcedImplGuard guard(Impl::kNaive);
        EXPECT_EQ(best_impl(), Impl::kNaive);
    }
    {
        // An unsupported forced tier clamps down the chain instead of
        // crashing — one fleet-wide env value must be safe on any host.
        ForcedImplGuard guard(Impl::kAvx512);
        EXPECT_EQ(best_impl(), resolve_impl(Impl::kAvx512));
        EXPECT_TRUE(impl_supported(best_impl()));
    }
}

TEST(KernelOverride, ResolveImplIsIdempotentAndSupported)
{
    for (Impl impl : kAllImpls) {
        const Impl r = resolve_impl(impl);
        EXPECT_TRUE(impl_supported(r)) << to_string(impl);
        EXPECT_EQ(resolve_impl(r), r) << to_string(impl);
    }
    // Scalar tiers are supported everywhere.
    EXPECT_TRUE(impl_supported(Impl::kReference));
    EXPECT_TRUE(impl_supported(Impl::kNaive));
    // Support implies the ladder below (fma needs avx2's codegen+host).
    if (impl_supported(Impl::kAvx512)) {
        EXPECT_TRUE(impl_supported(Impl::kFma));
    }
    if (impl_supported(Impl::kFma)) {
        EXPECT_TRUE(impl_supported(Impl::kAvx2));
    }
}

TEST(KernelOverride, ExplicitImplArgumentsIgnoreTheOverride)
{
    // Engine configs pin cfg.impl explicitly; forcing must not leak into
    // explicit-impl dispatch (only ambient dispatch re-resolves).
    register_dense_kernels();
    ForcedImplGuard guard(Impl::kNaive);
    const auto& lib = KernelLibrary::instance();
    EXPECT_EQ(lib.resolve("simd.dot_d8m8", Impl::kReference).impl,
              Impl::kReference);
    EXPECT_EQ(lib.resolve_auto("simd.dot_d8m8").impl, Impl::kNaive);
}

} // namespace
} // namespace buckwild::simd
