/**
 * @file
 * Tests for DMGC signatures (§3), the Table-1 taxonomy, and the §4
 * performance model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dmgc/perf_model.h"
#include "dmgc/signature.h"
#include "dmgc/taxonomy.h"

namespace buckwild::dmgc {
namespace {

// ------------------------------------------------------------- signatures

TEST(Signature, DenseBuckwildRoundTrip)
{
    const Signature sig = Signature::dense_fixed(8, 8);
    EXPECT_EQ(sig.to_string(), "D8M8");
    EXPECT_EQ(parse_signature("D8M8"), sig);
    EXPECT_FALSE(sig.sparse);
    EXPECT_FALSE(sig.is_full_precision());
    EXPECT_EQ(sig.dataset_bits_per_number(), 8);
}

TEST(Signature, SparseBuckwildRoundTrip)
{
    const Signature sig = Signature::sparse_fixed(8, 8, 16);
    EXPECT_EQ(sig.to_string(), "D8i8M16");
    EXPECT_EQ(parse_signature("D8i8M16"), sig);
    EXPECT_TRUE(sig.sparse);
    EXPECT_EQ(sig.dataset_bits_per_number(), 16);
}

TEST(Signature, HogwildIsFullPrecision)
{
    const Signature dense = Signature::dense_hogwild();
    EXPECT_TRUE(dense.is_full_precision());
    EXPECT_EQ(dense.to_string(), "D32fM32f");

    const Signature sparse = Signature::sparse_hogwild();
    EXPECT_TRUE(sparse.is_full_precision());
    EXPECT_EQ(sparse.to_string(), "D32fi32M32f");
    EXPECT_EQ(sparse.dataset_bits_per_number(), 64);
}

TEST(Signature, ParseWithSpacesAsInPaper)
{
    // The paper writes "D32f i32 M32f".
    const Signature sig = parse_signature("D32f i32 M32f");
    EXPECT_TRUE(sig.sparse);
    EXPECT_EQ(sig.index_bits, 32);
    EXPECT_TRUE(sig.dataset.is_float);
    EXPECT_TRUE(sig.model.is_float);
}

TEST(Signature, GradientOnlySignatures)
{
    // Courbariaux et al.: G10; Savich & Moussa: G18.
    const Signature g10 = parse_signature("G10");
    EXPECT_TRUE(g10.gradient.has_value());
    EXPECT_EQ(g10.gradient->bits, 10);
    EXPECT_FALSE(g10.gradient->is_float);
    EXPECT_TRUE(g10.dataset == Precision::full());
    EXPECT_EQ(g10.to_string(), "G10");
}

TEST(Signature, SynchronousCommunication)
{
    // Seide et al. 1-bit SGD: Cs1.
    const Signature sig = parse_signature("Cs1");
    EXPECT_EQ(sig.communication, Communication::kSynchronous);
    ASSERT_TRUE(sig.comm_precision.has_value());
    EXPECT_EQ(sig.comm_precision->bits, 1);
    EXPECT_EQ(sig.to_string(), "Cs1");
}

TEST(Signature, ExplicitAsynchronousCommunication)
{
    const Signature sig = parse_signature("D8M16G32fC32");
    EXPECT_EQ(sig.communication, Communication::kAsynchronous);
    ASSERT_TRUE(sig.comm_precision.has_value());
    EXPECT_EQ(sig.comm_precision->bits, 32);
    ASSERT_TRUE(sig.gradient.has_value());
    EXPECT_TRUE(sig.gradient->is_float);
    EXPECT_EQ(sig.to_string(), "D8M16G32fC32");
}

TEST(Signature, FloatSuffixDistinguishesFixedFromFloat)
{
    const Signature fx = parse_signature("D32M32f");
    EXPECT_FALSE(fx.dataset.is_float);
    EXPECT_EQ(fx.dataset.bits, 32);
    EXPECT_TRUE(fx.model.is_float);
}

TEST(Signature, MalformedInputsThrow)
{
    EXPECT_THROW(parse_signature(""), std::runtime_error);
    EXPECT_THROW(parse_signature("D"), std::runtime_error);
    EXPECT_THROW(parse_signature("Dx8"), std::runtime_error);
    EXPECT_THROW(parse_signature("Q8"), std::runtime_error);
    EXPECT_THROW(parse_signature("M"), std::runtime_error);
}

TEST(Signature, ToStringOmitsFullPrecisionTerms)
{
    Signature sig;
    sig.model = Precision::fixed(8);
    EXPECT_EQ(sig.to_string(), "M8"); // D32f omitted per the paper's rules
}

// --------------------------------------------------------------- taxonomy

TEST(Taxonomy, ContainsAllTable1Rows)
{
    const auto& tax = prior_work_taxonomy();
    ASSERT_GE(tax.size(), 5u);
    auto find = [&tax](const std::string& needle) -> const TaxonomyEntry* {
        for (const auto& e : tax)
            if (e.paper.find(needle) != std::string::npos) return &e;
        return nullptr;
    };
    ASSERT_NE(find("Savich"), nullptr);
    EXPECT_EQ(find("Savich")->signature_text, "G18");
    ASSERT_NE(find("Seide"), nullptr);
    EXPECT_EQ(find("Seide")->signature.communication,
              Communication::kSynchronous);
    ASSERT_NE(find("Courbariaux"), nullptr);
    EXPECT_EQ(find("Courbariaux")->signature.gradient->bits, 10);
    ASSERT_NE(find("Gupta"), nullptr);
    EXPECT_EQ(find("Gupta")->signature, parse_signature("D8M16"));
    ASSERT_NE(find("De Sa"), nullptr);
    EXPECT_EQ(find("De Sa")->signature, Signature::dense_fixed(8, 8));
}

TEST(Taxonomy, EveryEntryParsesConsistently)
{
    for (const auto& e : prior_work_taxonomy())
        EXPECT_EQ(parse_signature(e.signature_text), e.signature) << e.paper;
}

// ------------------------------------------------------- performance model

TEST(PerfModel, Table2ValuesAreLoaded)
{
    const PerfModel model = PerfModel::paper_model();
    EXPECT_NEAR(model.base_throughput(Signature::dense_fixed(8, 8)), 3.339,
                1e-9);
    EXPECT_NEAR(model.base_throughput(Signature::sparse_fixed(8, 8, 8)),
                0.166, 1e-9);
    EXPECT_NEAR(model.base_throughput(Signature::dense_hogwild()), 0.936,
                1e-9);
    EXPECT_NEAR(model.base_throughput(Signature::sparse_hogwild()), 0.101,
                1e-9);
}

TEST(PerfModel, UncalibratedSignatureThrows)
{
    const PerfModel model = PerfModel::paper_model();
    EXPECT_FALSE(model.is_calibrated(Signature::dense_fixed(4, 4)));
    EXPECT_THROW(model.base_throughput(Signature::dense_fixed(4, 4)),
                 std::runtime_error);
}

TEST(PerfModel, ParallelFractionMatchesEq3)
{
    const PerfModel model = PerfModel::paper_model();
    // p(n) = 0.89 - 22/sqrt(n)
    EXPECT_NEAR(model.parallel_fraction(1 << 20), 0.89 - 22.0 / 1024.0,
                1e-12);
    // Small models clamp at 0 (communication-dominated).
    EXPECT_DOUBLE_EQ(model.parallel_fraction(256), 0.0);
    EXPECT_DOUBLE_EQ(model.parallel_fraction(0), 0.0);
}

TEST(PerfModel, AmdahlLimits)
{
    // p = 1: perfect scaling. p = 0: no scaling.
    EXPECT_DOUBLE_EQ(PerfModel::amdahl(2.0, 8, 1.0), 16.0);
    EXPECT_DOUBLE_EQ(PerfModel::amdahl(2.0, 8, 0.0), 2.0);
    // Monotone in threads.
    double prev = 0.0;
    for (std::size_t t = 1; t <= 18; ++t) {
        const double cur = PerfModel::amdahl(1.0, t, 0.85);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(PerfModel, PredictionsReproducePaperShape)
{
    const PerfModel model = PerfModel::paper_model();
    const auto d8m8 = Signature::dense_fixed(8, 8);
    const auto hog = Signature::dense_hogwild();

    // Dense D8M8 beats full-precision Hogwild! by ~3.6x at any fixed
    // (threads, model size), since T1 scales linearly into Eq. 2.
    const double speedup = model.predict_gnps(d8m8, 18, 1 << 22) /
                           model.predict_gnps(hog, 18, 1 << 22);
    EXPECT_NEAR(speedup, 3.339 / 0.936, 1e-9);

    // Large models are bandwidth-bound: throughput roughly flat in n.
    const double large1 = model.predict_gnps(d8m8, 18, 1 << 20);
    const double large2 = model.predict_gnps(d8m8, 18, 1 << 24);
    EXPECT_LT(std::fabs(large1 - large2) / large2, 0.25);

    // Small models are communication-bound: much slower.
    const double small = model.predict_gnps(d8m8, 18, 1 << 10);
    EXPECT_LT(small, large2 / 3.0);
}

TEST(PerfModel, SparseM8SchemesAreFastest)
{
    // Table 2's sparse column: the two M8 low-precision schemes (D16i16M8
    // at 0.172 and D8i8M8 at 0.166) top the table. (The paper's *text*
    // calls D8i8M8 "the fastest scheme"; its own table puts D16i16M8 a
    // hair above — we encode the table.) Either way, sub-linear speedup:
    // ~1.6-1.7x over sparse Hogwild!, well short of the 4x bit ratio.
    const PerfModel model = PerfModel::paper_model();
    const double d8 = model.base_throughput(Signature::sparse_fixed(8, 8, 8));
    const double d16 =
        model.base_throughput(Signature::sparse_fixed(16, 16, 8));
    const double hog = model.base_throughput(Signature::sparse_hogwild());
    for (const auto& text : model.calibrated_signatures()) {
        Signature sig = parse_signature(text);
        sig.sparse = true;
        sig.index_bits = sig.dataset.is_float ? 32 : sig.dataset.bits;
        EXPECT_LE(model.base_throughput(sig), std::max(d8, d16)) << text;
    }
    EXPECT_GT(d8 / hog, 1.5);
    EXPECT_LT(d8 / hog, 4.0) << "sparse speedup is sub-linear in bits";
}

TEST(PerfModel, InferParallelFractionInvertsAmdahl)
{
    for (double p : {0.0, 0.3, 0.85, 1.0}) {
        for (std::size_t t : {2UL, 4UL, 18UL}) {
            const double tt = PerfModel::amdahl(1.7, t, p);
            EXPECT_NEAR(infer_parallel_fraction(1.7, tt, t), p, 1e-9);
        }
    }
    EXPECT_THROW(infer_parallel_fraction(1.0, 1.0, 1), std::runtime_error);
    EXPECT_THROW(infer_parallel_fraction(-1.0, 1.0, 2), std::runtime_error);
}

TEST(PerfModel, FitCoefficientsRecoversEq3)
{
    // Generate exact Eq.-3 samples and refit.
    std::vector<std::pair<std::size_t, double>> samples;
    for (std::size_t n = 1 << 10; n <= (1 << 24); n <<= 2)
        samples.emplace_back(
            n, 0.89 - 22.0 / std::sqrt(static_cast<double>(n)));
    const auto c = fit_coefficients(samples);
    EXPECT_NEAR(c.bandwidth_fraction, 0.89, 1e-9);
    EXPECT_NEAR(c.comm_coeff, 22.0, 1e-6);

    EXPECT_THROW(fit_coefficients({{1024, 0.5}}), std::runtime_error);
    EXPECT_THROW(fit_coefficients({{1024, 0.5}, {1024, 0.6}}),
                 std::runtime_error);
}

TEST(PerfModel, CustomCalibration)
{
    PerfModel model({{"D8M8", {10.0, 1.0}}}, {0.5, 10.0});
    EXPECT_DOUBLE_EQ(model.base_throughput(Signature::dense_fixed(8, 8)),
                     10.0);
    EXPECT_DOUBLE_EQ(model.parallel_fraction(400), 0.0);
    EXPECT_DOUBLE_EQ(model.parallel_fraction(10000), 0.4);
    EXPECT_EQ(model.calibrated_signatures().size(), 1u);
}

} // namespace
} // namespace buckwild::dmgc
