/**
 * @file
 * Tests for the live observability tier (src/obs sampler/prom/http/
 * conformance/perf):
 *
 *  - ObsProm: golden text-exposition rendering (counter `_total`
 *    convention, gauge/summary families, HELP escaping, name
 *    sanitization, non-finite values, stable ordering);
 *  - ObsSampler: rate derivation checked against a hand-driven fake
 *    clock (no sleeping), counter-reset and born-mid-run handling,
 *    bounded series window, JSONL flight record;
 *  - ObsHttp: a real socket round-trip against the exporter on an
 *    ephemeral port — /metrics, /healthz, 404, 405;
 *  - ObsConformance: measured/predicted GNPS ratio, band violations,
 *    idle-tick suppression, uncalibrated-signature behavior;
 *  - ObsPerf: perf_event_open degrades to "unavailable" (the CI case)
 *    without breaking publish();
 *  - ObsLiveStress: the TSan case — a real sampler thread with both
 *    listeners attached racing hot-path writers and scrape reads.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dmgc/signature.h"
#include "obs/fleet.h"
#include "obs/obs.h"
#include "test_common.h"

namespace buckwild {
namespace {

// ----------------------------------------------------------------- prom

TEST(ObsProm, GoldenRendering)
{
    obs::MetricsRegistry registry;
    registry.counter("serve.requests").add(3);
    registry.gauge("busy").set(1.5);
    obs::Histo& h = registry.histogram("lat");
    h.record(2.5);
    h.record(2.5);

    const std::string golden =
        "# HELP serve_requests_total serve.requests\n"
        "# TYPE serve_requests_total counter\n"
        "serve_requests_total 3\n"
        "# HELP busy busy\n"
        "# TYPE busy gauge\n"
        "busy 1.5\n"
        "# HELP lat lat\n"
        "# TYPE lat summary\n"
        "lat{quantile=\"0.5\"} 2.5\n"
        "lat{quantile=\"0.95\"} 2.5\n"
        "lat{quantile=\"0.99\"} 2.5\n"
        "lat_sum 5\n"
        "lat_count 2\n";
    EXPECT_EQ(obs::render_prometheus(registry.snapshot()), golden);
}

TEST(ObsProm, NameSanitizationAndCounterSuffix)
{
    EXPECT_EQ(obs::prom_name("serve.requests"), "serve_requests");
    EXPECT_EQ(obs::prom_name("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(obs::prom_name("9lives"), "_9lives")
        << "a leading digit is invalid in a Prometheus name";
    EXPECT_EQ(obs::prom_name(""), "_");

    obs::MetricsRegistry registry;
    registry.counter("already_total").add(1);
    const std::string body = obs::render_prometheus(registry.snapshot());
    EXPECT_NE(body.find("already_total 1\n"), std::string::npos);
    EXPECT_EQ(body.find("already_total_total"), std::string::npos)
        << "the _total convention must not stack";
}

TEST(ObsProm, EscapingAndNonFiniteValues)
{
    EXPECT_EQ(obs::prom_escape("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
    EXPECT_EQ(obs::prom_value(std::nan("")), "NaN");
    EXPECT_EQ(obs::prom_value(HUGE_VAL), "+Inf");
    EXPECT_EQ(obs::prom_value(-HUGE_VAL), "-Inf");
    EXPECT_EQ(obs::prom_value(0.25), "0.25");

    // A hostile registry name ends up sanitized in the metric name but
    // escaped (recoverable) in the HELP line.
    obs::MetricsRegistry registry;
    registry.gauge("weird\nname").set(1.0);
    const std::string body = obs::render_prometheus(registry.snapshot());
    EXPECT_NE(body.find("# HELP weird_name weird\\nname\n"),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("weird_name 1\n"), std::string::npos);
}

TEST(ObsProm, RenderingIsStableAndOrdered)
{
    obs::MetricsRegistry registry;
    registry.counter("z").add(1);
    registry.counter("a").add(1);
    registry.gauge("m").set(0.0);
    const std::string first = obs::render_prometheus(registry.snapshot());
    const std::string second = obs::render_prometheus(registry.snapshot());
    EXPECT_EQ(first, second);
    EXPECT_LT(first.find("a_total"), first.find("z_total"))
        << "families must render in name order";
}

// -------------------------------------------------------------- sampler

TEST(ObsSampler, DerivesRatesFromAFakeClock)
{
    obs::MetricsRegistry registry;
    obs::Counter& reqs = registry.counter("reqs");
    obs::Gauge& numbers = registry.gauge("numbers");

    obs::SamplerConfig cfg;
    cfg.rate_gauges = {"numbers"};
    obs::Sampler sampler(registry, cfg);

    // Baseline tick: no previous sample, so no rates yet.
    EXPECT_TRUE(sampler.sample_now(0.0).rates.empty());

    reqs.add(100);
    numbers.add(500.0);
    const obs::Sample s1 = sampler.sample_now(10.0);
    EXPECT_DOUBLE_EQ(s1.rates.at("reqs"), 10.0);
    EXPECT_DOUBLE_EQ(s1.rates.at("numbers"), 50.0);
    // Rates are published back as gauges for the scrape endpoint.
    EXPECT_DOUBLE_EQ(registry.gauge("reqs.rate").value(), 10.0);
    EXPECT_DOUBLE_EQ(registry.gauge("numbers.rate").value(), 50.0);

    // An idle interval reports an explicit zero rate, not a stale one.
    const obs::Sample s2 = sampler.sample_now(11.0);
    EXPECT_DOUBLE_EQ(s2.rates.at("reqs"), 0.0);

    EXPECT_EQ(sampler.samples_taken(), 3u);
}

TEST(ObsSampler, SkipsResetCountersAndBornMidRunInstruments)
{
    obs::MetricsRegistry registry;
    obs::Counter& c = registry.counter("c");
    obs::SamplerConfig cfg;
    obs::Sampler sampler(registry, cfg);

    c.add(50);
    sampler.sample_now(0.0);

    // Born mid-run: no baseline yet, so no rate for it this tick.
    registry.counter("late").add(7);
    c.add(10);
    const obs::Sample s1 = sampler.sample_now(1.0);
    EXPECT_DOUBLE_EQ(s1.rates.at("c"), 10.0);
    EXPECT_EQ(s1.rates.count("late"), 0u)
        << "a counter born mid-run has no previous tick to rate against";

    // ...but the next tick it does.
    const obs::Sample s2 = sampler.sample_now(2.0);
    EXPECT_DOUBLE_EQ(s2.rates.at("late"), 0.0);

    // A backwards step (registry reset) must not produce a huge negative
    // or wrapped rate — the counter is skipped until it has a fresh
    // baseline.
    registry.reset();
    const obs::Sample s3 = sampler.sample_now(3.0);
    EXPECT_EQ(s3.rates.count("c"), 0u);
}

TEST(ObsSampler, SeriesWindowIsBounded)
{
    obs::MetricsRegistry registry;
    obs::SamplerConfig cfg;
    cfg.capacity = 4;
    obs::Sampler sampler(registry, cfg);
    for (int i = 0; i < 10; ++i)
        sampler.sample_now(static_cast<double>(i));

    const auto series = sampler.series();
    ASSERT_EQ(series.size(), 4u) << "oldest samples must be dropped";
    EXPECT_DOUBLE_EQ(series.front().t_seconds, 6.0);
    EXPECT_DOUBLE_EQ(series.back().t_seconds, 9.0);
    EXPECT_DOUBLE_EQ(sampler.latest().t_seconds, 9.0);
    EXPECT_EQ(sampler.samples_taken(), 10u);
}

TEST(ObsSampler, WritesAJsonlFlightRecord)
{
    testutil::TempFile file("timeseries");
    obs::MetricsRegistry registry;
    registry.counter("ticks").add(1);

    obs::SamplerConfig cfg;
    cfg.period = std::chrono::milliseconds(5);
    cfg.jsonl_path = file.path();
    obs::Sampler sampler(registry, cfg);
    sampler.start();
    registry.counter("ticks").add(9);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sampler.stop();

    std::ifstream in(file.path());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), sampler.samples_taken())
        << "one JSONL line per tick";
    ASSERT_GE(lines.size(), 2u) << "baseline plus the final stop() tick";
    EXPECT_NE(lines.front().find("\"t\":0,"), std::string::npos);
    EXPECT_NE(lines.front().find("\"counters\":{"), std::string::npos);
    EXPECT_NE(lines.back().find("\"ticks\":10"), std::string::npos);
    EXPECT_NE(lines.back().find("\"rates\":{"), std::string::npos);
}

// ----------------------------------------------------------------- http

std::string
http_get(std::uint16_t port, const std::string& request_head)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    const std::string request = request_head + "\r\nHost: t\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(ObsHttp, ServesMetricsAndHealthOverARealSocket)
{
    obs::MetricsRegistry registry;
    registry.counter("serve.requests").add(42);
    registry.gauge("obs.conformance.ratio").set(1.25);

    obs::HttpExporterConfig cfg;
    cfg.port = 0; // ephemeral: no fixed-port collisions in CI
    cfg.bind_address = "127.0.0.1";
    cfg.registry = &registry;
    obs::HttpExporter exporter(cfg);
    ASSERT_TRUE(exporter.start());
    ASSERT_NE(exporter.port(), 0u);

    const std::string health = http_get(exporter.port(), "GET /healthz HTTP/1.1");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok\n"), std::string::npos);

    const std::string metrics = http_get(exporter.port(), "GET /metrics HTTP/1.1");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find(obs::kPromContentType), std::string::npos);
    EXPECT_NE(metrics.find("serve_requests_total 42\n"), std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("obs_conformance_ratio 1.25\n"),
              std::string::npos);

    // Query strings are stripped, not 404ed.
    const std::string query =
        http_get(exporter.port(), "GET /metrics?format=prometheus HTTP/1.1");
    EXPECT_NE(query.find("200 OK"), std::string::npos);

    EXPECT_NE(http_get(exporter.port(), "GET /nope HTTP/1.1")
                  .find("404 Not Found"),
              std::string::npos);
    EXPECT_NE(http_get(exporter.port(), "POST /metrics HTTP/1.1")
                  .find("405 Method Not Allowed"),
              std::string::npos);

    EXPECT_GE(exporter.requests_served(), 5u);
    exporter.stop();
    EXPECT_FALSE(exporter.running());
}

// ----------------------------------------------------------------- fleet

TEST(ObsFleet, RelabelInjectsNodeIntoEverySampleLine)
{
    const std::string body = "# HELP a_total a\n"
                             "# TYPE a_total counter\n"
                             "a_total 5\n"
                             "lat{quantile=\"0.5\"} 2.5\n"
                             "empty{} 0\n";
    const std::string want = "# HELP a_total a\n"
                             "# TYPE a_total counter\n"
                             "a_total{node=\"shard0\"} 5\n"
                             "lat{node=\"shard0\",quantile=\"0.5\"} 2.5\n"
                             "empty{node=\"shard0\"} 0\n";
    EXPECT_EQ(obs::FleetAggregator::relabel(body, "shard0"), want);

    // Label values go through prom escaping, and a body with no final
    // newline still comes back terminated.
    EXPECT_EQ(obs::FleetAggregator::relabel("x 1", "a\"b"),
              "x{node=\"a\\\"b\"} 1\n");
}

TEST(ObsFleet, MergesLiveEndpointsWithNodeLabelsAndCommentDedup)
{
    // Two "remote" nodes with the same metric family plus the
    // aggregating process's own registry: the merged body must carry
    // all three node labels but only one HELP/TYPE pair per family.
    obs::MetricsRegistry reg_a, reg_b, reg_local;
    reg_a.counter("ps.push").add(7);
    reg_b.counter("ps.push").add(11);
    reg_local.gauge("cluster.nodes").set(3);

    obs::HttpExporterConfig cfg;
    cfg.port = 0;
    cfg.bind_address = "127.0.0.1";
    cfg.registry = &reg_a;
    obs::HttpExporter exp_a(cfg);
    ASSERT_TRUE(exp_a.start());
    cfg.registry = &reg_b;
    obs::HttpExporter exp_b(cfg);
    ASSERT_TRUE(exp_b.start());

    obs::FleetConfig fleet_cfg;
    fleet_cfg.local_node = "control";
    fleet_cfg.local_registry = &reg_local;
    obs::FleetAggregator fleet(fleet_cfg);
    fleet.add_target({"worker0", {"127.0.0.1", exp_a.port()}});
    fleet.add_target({"worker1", {"127.0.0.1", exp_b.port()}});
    EXPECT_EQ(fleet.target_count(), 2u);

    const std::string merged = fleet.merged_body();
    EXPECT_NE(merged.find("cluster_nodes{node=\"control\"} 3\n"),
              std::string::npos)
        << merged;
    EXPECT_NE(merged.find("ps_push_total{node=\"worker0\"} 7\n"),
              std::string::npos);
    EXPECT_NE(merged.find("ps_push_total{node=\"worker1\"} 11\n"),
              std::string::npos);
    // One TYPE line for the shared family, not one per node.
    const std::string type_line = "# TYPE ps_push_total counter\n";
    const std::size_t first = merged.find(type_line);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(merged.find(type_line, first + 1), std::string::npos)
        << "HELP/TYPE must be deduplicated across nodes";
    EXPECT_EQ(fleet.scrape_failures(), 0u);

    // A node that dies keeps answering from its last good scrape: the
    // workers exit before the run ends, but their final numbers must
    // stay visible in the merged view.
    exp_b.stop();
    const std::string after = fleet.merged_body();
    EXPECT_NE(after.find("ps_push_total{node=\"worker0\"} 7\n"),
              std::string::npos);
    EXPECT_NE(after.find("ps_push_total{node=\"worker1\"} 11\n"),
              std::string::npos)
        << "dead node must be served from the last-good cache";
    exp_a.stop();
}

TEST(ObsFleet, NeverScrapedTargetIsAbsentAndCounted)
{
    obs::MetricsRegistry reg_local;
    reg_local.counter("up").add(1);
    obs::FleetConfig cfg;
    cfg.local_node = "control";
    cfg.local_registry = &reg_local;
    cfg.scrape_timeout = std::chrono::milliseconds(50);
    obs::FleetAggregator fleet(cfg);
    // Port 1 on loopback: connection refused, never any last-good body.
    fleet.add_target({"ghost", {"127.0.0.1", 1}});

    const std::string merged = fleet.merged_body();
    EXPECT_NE(merged.find("up_total{node=\"control\"} 1\n"),
              std::string::npos);
    EXPECT_EQ(merged.find("ghost"), std::string::npos);
    EXPECT_GE(fleet.scrape_failures(), 1u);
}

// ----------------------------------------------------------- conformance

TEST(ObsConformance, TracksRatioAndCountsBandViolations)
{
    obs::MetricsRegistry registry;
    obs::ConformanceConfig cfg;
    cfg.signature = dmgc::Signature::dense_hogwild(); // D32fM32f row
    cfg.threads = 1; // predict_gnps(t=1) == T1 == 0.936 GNPS exactly
    cfg.model_size = 1024;
    cfg.numbers_gauge = "n";
    cfg.seconds_gauge = "s";
    cfg.band_lo = 0.5;
    cfg.band_hi = 2.0;
    obs::ConformanceWatchdog dog(registry, cfg);
    EXPECT_DOUBLE_EQ(dog.predicted_gnps(), 0.936);
    // The whole family exists before any data arrives (scrapes and the
    // CI smoke assert on series presence, not just values).
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.calibrated").value(),
                     1.0);
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.band_hi").value(), 2.0);

    obs::Gauge& n = registry.gauge("n");
    obs::Gauge& s = registry.gauge("s");
    dog.observe(0.0, registry.snapshot()); // baseline

    // Exactly the predicted throughput: ratio 1, in band.
    n.add(0.936e9);
    s.add(1.0);
    dog.observe(1.0, registry.snapshot());
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.ratio").value(), 1.0);
    EXPECT_EQ(dog.violations(), 0u);

    // 4x the roofline: out of band, one violation.
    n.add(4.0 * 0.936e9);
    s.add(1.0);
    dog.observe(2.0, registry.snapshot());
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.ratio").value(), 4.0);
    EXPECT_EQ(dog.violations(), 1u);

    // Idle tick (no busy-seconds progress): skipped, not a violation.
    dog.observe(3.0, registry.snapshot());
    EXPECT_EQ(dog.violations(), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.ratio").value(), 4.0)
        << "an idle interval must leave the last measurement standing";

    // Crawling at 1/10th the roofline: below the band.
    n.add(0.0936e9);
    s.add(1.0);
    dog.observe(4.0, registry.snapshot());
    EXPECT_EQ(dog.violations(), 2u);
}

TEST(ObsConformance, UncalibratedSignatureMeasuresButNeverViolates)
{
    obs::MetricsRegistry registry;
    obs::ConformanceConfig cfg;
    cfg.signature = dmgc::parse_signature("D4M4"); // no Table-2 row
    cfg.threads = 4;
    cfg.model_size = 1024;
    cfg.numbers_gauge = "n";
    cfg.seconds_gauge = "s";
    obs::ConformanceWatchdog dog(registry, cfg);
    EXPECT_DOUBLE_EQ(dog.predicted_gnps(), 0.0);
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.calibrated").value(),
                     0.0);

    obs::Gauge& n = registry.gauge("n");
    obs::Gauge& s = registry.gauge("s");
    dog.observe(0.0, registry.snapshot());
    n.add(2e9);
    s.add(1.0);
    dog.observe(1.0, registry.snapshot());
    EXPECT_DOUBLE_EQ(
        registry.gauge("obs.conformance.measured_gnps").value(), 2.0)
        << "measured GNPS still works without a prediction";
    EXPECT_DOUBLE_EQ(registry.gauge("obs.conformance.ratio").value(), 0.0);
    EXPECT_EQ(dog.violations(), 0u);
}

TEST(ObsConformance, WaitsForTheWorkloadGaugesToAppear)
{
    obs::MetricsRegistry registry;
    obs::ConformanceConfig cfg;
    cfg.signature = dmgc::Signature::dense_hogwild();
    cfg.threads = 1;
    cfg.model_size = 64;
    cfg.numbers_gauge = "missing.n";
    cfg.seconds_gauge = "missing.s";
    obs::ConformanceWatchdog dog(registry, cfg);
    // Gauges not published yet: every observe is a clean no-op.
    dog.observe(0.0, registry.snapshot());
    dog.observe(1.0, registry.snapshot());
    EXPECT_EQ(dog.violations(), 0u);
    EXPECT_DOUBLE_EQ(
        registry.gauge("obs.conformance.measured_gnps").value(), 0.0);
}

// ----------------------------------------------------------------- perf

TEST(ObsPerf, PublishesOrDegradesGracefully)
{
    obs::PerfCounters perf;
    obs::MetricsRegistry registry;
    perf.publish(registry);
    const auto snap = registry.snapshot();

    if (perf.available()) {
        EXPECT_DOUBLE_EQ(snap.gauges.at("obs.perf.available"), 1.0);
        EXPECT_TRUE(perf.read().ok);
        // Burn some instructions; the counters must move forward.
        volatile double sink = 0.0;
        for (int i = 0; i < 100000; ++i)
            sink = sink + static_cast<double>(i);
        perf.publish(registry);
        const auto snap2 = registry.snapshot();
        EXPECT_GT(snap2.counters.at("obs.perf.instructions"),
                  snap.counters.at("obs.perf.instructions"));
        EXPECT_GT(snap2.gauges.at("obs.perf.ipc"), 0.0);
    } else {
        // The CI container case: perf_event_open denied. Everything
        // stays well-defined — availability gauge 0, a reason string,
        // reads that say not-ok, and no phantom counter series.
        EXPECT_FALSE(perf.unavailable_reason().empty());
        EXPECT_FALSE(perf.read().ok);
        EXPECT_DOUBLE_EQ(snap.gauges.at("obs.perf.available"), 0.0);
        EXPECT_EQ(snap.counters.count("obs.perf.instructions"), 0u);
        perf.publish(registry); // still a no-op, still no throw
    }
}

// --------------------------------------------------------------- stress

TEST(ObsLiveStress, SamplerAndScrapersRaceHotPathWriters)
{
    // The TSan case for the live tier: a real 1ms sampler thread (with
    // perf + conformance listeners attached) and a scraping reader
    // racing four writer threads hammering every instrument type of the
    // shared registry. Counters must come out exact; nothing may tear.
    obs::MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kIters = 5000;

    obs::ConformanceConfig conf;
    conf.signature = dmgc::Signature::dense_hogwild();
    conf.threads = kThreads;
    conf.model_size = 4096;
    conf.numbers_gauge = "stress.numbers";
    conf.seconds_gauge = "stress.seconds";
    obs::ConformanceWatchdog dog(registry, conf);
    obs::PerfCounters perf;

    obs::SamplerConfig cfg;
    cfg.period = std::chrono::milliseconds(1);
    cfg.rate_gauges = {"stress.numbers", "stress.seconds"};
    obs::Sampler sampler(registry, cfg);
    sampler.add_listener(
        [&](const obs::Sample&) { perf.publish(registry); });
    sampler.add_listener([&](const obs::Sample& s) { dog.observe(s); });
    sampler.start();

    obs::Counter& counter = registry.counter("stress.counter");
    obs::Gauge& numbers = registry.gauge("stress.numbers");
    obs::Gauge& seconds = registry.gauge("stress.seconds");
    obs::Histo& histo = registry.histogram("stress.histo");

    std::atomic<bool> stop_reader{false};
    std::thread reader([&] {
        // What a /metrics scrape does, racing the writers directly.
        std::size_t bytes = 0;
        while (!stop_reader.load(std::memory_order_relaxed)) {
            bytes += obs::render_prometheus(registry.snapshot()).size();
            std::this_thread::yield();
        }
        EXPECT_GT(bytes, 0u);
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                counter.add(1);
                numbers.add(64.0);
                seconds.add(1e-6);
                histo.record(static_cast<double>(i % 100));
            }
        });
    for (auto& th : writers) th.join();
    stop_reader.store(true, std::memory_order_relaxed);
    reader.join();
    sampler.stop();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(histo.count(), static_cast<std::size_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(numbers.value(),
                     64.0 * static_cast<double>(kThreads) * kIters);
    EXPECT_GE(sampler.samples_taken(), 2u)
        << "baseline plus the final stop() tick at minimum";
    // The sampler saw a consistent world the whole way: every retained
    // sample's counter value is a multiple of nothing in particular but
    // must never exceed the final total.
    for (const obs::Sample& s : sampler.series()) {
        const auto it = s.snapshot.counters.find("stress.counter");
        if (it != s.snapshot.counters.end()) {
            EXPECT_LE(it->second,
                      static_cast<std::uint64_t>(kThreads) * kIters);
        }
    }
}

} // namespace
} // namespace buckwild
