/**
 * @file
 * Tests for low-precision matrix factorization: synthetic rating
 * generation, convergence across factor precisions, and the
 * naturally-quantized-dataset property.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/matrix_fact.h"

namespace buckwild::core {
namespace {

const RatingProblem&
problem()
{
    static const auto kProblem =
        generate_ratings(150, 200, 8, 15000, 3000, 5);
    return kProblem;
}

TEST(Ratings, GeneratorShapesAndNaturalQuantization)
{
    const auto& p = problem();
    EXPECT_EQ(p.users, 150u);
    EXPECT_EQ(p.items, 200u);
    EXPECT_EQ(p.train.size(), 15000u);
    EXPECT_EQ(p.test.size(), 3000u);
    std::set<float> values;
    for (const auto& r : p.train) {
        EXPECT_LT(r.user, p.users);
        EXPECT_LT(r.item, p.items);
        EXPECT_GE(r.value, 1.0f);
        EXPECT_LE(r.value, 5.0f);
        // Half-star steps: value*2 is integral.
        EXPECT_FLOAT_EQ(r.value * 2.0f, std::round(r.value * 2.0f));
        values.insert(r.value);
    }
    EXPECT_GT(values.size(), 3u) << "ratings must vary";
    EXPECT_LE(values.size(), 9u) << "only half-star steps in [1,5]";
}

TEST(Ratings, DeterministicInSeed)
{
    const auto a = generate_ratings(20, 20, 4, 100, 10, 7);
    const auto b = generate_ratings(20, 20, 4, 100, 10, 7);
    ASSERT_EQ(a.train.size(), b.train.size());
    for (std::size_t i = 0; i < a.train.size(); ++i) {
        EXPECT_EQ(a.train[i].user, b.train[i].user);
        EXPECT_EQ(a.train[i].value, b.train[i].value);
    }
}

TEST(Ratings, RejectsDegenerateShapes)
{
    EXPECT_THROW(generate_ratings(0, 10, 2, 10, 1, 1),
                 std::runtime_error);
    EXPECT_THROW(generate_ratings(10, 10, 0, 10, 1, 1),
                 std::runtime_error);
}

class MfPrecision : public ::testing::TestWithParam<int>
{};

TEST_P(MfPrecision, ConvergesToLowRmse)
{
    MfConfig cfg;
    cfg.factor_bits = GetParam();
    cfg.factor_dim = 16;
    cfg.epochs = 8;
    const auto r = train_matrix_factorization(problem(), cfg);
    // Observation noise is ~0.25 half-star rounding + 0.5-wide uniform;
    // a good fit lands near 0.2-0.3 RMSE. The trivial predict-the-mean
    // baseline is far worse.
    EXPECT_LT(r.train_rmse, 0.35) << GetParam() << " bits";
    EXPECT_LT(r.test_rmse, 0.40) << GetParam() << " bits";
    EXPECT_LT(r.train_rmse_trace.back(),
              r.train_rmse_trace.front() + 1e-6);
    EXPECT_GT(r.gnps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(FactorWidths, MfPrecision,
                         ::testing::Values(8, 16, 32),
                         [](const auto& info) {
                             return std::to_string(info.param) + "bit";
                         });

TEST(MfPrecision, SixteenBitMatchesFloatClosely)
{
    MfConfig cfg;
    cfg.factor_dim = 16;
    cfg.epochs = 8;
    cfg.factor_bits = 32;
    const auto full = train_matrix_factorization(problem(), cfg);
    cfg.factor_bits = 16;
    const auto q16 = train_matrix_factorization(problem(), cfg);
    EXPECT_NEAR(q16.test_rmse, full.test_rmse, 0.02);
}

TEST(MfPrecision, RejectsBadConfig)
{
    MfConfig cfg;
    cfg.factor_bits = 12;
    EXPECT_THROW(train_matrix_factorization(problem(), cfg),
                 std::runtime_error);
    cfg = MfConfig{};
    cfg.factor_dim = 0;
    EXPECT_THROW(train_matrix_factorization(problem(), cfg),
                 std::runtime_error);
    RatingProblem empty;
    EXPECT_THROW(train_matrix_factorization(empty, MfConfig{}),
                 std::runtime_error);
}

} // namespace
} // namespace buckwild::core
