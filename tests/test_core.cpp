/**
 * @file
 * Tests for the core SGD engine and Trainer facade.
 *
 * Statistical-efficiency properties from the paper that the engine must
 * reproduce:
 *  - full-precision SGD converges on a well-conditioned logistic problem;
 *  - low-precision (D8M8 .. D16M16) converges to comparable loss;
 *  - Hogwild! (multi-threaded, no locks) converges like sequential;
 *  - unbiased rounding beats biased rounding at low model precision;
 *  - mini-batching trades statistical efficiency in a loss-visible way
 *    only at large B.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "buckwild/buckwild.h"

namespace buckwild::core {
namespace {

using dataset::generate_logistic_dense;
using dataset::generate_logistic_sparse;

/// A small, well-conditioned dense logistic problem.
const dataset::DenseProblem&
dense_problem()
{
    static const auto kProblem = generate_logistic_dense(64, 2000, 4242);
    return kProblem;
}

const dataset::SparseProblem&
sparse_problem()
{
    static const auto kProblem =
        generate_logistic_sparse(512, 2000, 0.05, 4243);
    return kProblem;
}

TrainerConfig
base_config()
{
    TrainerConfig cfg;
    cfg.epochs = 15;
    cfg.step_size = 0.15f;
    cfg.step_decay = 0.9f;
    cfg.record_loss_trace = true;
    return cfg;
}

// ----------------------------------------------------------------- losses

TEST(LossFunctions, ValuesAndGradients)
{
    // Logistic at z=0: loss ln2, gradient -y/2.
    EXPECT_NEAR(loss_value(Loss::kLogistic, 0.0f, 1.0f), std::log(2.0f),
                1e-6);
    EXPECT_NEAR(loss_gradient_coefficient(Loss::kLogistic, 0.0f, 1.0f),
                -0.5f, 1e-6);
    EXPECT_NEAR(loss_gradient_coefficient(Loss::kLogistic, 0.0f, -1.0f),
                0.5f, 1e-6);
    // Large correct margin: loss ~ 0; large wrong margin ~ |m|.
    EXPECT_NEAR(loss_value(Loss::kLogistic, 30.0f, 1.0f), 0.0f, 1e-6);
    EXPECT_NEAR(loss_value(Loss::kLogistic, -30.0f, 1.0f), 30.0f, 1e-4);

    // Squared.
    EXPECT_FLOAT_EQ(loss_value(Loss::kSquared, 2.0f, 1.0f), 0.5f);
    EXPECT_FLOAT_EQ(loss_gradient_coefficient(Loss::kSquared, 2.0f, 1.0f),
                    1.0f);

    // Hinge: active inside the margin, zero outside.
    EXPECT_FLOAT_EQ(loss_value(Loss::kHinge, 0.5f, 1.0f), 0.5f);
    EXPECT_FLOAT_EQ(loss_gradient_coefficient(Loss::kHinge, 0.5f, 1.0f),
                    -1.0f);
    EXPECT_FLOAT_EQ(loss_gradient_coefficient(Loss::kHinge, 2.0f, 1.0f),
                    0.0f);
    EXPECT_FLOAT_EQ(loss_value(Loss::kHinge, 2.0f, 1.0f), 0.0f);

    EXPECT_TRUE(loss_correct(Loss::kLogistic, 0.3f, 1.0f));
    EXPECT_FALSE(loss_correct(Loss::kLogistic, -0.3f, 1.0f));
    EXPECT_TRUE(loss_correct(Loss::kSquared, 0.8f, 1.0f));
    EXPECT_FALSE(loss_correct(Loss::kSquared, 0.0f, 1.0f));

    EXPECT_EQ(to_string(Loss::kLogistic), "logistic");
    EXPECT_EQ(to_string(Loss::kSquared), "squared");
    EXPECT_EQ(to_string(Loss::kHinge), "hinge");
}

// ----------------------------------------------- convergence, full + low

class DensePrecisionConvergence
    : public ::testing::TestWithParam<const char*>
{};

TEST_P(DensePrecisionConvergence, ReachesLowLossAndHighAccuracy)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature(GetParam());
    Trainer trainer(cfg);
    const auto metrics = trainer.fit(dense_problem());
    // Initial loss is ln 2 ~ 0.693; a successful run roughly halves it and
    // classifies most examples.
    EXPECT_LT(metrics.final_loss, 0.50) << GetParam();
    EXPECT_GT(metrics.accuracy, 0.78) << GetParam();
    // Loss trace is (weakly) decreasing overall.
    ASSERT_FALSE(metrics.loss_trace.empty());
    EXPECT_LT(metrics.loss_trace.back(), metrics.loss_trace.front());
    EXPECT_GT(metrics.gnps(), 0.0);
    EXPECT_EQ(metrics.numbers_processed,
              static_cast<double>(cfg.epochs) * 2000.0 * 64.0);
}

INSTANTIATE_TEST_SUITE_P(AllTable2Signatures, DensePrecisionConvergence,
                         ::testing::Values("D32fM32f", "D8M8", "D8M16",
                                           "D16M8", "D16M16", "D8M32f",
                                           "D16M32f", "D32fM8", "D32fM16"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

class SparsePrecisionConvergence
    : public ::testing::TestWithParam<const char*>
{};

TEST_P(SparsePrecisionConvergence, ReachesLowLoss)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature(GetParam());
    cfg.epochs = 20;
    Trainer trainer(cfg);
    const auto metrics = trainer.fit(sparse_problem());
    EXPECT_LT(metrics.final_loss, 0.5) << GetParam();
    EXPECT_GT(metrics.accuracy, 0.78) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SparseSignatures, SparsePrecisionConvergence,
                         ::testing::Values("D32fi32M32f", "D8i8M8",
                                           "D8i16M16", "D16i16M8",
                                           "D8i8M32f", "D16i32M16"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

// --------------------------------------------------------------- hogwild

TEST(Hogwild, MultiThreadedConvergesLikeSequential)
{
    TrainerConfig seq = base_config();
    seq.signature = dmgc::parse_signature("D8M8");
    Trainer t1(seq);
    const auto m1 = t1.fit(dense_problem());

    TrainerConfig par = seq;
    par.threads = 4;
    Trainer t4(par);
    const auto m4 = t4.fit(dense_problem());

    EXPECT_LT(m4.final_loss, m1.final_loss + 0.05)
        << "Hogwild! races must not materially hurt convergence";
    EXPECT_GT(m4.accuracy, m1.accuracy - 0.05);
}

TEST(Hogwild, SparseMultiThreaded)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8i16M8");
    cfg.threads = 4;
    cfg.epochs = 20;
    Trainer trainer(cfg);
    const auto m = trainer.fit(sparse_problem());
    EXPECT_LT(m.final_loss, 0.5);
}

// ------------------------------------------------------ rounding effects

TEST(Rounding, UnbiasedBeatsBiasedAtEightBits)
{
    // The signature effect of §5.2/Fig 5a: with an 8-bit model and a small
    // step size, biased rounding stalls (every per-element update is below
    // half a model quantum, so nearest rounding freezes the model at w=0)
    // while unbiased rounding keeps making progress in expectation. The
    // float-dataset signature keeps the coefficient at full resolution so
    // the stall is purely a model-rounding effect.
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D32fM8");
    cfg.step_size = 0.01f;
    cfg.step_decay = 1.0f;
    cfg.epochs = 20;

    cfg.rounding = RoundingStrategy::kBiased;
    Trainer biased(cfg);
    const auto mb = biased.fit(dense_problem());

    cfg.rounding = RoundingStrategy::kSharedXorshift;
    Trainer unbiased(cfg);
    const auto mu = unbiased.fit(dense_problem());

    EXPECT_NEAR(mb.final_loss, std::log(2.0), 1e-3)
        << "biased rounding should freeze the model at w = 0";
    EXPECT_LT(mu.final_loss, mb.final_loss - 0.01)
        << "biased=" << mb.final_loss << " unbiased=" << mu.final_loss;
}

TEST(Rounding, AllUnbiasedStrategiesConvergeSimilarly)
{
    // Fig 5a: Mersenne, fresh XORSHIFT, and shared XORSHIFT rounding have
    // nearly identical statistical efficiency.
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 12;
    double losses[3];
    const RoundingStrategy strategies[3] = {
        RoundingStrategy::kMersennePerWrite,
        RoundingStrategy::kXorshiftPerWrite,
        RoundingStrategy::kSharedXorshift};
    for (int s = 0; s < 3; ++s) {
        cfg.rounding = strategies[s];
        Trainer t(cfg);
        losses[s] = t.fit(dense_problem()).final_loss;
    }
    EXPECT_NEAR(losses[0], losses[1], 0.06);
    EXPECT_NEAR(losses[0], losses[2], 0.06);
    EXPECT_LT(losses[2], 0.50);
}

TEST(Rounding, SharedRefreshPeriodTradesOff)
{
    // Refreshing the shared draw less often must still converge (it stays
    // unbiased per element) — the §5.2 smooth trade-off.
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.rounding = RoundingStrategy::kSharedXorshift;
    cfg.shared_refresh_iters = 16;
    Trainer t(cfg);
    EXPECT_LT(t.fit(dense_problem()).final_loss, 0.56);
}

// ------------------------------------------------------------ mini-batch

TEST(MiniBatch, SmallBatchesMatchPlainSgd)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 15;

    Trainer plain(cfg);
    const auto mp = plain.fit(dense_problem());

    cfg.batch_size = 8;
    cfg.step_size = 0.15f;
    Trainer batched(cfg);
    const auto mb = batched.fit(dense_problem());

    EXPECT_LT(mb.final_loss, mp.final_loss + 0.08);
}

TEST(MiniBatch, VeryLargeBatchDegradesStatisticalEfficiency)
{
    // Fig 6e: with the same number of examples processed, huge batches
    // make fewer model updates and converge more slowly.
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 4;
    Trainer plain(cfg);
    const auto mp = plain.fit(dense_problem());

    cfg.batch_size = 1000;
    Trainer batched(cfg);
    const auto mb = batched.fit(dense_problem());
    EXPECT_GT(mb.final_loss, mp.final_loss);
}

TEST(MiniBatch, SparseEngineRejectsBatching)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8i16M8");
    cfg.batch_size = 4;
    Trainer t(cfg);
    EXPECT_THROW(t.fit(sparse_problem()), std::runtime_error);
}

// ------------------------------------------------------------ G term

TEST(GradientPrecision, G10TrainsLikeFullPrecision)
{
    // Courbariaux et al. [9]: 10-bit multipliers (intermediates) suffice.
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D32fM32fG10");
    Trainer g10(cfg);
    const auto mg = g10.fit(dense_problem());

    cfg.signature = dmgc::parse_signature("D32fM32f");
    Trainer full(cfg);
    const auto mf = full.fit(dense_problem());
    EXPECT_NEAR(mg.final_loss, mf.final_loss, 0.05);
    EXPECT_GT(mg.accuracy, 0.78);
}

TEST(GradientPrecision, VeryCoarseGradientsDegrade)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("G3");
    Trainer coarse(cfg);
    const auto mc = coarse.fit(dense_problem());
    cfg.signature = dmgc::parse_signature("D32fM32f");
    Trainer full(cfg);
    const auto mf = full.fit(dense_problem());
    EXPECT_GT(mc.final_loss, mf.final_loss)
        << "3-bit intermediates must lose something";
}

TEST(GradientPrecision, FloatGTermIsIgnored)
{
    // A G32f term means "no fidelity lost" — identical to no G term.
    TrainerConfig cfg = base_config();
    cfg.epochs = 4;
    cfg.signature = dmgc::parse_signature("D8M8G32f");
    Trainer a(cfg);
    const auto ma = a.fit(dense_problem());
    cfg.signature = dmgc::parse_signature("D8M8");
    Trainer b(cfg);
    const auto mb = b.fit(dense_problem());
    EXPECT_EQ(ma.final_loss, mb.final_loss);
}

TEST(GradientPrecision, RejectsDegenerateWidth)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("G1");
    Trainer t(cfg);
    EXPECT_THROW(t.fit(dense_problem()), std::runtime_error);
}

// ---------------------------------------------------------- other losses

TEST(OtherLosses, HingeSvmTrains)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M16");
    cfg.loss = Loss::kHinge;
    cfg.step_size = 0.3f;
    Trainer t(cfg);
    const auto m = t.fit(dense_problem());
    EXPECT_GT(m.accuracy, 0.75);
}

TEST(OtherLosses, SquaredLossLinearRegression)
{
    // Regress y = w.x directly (labels ±1 still work as targets).
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D16M16");
    cfg.loss = Loss::kSquared;
    cfg.step_size = 0.1f;
    Trainer t(cfg);
    const auto m = t.fit(dense_problem());
    EXPECT_LT(m.final_loss, 0.5); // below the trivial w=0 loss of 0.5
}

// ----------------------------------------------------- kernel impl parity

TEST(ImplParity, ReferenceNaiveAvx2ReachSimilarLoss)
{
    double losses[3];
    const simd::Impl impls[3] = {simd::Impl::kReference, simd::Impl::kNaive,
                                 simd::Impl::kAvx2};
    for (int k = 0; k < 3; ++k) {
        TrainerConfig cfg = base_config();
        cfg.signature = dmgc::parse_signature("D8M8");
        cfg.impl = impls[k];
        cfg.epochs = 10;
        Trainer t(cfg);
        losses[k] = t.fit(dense_problem()).final_loss;
    }
    EXPECT_NEAR(losses[0], losses[2], 1e-9)
        << "reference and AVX2 are bit-identical, so whole training runs "
           "must agree exactly";
    EXPECT_NEAR(losses[0], losses[1], 0.05);
}

// ----------------------------------------------------------- trainer API

TEST(TrainerApi, ModelAccessAndPrediction)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    Trainer t(cfg);
    EXPECT_TRUE(t.model().empty());
    EXPECT_THROW(t.loss(), std::logic_error);
    t.fit(dense_problem());
    const auto w = t.model();
    ASSERT_EQ(w.size(), dense_problem().dim);

    // The float model should predict held-out-style examples consistently
    // with the trainer's own accuracy computation.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < dense_problem().examples; ++i) {
        const float z = predict_margin(w, dense_problem().row(i));
        if ((z >= 0) == (dense_problem().y[i] > 0)) ++correct;
    }
    EXPECT_NEAR(static_cast<double>(correct) / dense_problem().examples,
                t.accuracy(), 0.08);
}

TEST(TrainerApi, MismatchedSparsityIsRejected)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8i8M8");
    Trainer t(cfg);
    EXPECT_THROW(t.fit(dense_problem()), std::runtime_error);

    cfg.signature = dmgc::parse_signature("D8M8");
    Trainer t2(cfg);
    EXPECT_THROW(t2.fit(sparse_problem()), std::runtime_error);
}

TEST(TrainerApi, UnsupportedPrecisionIsRejected)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D4M4");
    Trainer t(cfg);
    EXPECT_THROW(t.fit(dense_problem()), std::runtime_error);
}

TEST(TrainerApi, RoundingStrategyNames)
{
    EXPECT_STREQ(to_string(RoundingStrategy::kBiased), "biased");
    EXPECT_STREQ(to_string(RoundingStrategy::kMersennePerWrite),
                 "mersenne");
    EXPECT_STREQ(to_string(RoundingStrategy::kXorshiftPerWrite),
                 "xorshift");
    EXPECT_STREQ(to_string(RoundingStrategy::kSharedXorshift), "shared");
}

TEST(Shuffle, ShuffledTrainingConvergesAndDiffersFromSequential)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 8;
    Trainer seq(cfg);
    const auto ms = seq.fit(dense_problem());

    cfg.shuffle = true;
    Trainer shuf(cfg);
    const auto mf = shuf.fit(dense_problem());

    EXPECT_LT(mf.final_loss, 0.55) << "shuffled order must still converge";
    EXPECT_NE(seq.model(), shuf.model())
        << "a different visit order must produce a different trajectory";
}

TEST(Shuffle, DeterministicGivenSeed)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.shuffle = true;
    cfg.epochs = 4;
    Trainer a(cfg), b(cfg);
    a.fit(dense_problem());
    b.fit(dense_problem());
    EXPECT_EQ(a.model(), b.model());
}

TEST(Shuffle, SparseEngineSupportsShuffling)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8i16M8");
    cfg.shuffle = true;
    cfg.epochs = 15;
    Trainer t(cfg);
    EXPECT_LT(t.fit(sparse_problem()).final_loss, 0.55);
}

TEST(TrainerApi, DeterministicGivenSeedSingleThread)
{
    TrainerConfig cfg = base_config();
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.epochs = 5;
    Trainer a(cfg), b(cfg);
    const auto ma = a.fit(dense_problem());
    const auto mb = b.fit(dense_problem());
    EXPECT_EQ(ma.final_loss, mb.final_loss);
    EXPECT_EQ(a.model(), b.model());
}

} // namespace
} // namespace buckwild::core
