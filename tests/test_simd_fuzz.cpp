/**
 * @file
 * Randomized property ("fuzz") tests for the kernel stack: for many
 * random seeds, random sizes, random coefficients, and random dither
 * blocks, every vectorized implementation must match the reference
 * contract bit-for-bit on the fixed paths.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "rng/xorshift.h"
#include "simd/dense_avx2.h"
#include "simd/dense_avx512.h"
#include "simd/dense_naive.h"
#include "simd/dense_ref.h"
#include "simd/ops.h"
#include "simd/sparse_kernels.h"
#include "simd/sparse_ops.h"
#include "util/aligned_buffer.h"

namespace buckwild::simd {
namespace {

struct Fuzz
{
    explicit Fuzz(std::uint32_t seed) : gen(seed) {}

    std::size_t
    size()
    {
        return gen() % 600; // covers sub-vector through multi-vector
    }

    template <typename T>
    AlignedBuffer<T>
    values(std::size_t n, int lim)
    {
        AlignedBuffer<T> buf(n);
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = static_cast<T>(
                static_cast<int>(gen() % (2 * lim + 1)) - lim);
        return buf;
    }

    AlignedBuffer<float>
    floats(std::size_t n)
    {
        AlignedBuffer<float> buf(n);
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = rng::to_unit_float(gen()) * 4.0f - 2.0f;
        return buf;
    }

    float
    coefficient(float range)
    {
        return (rng::to_unit_float(gen()) * 2.0f - 1.0f) * range;
    }

    DitherBlock
    dither()
    {
        DitherBlock block;
        for (auto& b : block.bytes) b = static_cast<std::uint8_t>(gen());
        return block;
    }

    rng::Xorshift128 gen;
};

class KernelFuzz : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(KernelFuzz, D8M8DotAndAxpyAllImplsAgree)
{
    Fuzz fuzz(GetParam());
    for (int round = 0; round < 8; ++round) {
        const std::size_t n = fuzz.size();
        const auto x = fuzz.values<std::int8_t>(n, 128);
        auto w_ref = fuzz.values<std::int8_t>(n, 127);
        auto w_avx = w_ref;
        auto w_512 = w_ref;

        ASSERT_EQ(ref::dot_d8m8(x.data(), w_ref.data(), n, 1.0f),
                  avx2::dot_d8m8(x.data(), w_avx.data(), n, 1.0f));
        if (avx512::available()) {
            ASSERT_EQ(ref::dot_d8m8(x.data(), w_ref.data(), n, 1.0f),
                      avx512::dot_d8m8(x.data(), w_512.data(), n, 1.0f));
        }

        const FixedScalar cs = make_scalar_d8m8(fuzz.coefficient(2.0f));
        const DitherBlock d = fuzz.dither();
        ref::axpy_d8m8(w_ref.data(), x.data(), n, cs, d);
        avx2::axpy_d8m8(w_avx.data(), x.data(), n, cs, d);
        avx512::axpy_d8m8(w_512.data(), x.data(), n, cs, d);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(w_ref[i], w_avx[i]) << "avx2 i=" << i << " n=" << n;
            if (avx512::available()) {
                ASSERT_EQ(w_ref[i], w_512[i])
                    << "avx512 i=" << i << " n=" << n;
            }
        }
    }
}

TEST_P(KernelFuzz, MixedWidthPairsAgree)
{
    Fuzz fuzz(GetParam() ^ 0xABCD);
    for (int round = 0; round < 6; ++round) {
        const std::size_t n = fuzz.size();
        const auto x8 = fuzz.values<std::int8_t>(n, 128);
        const auto x16 = fuzz.values<std::int16_t>(n, 32767);
        const DitherBlock d = fuzz.dither();

        { // D16M8
            auto a = fuzz.values<std::int8_t>(n, 127);
            auto b = a;
            const FixedScalar cs =
                make_scalar_d16m8(fuzz.coefficient(0.02f));
            ref::axpy_d16m8(a.data(), x16.data(), n, cs, d);
            avx2::axpy_d16m8(b.data(), x16.data(), n, cs, d);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(a[i], b[i]) << "d16m8 i=" << i;
        }
        { // D8M16
            auto a = fuzz.values<std::int16_t>(n, 32767);
            auto b = a;
            const FixedScalar cs =
                make_scalar_d8m16(fuzz.coefficient(8.0f));
            ref::axpy_d8m16(a.data(), x8.data(), n, cs, d);
            avx2::axpy_d8m16(b.data(), x8.data(), n, cs, d);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(a[i], b[i]) << "d8m16 i=" << i;
        }
        { // D16M16
            auto a = fuzz.values<std::int16_t>(n, 32767);
            auto b = a;
            const FixedScalar cs =
                make_scalar_d16m16(fuzz.coefficient(2.0f));
            ref::axpy_d16m16(a.data(), x16.data(), n, cs, d);
            avx2::axpy_d16m16(b.data(), x16.data(), n, cs, d);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(a[i], b[i]) << "d16m16 i=" << i;
        }
        { // dots
            const auto w8 = fuzz.values<std::int8_t>(n, 127);
            const auto w16 = fuzz.values<std::int16_t>(n, 32767);
            ASSERT_EQ(ref::dot_d8m16(x8.data(), w16.data(), n, 1.0f),
                      avx2::dot_d8m16(x8.data(), w16.data(), n, 1.0f));
            ASSERT_EQ(ref::dot_d16m8(x16.data(), w8.data(), n, 1.0f),
                      avx2::dot_d16m8(x16.data(), w8.data(), n, 1.0f));
            ASSERT_EQ(ref::dot_d16m16(x16.data(), w16.data(), n, 1.0f),
                      avx2::dot_d16m16(x16.data(), w16.data(), n, 1.0f));
        }
    }
}

TEST_P(KernelFuzz, FloatDatasetFixedModelAgree)
{
    Fuzz fuzz(GetParam() ^ 0x1234);
    for (int round = 0; round < 6; ++round) {
        const std::size_t n = fuzz.size();
        const auto xf = fuzz.floats(n);
        const DitherBlock d = fuzz.dither();
        const float cf = fuzz.coefficient(50.0f);
        {
            auto a = fuzz.values<std::int8_t>(n, 127);
            auto b = a;
            ref::axpy_dfm8(a.data(), xf.data(), n, cf, d);
            avx2::axpy_dfm8(b.data(), xf.data(), n, cf, d);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(a[i], b[i]) << "dfm8 i=" << i;
        }
        {
            auto a = fuzz.values<std::int16_t>(n, 32767);
            auto b = a;
            ref::axpy_dfm16(a.data(), xf.data(), n, cf * 100.0f, d);
            avx2::axpy_dfm16(b.data(), xf.data(), n, cf * 100.0f, d);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(a[i], b[i]) << "dfm16 i=" << i;
        }
    }
}

TEST_P(KernelFuzz, SparseAxpyMatchesScalarReplay)
{
    Fuzz fuzz(GetParam() ^ 0x7777);
    constexpr std::size_t kModel = 512;
    for (int round = 0; round < 6; ++round) {
        const std::size_t nnz = fuzz.gen() % 64;
        auto w = fuzz.values<std::int8_t>(kModel, 127);
        auto w_expect = w;
        const auto val = fuzz.values<std::int8_t>(nnz, 127);
        AlignedBuffer<std::uint16_t> idx(nnz);
        for (std::size_t j = 0; j < nnz; ++j)
            idx[j] = static_cast<std::uint16_t>(fuzz.gen() % kModel);
        const FixedScalar cs = make_scalar_d8m8(fuzz.coefficient(1.5f));
        const DitherBlock d = fuzz.dither();

        sparse::axpy(w.data(), val.data(), idx.data(), nnz, cs, 0.0f, d,
                     sparse::IndexMode::kAbsolute);
        // Scalar replay (duplicate indices must apply sequentially).
        for (std::size_t j = 0; j < nnz; ++j)
            w_expect[idx[j]] = ref::update_m8(
                w_expect[idx[j]], val[j], cs, d.dither_fixed(j, cs.shift));
        for (std::size_t k = 0; k < kModel; ++k)
            ASSERT_EQ(w[k], w_expect[k]) << "k=" << k;
    }
}

TEST_P(KernelFuzz, RegistryForcedDispatchMatchesReference)
{
    // Fuzz *through* the registry: each round forces a random Impl (the
    // BUCKWILD_KERNEL_IMPL hook) and checks that the ambient DenseOps
    // dispatch — which re-resolves under the override via the generation
    // counter — matches the explicit reference variant under the same
    // tolerance class the comparator pins.
    Fuzz fuzz(GetParam() ^ 0x5EED);
    using Ops8 = DenseOps<std::int8_t, std::int8_t>;
    using OpsF = DenseOps<float, float>;
    for (int round = 0; round < 8; ++round) {
        const Impl forced =
            kAllImpls[fuzz.gen() % static_cast<std::uint32_t>(kImplCount)];
        ForcedImplGuard guard(forced);
        const Impl served = resolve_impl(forced);
        ASSERT_EQ(best_impl(), served);

        const std::size_t n = fuzz.size();
        const float qx = 1.0f / 64, qm = 1.0f / 64;
        const auto x = fuzz.values<std::int8_t>(n, 128);
        auto w_ref = fuzz.values<std::int8_t>(n, 127);
        auto w_amb = w_ref;

        const float r =
            Ops8::dot(Impl::kReference, x.data(), w_ref.data(), n, qx, qm);
        const float amb = Ops8::dot(x.data(), w_amb.data(), n, qx, qm);
        if (served == Impl::kNaive)
            ASSERT_NEAR(r, amb, std::fabs(r) * 1e-4f + 1e-3f)
                << "impl=" << to_string(forced) << " n=" << n;
        else
            ASSERT_EQ(r, amb)
                << "impl=" << to_string(forced) << " n=" << n;

        const float c = fuzz.coefficient(1.5f);
        const DitherBlock d = fuzz.dither();
        Ops8::axpy(Impl::kReference, w_ref.data(), x.data(), n, c, qx, qm,
                   d);
        Ops8::axpy(w_amb.data(), x.data(), n, c, qx, qm, d);
        for (std::size_t i = 0; i < n; ++i) {
            if (served == Impl::kNaive)
                ASSERT_NEAR(w_ref[i], w_amb[i], 1)
                    << "impl=" << to_string(forced) << " i=" << i;
            else
                ASSERT_EQ(w_ref[i], w_amb[i])
                    << "impl=" << to_string(forced) << " i=" << i;
        }

        // Float path under the same forcing: summation-order tolerance.
        const auto xf = fuzz.floats(n);
        const auto wf = fuzz.floats(n);
        const float rf = OpsF::dot(Impl::kReference, xf.data(), wf.data(),
                                   n, 1.0f, 1.0f);
        ASSERT_NEAR(rf, OpsF::dot(xf.data(), wf.data(), n, 1.0f, 1.0f),
                    1e-4f * (static_cast<float>(n) + 1.0f) +
                        std::fabs(rf) * 1e-4f)
            << "impl=" << to_string(forced) << " n=" << n;
    }
}

TEST_P(KernelFuzz, SparseForcedDispatchMatchesReference)
{
    // The sparse op family through the registry: force a random Impl and
    // check ambient SparseOps dispatch against the explicit reference
    // variant, for both index modes. Dot gets the float summation-order
    // tolerance (the unrolled tier reassociates); AXPY touches each
    // coordinate once here, so per-element agreement is tight.
    Fuzz fuzz(GetParam() ^ 0x5A9Eu);
    register_sparse_kernels();
    using Ops16 = SparseOps<std::uint16_t>;
    constexpr std::size_t kModel = 512;
    for (int round = 0; round < 6; ++round) {
        const Impl forced =
            kAllImpls[fuzz.gen() % static_cast<std::uint32_t>(kImplCount)];
        ForcedImplGuard guard(forced);

        const std::size_t nnz = fuzz.gen() % 96;
        const auto val = fuzz.floats(nnz);
        const auto w = fuzz.floats(kModel);
        // Distinct ascending absolute indices bounded by the model.
        AlignedBuffer<std::uint16_t> idx(nnz);
        const std::size_t gap_cap = nnz > 0
            ? std::max<std::size_t>(1, (kModel - nnz - 1) / (nnz + 1))
            : 1;
        std::size_t cursor = 0;
        for (std::size_t j = 0; j < nnz; ++j) {
            cursor += 1 + fuzz.gen() % gap_cap;
            idx[j] = static_cast<std::uint16_t>(cursor);
        }
        // And the same support as u16 delta gaps.
        AlignedBuffer<std::uint16_t> gaps(nnz);
        for (std::size_t j = 0; j < nnz; ++j)
            gaps[j] = static_cast<std::uint16_t>(
                j == 0 ? idx[0] : idx[j] - idx[j - 1]);

        for (const auto mode : {sparse::IndexMode::kAbsolute,
                                sparse::IndexMode::kDelta}) {
            const std::uint16_t* stream =
                mode == sparse::IndexMode::kAbsolute ? idx.data()
                                                     : gaps.data();
            const float r = Ops16::dot(Impl::kReference, val.data(), stream,
                                       nnz, w.data(), 0.5f, mode);
            const float amb =
                Ops16::dot(val.data(), stream, nnz, w.data(), 0.5f, mode);
            ASSERT_NEAR(r, amb,
                        1e-4f * (static_cast<float>(nnz) + 1.0f) +
                            std::fabs(r) * 1e-4f + 1e-3f)
                << "impl=" << to_string(forced) << " nnz=" << nnz;

            auto w_ref = w;
            auto w_amb = w;
            const float c = fuzz.coefficient(1.5f);
            Ops16::axpy(Impl::kReference, w_ref.data(), val.data(), stream,
                        nnz, c, mode);
            Ops16::axpy(w_amb.data(), val.data(), stream, nnz, c, mode);
            for (std::size_t k = 0; k < kModel; ++k)
                ASSERT_NEAR(w_ref[k], w_amb[k], 1e-5f)
                    << "impl=" << to_string(forced) << " k=" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Range<std::uint32_t>(1, 17),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

} // namespace
} // namespace buckwild::simd
