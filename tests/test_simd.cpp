/**
 * @file
 * Tests for the dense and sparse kernels (§5.1).
 *
 * The central property — every registered variant of every Table-2
 * (D, M) dot/AXPY pair matches the reference contract (bit-identical on
 * the fixed paths, within summation-order tolerance on the float paths)
 * — is checked by the KernelComparator harness (kernel_comparator.h),
 * which enumerates the KernelLibrary instead of hand-picked size lists:
 * all dims 0..129, large odd sizes, and unaligned offsets, for whatever
 * variants this host can run. What remains here are the edge-semantics
 * pins the sweep can't express: instruction-level overflow corners,
 * rounding/saturation semantics, the sparse kernels, and dispatch.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "kernel_comparator.h"
#include "rng/avx2_xorshift.h"
#include "rng/xorshift.h"
#include "simd/dense_avx2.h"
#include "simd/dense_avx512.h"
#include "simd/dense_ref.h"
#include "simd/ops.h"
#include "simd/sparse_kernels.h"
#include "test_common.h"
#include "util/aligned_buffer.h"

namespace buckwild::simd {
namespace {

using rng::Xorshift128;
using testutil::comparator_fixed;
using testutil::comparator_floats;

// ------------------------------------------------ registry-driven sweeps

TEST(KernelComparator, D8M8)
{
    testutil::compare_dense_pair<std::int8_t, std::int8_t>();
}
TEST(KernelComparator, D16M8)
{
    testutil::compare_dense_pair<std::int16_t, std::int8_t>();
}
TEST(KernelComparator, D8M16)
{
    testutil::compare_dense_pair<std::int8_t, std::int16_t>();
}
TEST(KernelComparator, D16M16)
{
    testutil::compare_dense_pair<std::int16_t, std::int16_t>();
}
TEST(KernelComparator, DFM8)
{
    testutil::compare_dense_pair<float, std::int8_t>();
}
TEST(KernelComparator, DFM16)
{
    testutil::compare_dense_pair<float, std::int16_t>();
}
TEST(KernelComparator, D8MF)
{
    testutil::compare_dense_pair<std::int8_t, float>();
}
TEST(KernelComparator, D16MF)
{
    testutil::compare_dense_pair<std::int16_t, float>();
}
TEST(KernelComparator, DFMF)
{
    testutil::compare_dense_pair<float, float>();
}

// Sparse dot/AXPY, per index rep: every registered variant against the
// reference, absolute + delta streams with rep-edge gap padding.
TEST(KernelComparator, SparseI8)
{
    testutil::compare_sparse_index_rep<std::uint8_t>();
}
TEST(KernelComparator, SparseI16)
{
    testutil::compare_sparse_index_rep<std::uint16_t>();
}
TEST(KernelComparator, SparseI32)
{
    testutil::compare_sparse_index_rep<std::uint32_t>();
}

// --------------------------------------------- instruction-level corners

TEST(DotParity, D8M8ExtremeValuesNoMaddubsOverflow)
{
    // The vpmaddubsw sign-trick edge: x = -128 (|x| = 128 unsigned) against
    // w = +-127 pairs — the maximum-magnitude pair sums.
    constexpr std::size_t kN = 64;
    AlignedBuffer<std::int8_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        x[i] = -128;
        w[i] = (i % 2 == 0) ? 127 : -127;
    }
    const float r = ref::dot_d8m8(x.data(), w.data(), kN, 1.0f);
    const float a = avx2::dot_d8m8(x.data(), w.data(), kN, 1.0f);
    EXPECT_EQ(r, a);
    EXPECT_EQ(r, 0.0f); // alternating signs cancel
    // All-same-sign version: no cancellation, maximal accumulation.
    for (std::size_t i = 0; i < kN; ++i) w[i] = 127;
    EXPECT_EQ(ref::dot_d8m8(x.data(), w.data(), kN, 1.0f),
              avx2::dot_d8m8(x.data(), w.data(), kN, 1.0f));
}

TEST(DotParity, D16M16NearOverflowPairs)
{
    // Pairs at the vpmaddwd edge: 32767 * 32767 * 2 per int32 lane.
    constexpr std::size_t kN = 128;
    AlignedBuffer<std::int16_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        x[i] = 32767;
        w[i] = 32767;
    }
    EXPECT_EQ(ref::dot_d16m16(x.data(), w.data(), kN, 1.0f),
              avx2::dot_d16m16(x.data(), w.data(), kN, 1.0f));
}

TEST(DotParity, LongVectorInt32AccumulatorFlush)
{
    // Exercises the periodic int32 -> int64 flush on a long all-positive
    // vector, where a missing flush would wrap negative.
    constexpr std::size_t kN = 1 << 20;
    AlignedBuffer<std::int8_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        x[i] = 127;
        w[i] = 127;
    }
    const double expect = 127.0 * 127.0 * kN;
    EXPECT_EQ(avx2::dot_d8m8(x.data(), w.data(), kN, 1.0f),
              static_cast<float>(expect));
}

// -------------------------------------------------------- AXPY semantics

TEST(AxpySemantics, BiasedRoundingIsRoundHalfUp)
{
    // c = 1.0 in quanta, x = 1 -> delta exactly 1; x = 0 -> 0.
    AlignedBuffer<std::int8_t> w(4), x(4);
    x[0] = 0; x[1] = 1; x[2] = -1; x[3] = 100;
    const FixedScalar cs = make_scalar_d8m8(1.0f);
    ref::axpy_d8m8(w.data(), x.data(), 4, cs, biased_fixed(kShiftD8M8));
    EXPECT_EQ(w[0], 0);
    EXPECT_EQ(w[1], 1);
    EXPECT_EQ(w[2], -1);
    EXPECT_EQ(w[3], 100);
}

TEST(AxpySemantics, HalfQuantumRoundsUpWithBiasedDither)
{
    // c = 0.5: mult = 64, (64*1 + 64) >> 7 = 1 (half rounds up);
    // x = -1: (-64 + 64) >> 7 = 0.
    AlignedBuffer<std::int8_t> w(2), x(2);
    x[0] = 1; x[1] = -1;
    ref::axpy_d8m8(w.data(), x.data(), 2, make_scalar_d8m8(0.5f),
                   biased_fixed(kShiftD8M8));
    EXPECT_EQ(w[0], 1);
    EXPECT_EQ(w[1], 0);
}

TEST(AxpySemantics, SaturatesSymmetrically)
{
    AlignedBuffer<std::int8_t> w(64), x(64);
    for (std::size_t i = 0; i < 64; ++i) {
        w[i] = (i % 2 == 0) ? 127 : -127;
        x[i] = (i % 2 == 0) ? 127 : -127;
    }
    avx2::axpy_d8m8(w.data(), x.data(), 64, make_scalar_d8m8(1.9f),
                    biased_fixed(kShiftD8M8));
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(w[i], (i % 2 == 0) ? 127 : -127);
}

TEST(AxpySemantics, UnbiasedMeanUpdateIsExact)
{
    // Statistical property (Eq. 4): averaging the update over many random
    // dither blocks recovers the real-valued delta.
    constexpr int kTrials = 4000;
    constexpr float kC = 0.3f; // delta = 0.3 quanta per unit x
    rng::Avx2Xorshift128Plus gen(123);
    double sum = 0.0;
    AlignedBuffer<std::int8_t> x(32);
    for (std::size_t i = 0; i < 32; ++i) x[i] = 1;
    for (int t = 0; t < kTrials; ++t) {
        DitherBlock d;
        gen.fill(reinterpret_cast<std::uint32_t*>(d.bytes), 8);
        AlignedBuffer<std::int8_t> w(32);
        avx2::axpy_d8m8(w.data(), x.data(), 32, make_scalar_d8m8(kC), d);
        for (std::size_t i = 0; i < 32; ++i) sum += w[i];
    }
    const double mean = sum / (kTrials * 32.0);
    const double expected =
        static_cast<double>(make_scalar_d8m8(kC).mult) / 128.0;
    EXPECT_NEAR(mean, expected, 0.01);
}

TEST(FixedScalarTests, QuantizationAndClamping)
{
    EXPECT_EQ(make_scalar_d8m8(0.5f).mult, 64);
    EXPECT_EQ(make_scalar_d8m8(0.5f).shift, kShiftD8M8);
    EXPECT_EQ(make_scalar_d8m8(100.0f).mult, kMultLimitM8);
    EXPECT_EQ(make_scalar_d8m8(-100.0f).mult, -kMultLimitM8);
    EXPECT_NEAR(make_scalar_d8m8(0.37f).value(), 0.37f, 1.0f / 128.0f);
    EXPECT_EQ(make_scalar_d8m16(0.5f).mult, 256);
    EXPECT_EQ(make_scalar_d8m16(100.0f).mult, kMultLimit32);
    EXPECT_EQ(make_scalar_d16m16(0.5f).mult, 8192);
    EXPECT_NEAR(make_scalar_d16m16(-1.7f).value(), -1.7f, 1.0f / 16384.0f);
    // The D16 -> M8 path resolves tiny coefficients (the eta*qx/qm ~
    // eta/256 regime) instead of rounding them to zero.
    EXPECT_EQ(make_scalar_d16m8(1.0f / 1024.0f).mult, 1024);
    EXPECT_NEAR(make_scalar_d16m8(2.9e-4f).value(), 2.9e-4f, 1e-6f);
}

TEST(DitherBlocks, BiasedBlocksEncodeHalfQuantum)
{
    const DitherBlock unit = biased_unit();
    for (int shift : {kShiftD8M8, kShiftD8M16, kShiftD16M16, kShiftD16M8}) {
        const DitherBlock b = biased_fixed(shift);
        for (std::size_t i = 0; i < 40; ++i)
            EXPECT_EQ(b.dither_fixed(i, shift),
                      1u << (shift - 1))
                << "shift " << shift << " i " << i;
    }
    for (std::size_t i = 0; i < 40; ++i)
        EXPECT_EQ(unit.dither_unit(i), 0.5f);
}

// ---------------------------------------------------------------- sparse

TEST(Sparse, DotAbsoluteAndDeltaAgree)
{
    // Same logical vector twice: absolute u32 indices, and u8 delta gaps
    // with zero-valued padding entries where a gap exceeds 255 (exactly
    // what the dataset builder emits).
    constexpr std::size_t kModel = 2000;
    const auto w = comparator_fixed<std::int8_t>(kModel, 101, 127);
    const std::vector<std::int8_t> abs_val = {5, -3, 7, 100, -128, 22};
    const std::vector<std::uint32_t> abs_idx = {3, 200, 230, 400, 555, 1999};

    std::vector<std::int8_t> delta_val;
    std::vector<std::uint8_t> delta_idx;
    std::size_t prev = 0;
    for (std::size_t j = 0; j < abs_idx.size(); ++j) {
        std::size_t gap = abs_idx[j] - prev;
        while (gap > 255) { // zero padding entry
            delta_idx.push_back(255);
            delta_val.push_back(0);
            gap -= 255;
        }
        delta_idx.push_back(static_cast<std::uint8_t>(gap));
        delta_val.push_back(abs_val[j]);
        prev = abs_idx[j];
    }
    ASSERT_GT(delta_idx.size(), abs_idx.size()); // the 555->1999 gap split

    const float a = sparse::dot(abs_val.data(), abs_idx.data(),
                                abs_val.size(), w.data(), 0.5f,
                                sparse::IndexMode::kAbsolute);
    const float d = sparse::dot(delta_val.data(), delta_idx.data(),
                                delta_val.size(), w.data(), 0.5f,
                                sparse::IndexMode::kDelta);
    EXPECT_EQ(a, d);
}

TEST(Sparse, DotMatchesDenseOnExpandedVector)
{
    constexpr std::size_t kModel = 512;
    const auto w = comparator_fixed<std::int16_t>(kModel, 102, 32767);
    std::vector<std::int8_t> val;
    std::vector<std::uint16_t> idx;
    AlignedBuffer<std::int8_t> dense_x(kModel);
    Xorshift128 gen(103);
    for (std::size_t k = 0; k < kModel; k += 1 + gen() % 37) {
        const auto v = static_cast<std::int8_t>(
            static_cast<int>(gen() % 255) - 127);
        val.push_back(v);
        idx.push_back(static_cast<std::uint16_t>(k));
        dense_x[k] = v;
    }
    const float s = 1.0f / 1024.0f;
    const float sp = sparse::dot(val.data(), idx.data(), val.size(),
                                 w.data(), s, sparse::IndexMode::kAbsolute);
    const float dn = ref::dot_d8m16(dense_x.data(), w.data(), kModel, s);
    EXPECT_EQ(sp, dn);
    const float un = sparse::dot_unrolled(val.data(), idx.data(), val.size(),
                                          w.data(), s);
    EXPECT_EQ(sp, un);
}

TEST(Sparse, AxpyMatchesDenseUpdateOnTouchedCoordinates)
{
    constexpr std::size_t kModel = 300;
    auto w_sparse = comparator_fixed<std::int8_t>(kModel, 104, 127);
    auto w_before = w_sparse;
    std::vector<std::int8_t> val = {10, -20, 30, 40};
    std::vector<std::uint16_t> idx = {7, 70, 170, 299};
    const FixedScalar cs = make_scalar_d8m8(0.8f);
    const DitherBlock d = biased_fixed(kShiftD8M8);
    sparse::axpy(w_sparse.data(), val.data(), idx.data(), val.size(), cs,
                 0.0f, d, sparse::IndexMode::kAbsolute);
    for (std::size_t k = 0, j = 0; k < kModel; ++k) {
        if (j < idx.size() && idx[j] == k) {
            EXPECT_EQ(w_sparse[k],
                      ref::update_m8(w_before[k], val[j], cs,
                                     d.dither_fixed(j, cs.shift)))
                << k;
            ++j;
        } else {
            EXPECT_EQ(w_sparse[k], w_before[k]) << k;
        }
    }
}

TEST(Sparse, AxpyFloatModelAndFloatValues)
{
    constexpr std::size_t kModel = 100;
    AlignedBuffer<float> w(kModel);
    std::vector<float> val = {0.5f, -0.25f};
    std::vector<std::uint8_t> idx = {10, 22}; // gaps: coords 10 and 32
    sparse::axpy(w.data(), val.data(), idx.data(), val.size(), FixedScalar{},
                 2.0f, biased_unit(), sparse::IndexMode::kDelta);
    EXPECT_FLOAT_EQ(w[10], 1.0f);
    EXPECT_FLOAT_EQ(w[32], -0.5f);
    for (std::size_t k = 0; k < kModel; ++k) {
        if (k != 10 && k != 32) { EXPECT_EQ(w[k], 0.0f); }
    }
}

TEST(Sparse, SixteenBitModelAxpyDeltaMode)
{
    AlignedBuffer<std::int16_t> w(64);
    std::vector<std::int16_t> val = {1000, -1000, 500};
    std::vector<std::uint8_t> gaps = {5, 10, 10}; // coords 5, 15, 25
    const FixedScalar cs = make_scalar_d16m16(1.0f);
    sparse::axpy(w.data(), val.data(), gaps.data(), val.size(), cs, 0.0f,
                 biased_fixed(kShiftD16M16), sparse::IndexMode::kDelta);
    EXPECT_EQ(w[5], 1000);
    EXPECT_EQ(w[15], -1000);
    EXPECT_EQ(w[25], 500);
}

TEST(Sparse, GatherDotMatchesScalar)
{
    // nnz sweeps the comparator's dimension grid (the gather kernel's
    // lane count is 8, so 0..129 covers every tail shape many times).
    constexpr std::size_t kModel = 4096;
    AlignedBuffer<float> w = comparator_floats(kModel, 301);
    for (std::size_t nnz : testutil::comparator_dims()) {
        AlignedBuffer<std::int8_t> val = comparator_fixed<std::int8_t>(
            nnz, 302 + static_cast<std::uint32_t>(nnz), 127);
        AlignedBuffer<std::uint32_t> idx(nnz);
        Xorshift128 gen(303);
        for (std::size_t j = 0; j < nnz; ++j)
            idx[j] = gen() % kModel;
        const float scalar =
            sparse::dot(val.data(), idx.data(), nnz, w.data(), 0.01f,
                        sparse::IndexMode::kAbsolute);
        const float gather = sparse::dot_gather_d8mf(
            val.data(), idx.data(), nnz, w.data(), 0.01f);
        EXPECT_NEAR(scalar, gather,
                    std::fabs(scalar) * 1e-4f + 1e-3f)
            << "nnz=" << nnz;
    }
}

// -------------------------------------------------------------- dispatch

TEST(Ops, DispatchProducesConsistentResults)
{
    constexpr std::size_t kN = 200;
    const auto x = comparator_fixed<std::int8_t>(kN, 105, 127);
    const auto w = comparator_fixed<std::int8_t>(kN, 106, 127);
    const float qx = 1.0f / 64, qm = 1.0f / 64;
    const float r = DenseOps<std::int8_t, std::int8_t>::dot(
        Impl::kReference, x.data(), w.data(), kN, qx, qm);
    const float a = DenseOps<std::int8_t, std::int8_t>::dot(
        Impl::kAvx2, x.data(), w.data(), kN, qx, qm);
    const float nv = DenseOps<std::int8_t, std::int8_t>::dot(
        Impl::kNaive, x.data(), w.data(), kN, qx, qm);
    EXPECT_EQ(r, a);
    EXPECT_NEAR(r, nv, std::fabs(r) * 1e-4f + 1e-3f);
}

TEST(Ops, AxpyDispatchAppliesRealValuedCoefficient)
{
    constexpr std::size_t kN = 64;
    AlignedBuffer<std::int8_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) x[i] = 64; // x real value = 1.0
    const float qx = 1.0f / 64, qm = 1.0f / 64;
    // c = 0.25 real: delta per element = 0.25/qm = 16 quanta.
    DenseOps<std::int8_t, std::int8_t>::axpy(Impl::kAvx2, w.data(), x.data(),
                                             kN, 0.25f, qx, qm,
                                             biased_fixed(kShiftD8M8));
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(w[i], 16);
}

TEST(Ops, Names)
{
    EXPECT_STREQ(to_string(Impl::kReference), "reference");
    EXPECT_STREQ(to_string(Impl::kNaive), "naive");
    EXPECT_STREQ(to_string(Impl::kAvx2), "avx2");
    EXPECT_STREQ(to_string(Impl::kFma), "fma");
    EXPECT_STREQ(to_string(Impl::kAvx512), "avx512");
    // best_impl() honors the override first (the forced-impl CI matrix
    // runs this suite under BUCKWILD_KERNEL_IMPL); otherwise it is the
    // fastest tier this build + host supports.
    if (const auto forced = forced_impl())
        EXPECT_EQ(best_impl(), resolve_impl(*forced));
    else if (impl_supported(Impl::kAvx512))
        EXPECT_EQ(best_impl(), Impl::kAvx512);
    else if (impl_supported(Impl::kFma))
        EXPECT_EQ(best_impl(), Impl::kFma);
    else if (impl_supported(Impl::kAvx2))
        EXPECT_EQ(best_impl(), Impl::kAvx2);
    else
        EXPECT_EQ(best_impl(), Impl::kReference);
}

// ------------------------------------------------------------- AVX-512

TEST(Avx512, DotD8M8LongVectorFlush)
{
    if (!avx512::available()) GTEST_SKIP() << "no AVX-512 on this CPU";
    constexpr std::size_t kN = 1 << 20;
    AlignedBuffer<std::int8_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        x[i] = 127;
        w[i] = 127;
    }
    EXPECT_EQ(avx512::dot_d8m8(x.data(), w.data(), kN, 1.0f),
              static_cast<float>(127.0 * 127.0 * kN));
}

TEST(Avx512, TrainerRunsAtAvx512)
{
    if (!avx512::available()) GTEST_SKIP() << "no AVX-512 on this CPU";
    // End-to-end: a D8M8 training run at kAvx512 must be bit-identical to
    // the reference implementation (the native 512-bit paths share the
    // exact integer contract).
    // Covered at engine level in test_core (ImplParity); here we check
    // the forwarding pairs dispatch without error.
    AlignedBuffer<std::int16_t> w(64);
    AlignedBuffer<std::int8_t> x(64);
    DenseOps<std::int8_t, std::int16_t>::axpy(
        Impl::kAvx512, w.data(), x.data(), 64, 0.1f, 0.01f, 0.01f,
        biased_fixed(kShiftD8M16));
    SUCCEED();
}

} // namespace
} // namespace buckwild::simd
