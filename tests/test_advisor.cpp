/**
 * @file
 * Tests for the DMGC advisor: regime classification, best-signature
 * selection, and the Table-3 rule logic.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dmgc/advisor.h"

namespace buckwild::dmgc {
namespace {

bool
recommends(const Advice& advice, const std::string& needle)
{
    for (const auto& r : advice.recommendations)
        if (r.action.find(needle) != std::string::npos) return true;
    return false;
}

TEST(Advisor, SmallModelsAreCommunicationBound)
{
    AdvisorQuery q;
    q.model_size = 1 << 10;
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_EQ(a.regime, Regime::kCommunicationBound);
    EXPECT_TRUE(recommends(a, "prefetcher"));
    EXPECT_TRUE(recommends(a, "mini-batches"));
    EXPECT_TRUE(recommends(a, "obstinate"));
    EXPECT_EQ(to_string(a.regime), "communication-bound");
}

TEST(Advisor, LargeModelsAreBandwidthBound)
{
    AdvisorQuery q;
    q.model_size = 1 << 22;
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_EQ(a.regime, Regime::kBandwidthBound);
    EXPECT_FALSE(recommends(a, "mini-batches"));
    EXPECT_TRUE(recommends(a, "Keep the hardware prefetcher"));
    EXPECT_NEAR(a.parallel_fraction,
                0.89 - 22.0 / std::sqrt(1 << 22), 1e-9);
}

TEST(Advisor, SuggestsLowerPrecisionWhenAvailable)
{
    AdvisorQuery q;
    q.signature = Signature::dense_hogwild();
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_EQ(a.best_signature, Signature::dense_fixed(8, 8));
    EXPECT_NEAR(a.best_speedup, 3.339 / 0.936, 1e-6);
    EXPECT_TRUE(recommends(a, "Lower precision to D8M8"));
}

TEST(Advisor, AlreadyOptimalDenseSignature)
{
    AdvisorQuery q;
    q.signature = Signature::dense_fixed(8, 8);
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_EQ(a.best_signature, q.signature);
    EXPECT_DOUBLE_EQ(a.best_speedup, 1.0);
    EXPECT_FALSE(recommends(a, "Lower precision"));
}

TEST(Advisor, SparseBestIsAnM8Scheme)
{
    AdvisorQuery q;
    q.signature = Signature::sparse_hogwild();
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_TRUE(a.best_signature.sparse);
    ASSERT_FALSE(a.best_signature.model.is_float);
    EXPECT_EQ(a.best_signature.model.bits, 8);
    EXPECT_GT(a.best_speedup, 1.5);
}

TEST(Advisor, BiasedRoundingAtEightBitsGetsAWarning)
{
    AdvisorQuery q;
    q.signature = Signature::dense_fixed(8, 8);
    q.unbiased_rounding = false;
    const auto a = advise(q, PerfModel::paper_model());
    EXPECT_TRUE(recommends(a, "unbiased rounding"));
    EXPECT_FALSE(recommends(a, "kSharedXorshift"));

    q.unbiased_rounding = true;
    const auto b = advise(q, PerfModel::paper_model());
    EXPECT_TRUE(recommends(b, "kSharedXorshift"));
}

TEST(Advisor, PredictionMatchesPerfModel)
{
    AdvisorQuery q;
    q.model_size = 1 << 16;
    q.threads = 18;
    const auto model = PerfModel::paper_model();
    const auto a = advise(q, model);
    EXPECT_DOUBLE_EQ(a.predicted_gnps,
                     model.predict_gnps(q.signature, 18, 1 << 16));
}

TEST(Advisor, RejectsBadQueries)
{
    AdvisorQuery q;
    q.threads = 0;
    EXPECT_THROW(advise(q, PerfModel::paper_model()), std::runtime_error);
    q = AdvisorQuery{};
    q.signature = Signature::dense_fixed(4, 4); // not calibrated
    EXPECT_THROW(advise(q, PerfModel::paper_model()), std::runtime_error);
}

} // namespace
} // namespace buckwild::dmgc
