/**
 * @file
 * Tests for the networking tier: net/ socket + frame primitives, the
 * ps/wire.h message serialization (with byte-level goldens pinning the
 * wire format), the CsQ (QSGD) codec, and the SocketTransport fabric up
 * to a full multi-endpoint cluster over loopback TCP.
 *
 * The golden vectors here are the cross-process contract: a payload a
 * worker encodes in one process must decode bit-identically in a shard
 * process built from the same source. Change the wire format and these
 * tests fail by design — bump them consciously.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "net/net.h"
#include "obs/registry.h"
#include "obs/tracectx.h"
#include "ps/ps.h"
#include "rng/xorshift.h"
#include "test_common.h"
#include "util/thread_pool.h"

namespace buckwild {
namespace {

// ======================================================== NetSocket

TEST(NetSocket, ParsesAddresses)
{
    const net::Address a = net::parse_address("127.0.0.1:7001");
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 7001);
    EXPECT_EQ(a.to_string(), "127.0.0.1:7001");
    const net::Address b = net::parse_address(":9090"); // empty host
    EXPECT_EQ(b.host, "127.0.0.1");
    EXPECT_EQ(b.port, 9090);
    EXPECT_THROW(net::parse_address("no-port"), std::runtime_error);
    EXPECT_THROW(net::parse_address("h:notaport"), std::runtime_error);
    EXPECT_THROW(net::parse_address("h:65536"), std::runtime_error);
}

TEST(NetSocket, ListenConnectRoundTrip)
{
    std::uint16_t port = 0;
    std::string error;
    net::Fd listener = net::listen_tcp("127.0.0.1", 0, 8, &port, &error);
    ASSERT_TRUE(listener.valid()) << error;
    ASSERT_GT(port, 0);
    EXPECT_EQ(net::local_port(listener.get()), port);

    net::Fd client = net::connect_tcp({"127.0.0.1", port},
                                      std::chrono::milliseconds(2000),
                                      &error);
    ASSERT_TRUE(client.valid()) << error;
    net::Fd server = net::accept_client(listener.get(), 2000);
    ASSERT_TRUE(server.valid());

    const char ping[] = "ping!";
    ASSERT_TRUE(net::write_full(client.get(), ping, sizeof(ping)));
    char buf[sizeof(ping)] = {};
    ASSERT_TRUE(net::read_full(server.get(), buf, sizeof(ping)));
    EXPECT_STREQ(buf, ping);
}

TEST(NetSocket, ConnectTimesOutAgainstNobody)
{
    // A port with no listener: bind one to reserve it, close it, then
    // dial it with a short deadline.
    std::uint16_t port = 0;
    {
        net::Fd reserved = net::listen_tcp("127.0.0.1", 0, 1, &port, nullptr);
        ASSERT_TRUE(reserved.valid());
    }
    std::string error;
    net::Fd fd = net::connect_tcp({"127.0.0.1", port},
                                  std::chrono::milliseconds(50), &error);
    EXPECT_FALSE(fd.valid());
    EXPECT_FALSE(error.empty());
}

TEST(NetSocket, AcceptTimesOutWithoutClient)
{
    net::Fd listener = net::listen_tcp("127.0.0.1", 0, 8, nullptr, nullptr);
    ASSERT_TRUE(listener.valid());
    net::Fd none = net::accept_client(listener.get(), /*timeout_ms=*/20);
    EXPECT_FALSE(none.valid());
}

// ========================================================= NetFrame

/// A connected local socket pair for framing tests.
struct SocketPair
{
    net::Fd a, b;
    SocketPair()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = net::Fd(fds[0]);
        b = net::Fd(fds[1]);
    }
};

TEST(NetFrame, RoundTripsPayloads)
{
    SocketPair pair;
    for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                   std::size_t{7}, std::size_t{4096}}) {
        std::vector<std::uint8_t> payload(size);
        for (std::size_t i = 0; i < size; ++i)
            payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
        ASSERT_TRUE(
            net::write_frame(pair.a.get(), payload.data(), payload.size()));
        std::vector<std::uint8_t> out;
        ASSERT_EQ(net::read_frame(pair.b.get(), out,
                                  net::kDefaultMaxFrameBytes),
                  net::FrameResult::kOk);
        EXPECT_EQ(out, payload);
    }
}

TEST(NetFrame, SurvivesPartialDelivery)
{
    // The sender trickles the frame byte by byte — header split, payload
    // split — and the reader's exact-count loops must reassemble it.
    SocketPair pair;
    std::vector<std::uint8_t> payload(97);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);

    std::vector<std::uint8_t> frame;
    {
        // Build the exact wire image via a scratch socketpair.
        SocketPair scratch;
        ASSERT_TRUE(net::write_frame(scratch.a.get(), payload.data(),
                                     payload.size()));
        frame.resize(net::kFrameHeaderBytes + payload.size());
        ASSERT_TRUE(net::read_full(scratch.b.get(), frame.data(),
                                  frame.size()));
    }

    std::thread writer([&] {
        for (const std::uint8_t byte : frame) {
            ASSERT_TRUE(net::write_full(pair.a.get(), &byte, 1));
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });
    std::vector<std::uint8_t> out;
    EXPECT_EQ(net::read_frame(pair.b.get(), out, net::kDefaultMaxFrameBytes),
              net::FrameResult::kOk);
    EXPECT_EQ(out, payload);
    writer.join();
}

TEST(NetFrame, RejectsBadMagicAndOversizedBeforeAllocating)
{
    SocketPair pair;
    // Bad magic.
    const std::uint8_t junk[8] = {0xDE, 0xAD, 0xBE, 0xEF, 1, 0, 0, 0};
    ASSERT_TRUE(net::write_full(pair.a.get(), junk, sizeof(junk)));
    std::vector<std::uint8_t> out;
    EXPECT_EQ(net::read_frame(pair.b.get(), out, net::kDefaultMaxFrameBytes),
              net::FrameResult::kBadMagic);

    // Good magic, absurd length: rejected by the cap, not allocated.
    SocketPair fresh;
    std::uint8_t header[8];
    const std::uint32_t magic = net::kFrameMagic;
    const std::uint32_t huge = 0x7FFFFFFFu;
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &huge, 4);
    ASSERT_TRUE(net::write_full(fresh.a.get(), header, sizeof(header)));
    EXPECT_EQ(net::read_frame(fresh.b.get(), out, /*max_frame_bytes=*/1024),
              net::FrameResult::kTooLarge);
}

TEST(NetFrame, DistinguishesCleanCloseFromMidFrameEof)
{
    // Peer closes between frames: clean kClosed.
    {
        SocketPair pair;
        pair.a.reset();
        std::vector<std::uint8_t> out;
        EXPECT_EQ(net::read_frame(pair.b.get(), out,
                                  net::kDefaultMaxFrameBytes),
                  net::FrameResult::kClosed);
    }
    // Peer dies mid-header: kError (a desynced stream, not a shutdown).
    {
        SocketPair pair;
        const std::uint8_t partial[3] = {0x50, 0x46, 0x57};
        ASSERT_TRUE(net::write_full(pair.a.get(), partial, sizeof(partial)));
        pair.a.reset();
        std::vector<std::uint8_t> out;
        EXPECT_EQ(net::read_frame(pair.b.get(), out,
                                  net::kDefaultMaxFrameBytes),
                  net::FrameResult::kError);
    }
}

// ========================================================== NetWire

using Message = ps::Message;

Message
sample_push()
{
    ps::Message m;
    m.kind = ps::Message::Kind::kPush;
    m.sender = 3;
    m.token = 0xABCDEF0123456789ull;
    m.worker = 1;
    m.clock = 42;
    m.version = 7;
    std::vector<float> g = {0.5f, -1.25f, 3.0f, -0.125f, 2.0f};
    std::vector<float> residual(g.size(), 0.0f);
    rng::Xorshift128Plus rng(11);
    m.gradient = ps::encode_gradient(g.data(), g.size(),
                                     ps::Codec::qsgd(4), residual.data(),
                                     &rng);
    return m;
}

TEST(NetWire, MessageRoundTripsEveryField)
{
    Message m = sample_push();
    m.stats = {1.5, -2.5, 1e9};
    m.weights = {0.25f, -0.75f};
    m.accepted = false;
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    EXPECT_EQ(bytes.size(), ps::serialized_bytes(m));

    Message out;
    ASSERT_TRUE(ps::deserialize_message(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out.kind, m.kind);
    EXPECT_EQ(out.sender, m.sender);
    EXPECT_EQ(out.token, m.token);
    EXPECT_EQ(out.worker, m.worker);
    EXPECT_EQ(out.clock, m.clock);
    EXPECT_EQ(out.version, m.version);
    EXPECT_EQ(out.accepted, m.accepted);
    EXPECT_EQ(out.gradient.kind, m.gradient.kind);
    EXPECT_EQ(out.gradient.bits, m.gradient.bits);
    EXPECT_EQ(out.gradient.count, m.gradient.count);
    EXPECT_EQ(out.gradient.scale, m.gradient.scale);
    EXPECT_EQ(out.gradient.norms, m.gradient.norms);
    EXPECT_EQ(out.gradient.payload, m.gradient.payload);
    EXPECT_EQ(out.weights, m.weights);
    EXPECT_EQ(out.stats, m.stats);

    // Cross-"process" bit identity: the receiver's decode equals the
    // sender's (same payload bytes, same arithmetic).
    EXPECT_EQ(ps::decode_gradient(out.gradient),
              ps::decode_gradient(m.gradient));
}

TEST(NetWire, GoldenAckBytes)
{
    // The fixed-header golden: pins offsets, widths, and endianness.
    Message m;
    m.kind = Message::Kind::kAck;
    m.accepted = true;
    m.sender = 2;
    m.worker = 3;
    m.token = 0x0102030405060708ull;
    m.clock = 9;
    m.version = 10;
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    const std::vector<std::uint8_t> golden = {
        1, 1, 0, 32,                      // kind=kAck, accepted, Cs32 codec
        2, 0, 0, 0,                       // sender
        3, 0, 0, 0,                       // worker
        8, 7, 6, 5, 4, 3, 2, 1,           // token (LE)
        9, 0, 0, 0, 0, 0, 0, 0,           // clock
        10, 0, 0, 0, 0, 0, 0, 0,          // version
        0, 0, 0, 0,                       // gradient count
        0, 0, 0, 0,                       // gradient scale
        0, 0, 0, 0,                       // norm count
        0, 0, 0, 0,                       // payload size
        0, 0, 0, 0,                       // weight count
        0, 0, 0, 0,                       // stats count
    };
    EXPECT_EQ(bytes, golden);
}

TEST(NetWire, RejectsTruncationAndTrailingGarbage)
{
    Message m = sample_push();
    m.weights = {1.0f};
    m.stats = {2.0};
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    Message out;
    // Every possible truncation point must be rejected, never crash.
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_FALSE(ps::deserialize_message(bytes.data(), n, out))
            << "accepted a " << n << "-byte prefix";
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(
        ps::deserialize_message(padded.data(), padded.size(), out));
    // Unknown kind byte.
    std::vector<std::uint8_t> bad_kind = bytes;
    bad_kind[0] = 250;
    EXPECT_FALSE(
        ps::deserialize_message(bad_kind.data(), bad_kind.size(), out));
}

TEST(NetWire, TraceBlockRoundTripsOnMessages)
{
    Message m = sample_push();
    const std::vector<std::uint8_t> plain = ps::serialize_message(m);

    m.trace.ctx.trace_lo = 0x1111222233334444ull;
    m.trace.ctx.trace_hi = 0x5555666677778888ull;
    m.trace.ctx.span = 0xAAAA;
    m.trace.ctx.parent = 0xBBBB;
    m.trace.send_ts_ns = 123456789;
    m.trace.echo_send_ts_ns = 111;
    m.trace.echo_recv_ts_ns = 222;
    const std::vector<std::uint8_t> traced = ps::serialize_message(m);

    // The trace block is strictly additive: same prefix, 58 more bytes.
    ASSERT_EQ(traced.size(), plain.size() + obs::kTraceBlockBytes);
    EXPECT_EQ(ps::serialized_bytes(m), traced.size());
    EXPECT_EQ(std::memcmp(traced.data(), plain.data(), plain.size()), 0);

    Message out;
    ASSERT_TRUE(
        ps::deserialize_message(traced.data(), traced.size(), out));
    EXPECT_EQ(out.trace.ctx.trace_lo, m.trace.ctx.trace_lo);
    EXPECT_EQ(out.trace.ctx.trace_hi, m.trace.ctx.trace_hi);
    EXPECT_EQ(out.trace.ctx.span, m.trace.ctx.span);
    EXPECT_EQ(out.trace.ctx.parent, m.trace.ctx.parent);
    EXPECT_EQ(out.trace.send_ts_ns, m.trace.send_ts_ns);
    EXPECT_EQ(out.trace.echo_send_ts_ns, m.trace.echo_send_ts_ns);
    EXPECT_EQ(out.trace.echo_recv_ts_ns, m.trace.echo_recv_ts_ns);
    EXPECT_EQ(out.clock, m.clock) << "regular fields still round-trip";

    // Backward compatibility: an old-format (traceless) frame parses in
    // new code as a message with no context.
    Message old_format;
    ASSERT_TRUE(
        ps::deserialize_message(plain.data(), plain.size(), old_format));
    EXPECT_FALSE(old_format.trace.ctx.valid());
}

TEST(NetWire, TraceBlockTruncationSweep)
{
    Message m = sample_push();
    m.weights = {1.0f};
    m.stats = {2.0};
    m.trace.ctx = obs::make_root_context();
    m.trace.send_ts_ns = 42;
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    const std::size_t base = bytes.size() - obs::kTraceBlockBytes;

    // Exactly two prefixes parse: the traceless base layout (an old
    // sender) and the full traced frame. Every cut INSIDE the trace
    // block is trailing garbage and must reject the whole message.
    Message out;
    for (std::size_t n = 0; n <= bytes.size(); ++n) {
        const bool ok = ps::deserialize_message(bytes.data(), n, out);
        if (n == base) {
            EXPECT_TRUE(ok) << "base-layout prefix must stay parseable";
            EXPECT_FALSE(out.trace.ctx.valid());
        } else if (n == bytes.size()) {
            EXPECT_TRUE(ok);
            EXPECT_TRUE(out.trace.ctx.valid());
        } else {
            EXPECT_FALSE(ok) << "accepted a " << n << "-byte prefix";
        }
    }

    // A block-sized tail that is not a well-formed trace block is
    // garbage, not a context: corrupt tag, corrupt version, zeroed ids.
    std::vector<std::uint8_t> bad = bytes;
    bad[base] = 0xCF; // tag
    EXPECT_FALSE(ps::deserialize_message(bad.data(), bad.size(), out));
    bad = bytes;
    bad[base + 1] = obs::kTraceBlockVersion + 1;
    EXPECT_FALSE(ps::deserialize_message(bad.data(), bad.size(), out));
    bad = bytes;
    std::fill(bad.begin() + static_cast<long>(base) + 2,
              bad.begin() + static_cast<long>(base) + 18, 0);
    EXPECT_FALSE(ps::deserialize_message(bad.data(), bad.size(), out))
        << "a zero trace id cannot have been emitted";
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(
        ps::deserialize_message(padded.data(), padded.size(), out));
}

/// A sparse Cs8 push with a known encoding (see SparseCs8MessageBytes
/// for the byte-level walk-through).
Message
sample_sparse_push()
{
    Message m;
    m.kind = ps::Message::Kind::kPush;
    m.accepted = false;
    m.sender = 2;
    m.worker = 3;
    m.token = 0x0102030405060708ull;
    m.clock = 9;
    m.version = 10;
    const float value[2] = {127.0f, -127.0f};
    const std::uint32_t index[2] = {3, 10};
    const ps::GradientView view = ps::GradientView::sparse_view(
        value, index, 2, /*dim=*/32, simd::sparse::IndexMode::kAbsolute);
    m.gradient = ps::encode_sparse_gradient(view, ps::Codec::from_bits(8),
                                            nullptr);
    return m;
}

TEST(NetWire, SparsePushRoundTripsThroughSerialization)
{
    const Message m = sample_sparse_push();
    ASSERT_TRUE(m.gradient.sparse());
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    EXPECT_EQ(bytes.size(), ps::serialized_bytes(m));

    Message out;
    ASSERT_TRUE(ps::deserialize_message(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out.gradient.dim, m.gradient.dim);
    EXPECT_EQ(out.gradient.count, m.gradient.count);
    EXPECT_EQ(out.gradient.index_payload, m.gradient.index_payload);
    EXPECT_EQ(out.gradient.payload, m.gradient.payload);

    // Cross-process bit identity of the sparse decode.
    const ps::SparseGradient a = ps::decode_sparse_gradient(m.gradient);
    const ps::SparseGradient b = ps::decode_sparse_gradient(out.gradient);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.index, (std::vector<std::uint32_t>{3, 10}));
    EXPECT_EQ(a.value, (std::vector<float>{127.0f, -127.0f}));
}

TEST(NetWire, SparsePushTruncationSweep)
{
    // Without a trace block only the full frame parses: a cut at the
    // pre-sparse base layout still has flags bit1 set, so the missing
    // sparse block fails the parse instead of silently reading dense.
    Message m = sample_sparse_push();
    const std::vector<std::uint8_t> plain = ps::serialize_message(m);
    Message out;
    for (std::size_t n = 0; n < plain.size(); ++n)
        EXPECT_FALSE(ps::deserialize_message(plain.data(), n, out))
            << "accepted a " << n << "-byte prefix";
    ASSERT_TRUE(
        ps::deserialize_message(plain.data(), plain.size(), out));
    EXPECT_TRUE(out.gradient.sparse());

    // With a trace block: exactly two parse points, the traceless sparse
    // frame and the full frame — same contract as the dense sweep.
    m.trace.ctx = obs::make_root_context();
    m.trace.send_ts_ns = 42;
    const std::vector<std::uint8_t> traced = ps::serialize_message(m);
    const std::size_t base = traced.size() - obs::kTraceBlockBytes;
    for (std::size_t n = 0; n <= traced.size(); ++n) {
        const bool ok = ps::deserialize_message(traced.data(), n, out);
        if (n == base) {
            EXPECT_TRUE(ok) << "traceless sparse frame must stay parseable";
            EXPECT_TRUE(out.gradient.sparse());
            EXPECT_FALSE(out.trace.ctx.valid());
        } else if (n == traced.size()) {
            EXPECT_TRUE(ok);
            EXPECT_TRUE(out.gradient.sparse());
            EXPECT_TRUE(out.trace.ctx.valid());
        } else {
            EXPECT_FALSE(ok) << "accepted a " << n << "-byte prefix";
        }
    }

    // Trailing garbage after the sparse block, a zero dimension, and an
    // unknown flag bit are each a parse failure, not a guess.
    std::vector<std::uint8_t> padded = plain;
    padded.push_back(0);
    EXPECT_FALSE(
        ps::deserialize_message(padded.data(), padded.size(), out));
    std::vector<std::uint8_t> zero_dim = plain;
    const std::size_t dim_at =
        plain.size() - 8 - m.gradient.index_payload.size();
    std::fill(zero_dim.begin() + static_cast<long>(dim_at),
              zero_dim.begin() + static_cast<long>(dim_at) + 4, 0);
    EXPECT_FALSE(
        ps::deserialize_message(zero_dim.data(), zero_dim.size(), out));
    std::vector<std::uint8_t> bad_flags = plain;
    bad_flags[1] |= 4;
    EXPECT_FALSE(
        ps::deserialize_message(bad_flags.data(), bad_flags.size(), out));
}

TEST(NetWire, SparsePushFuzzRoundTrip)
{
    // Random supports and values through every codec tier: the frame
    // must round-trip field-exact and decode bit-identically on the
    // "receiver" side.
    rng::Xorshift128Plus fuzz(0xF00D);
    const ps::Codec codecs[] = {ps::Codec::from_bits(32),
                                ps::Codec::from_bits(8),
                                ps::Codec::from_bits(1), ps::Codec::qsgd(4)};
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t dim = 8 + fuzz() % 3000;
        const std::size_t nnz = fuzz() % std::min<std::uint32_t>(dim, 300);
        std::vector<std::uint32_t> index;
        std::uint32_t cursor = 0;
        for (std::size_t j = 0; j < nnz && cursor < dim; ++j) {
            index.push_back(cursor);
            cursor += 1 + fuzz() % ((dim / 16) + 1);
        }
        std::vector<float> value(index.size());
        for (auto& v : value)
            v = rng::to_unit_float(static_cast<std::uint32_t>(fuzz())) *
                    8.0f -
                4.0f;
        std::vector<float> residual(index.size(), 0.0f);

        const ps::Codec& codec = codecs[trial % 4];
        const ps::GradientView view = ps::GradientView::sparse_view(
            value.data(), index.data(), index.size(), dim,
            simd::sparse::IndexMode::kAbsolute);
        Message m;
        m.kind = ps::Message::Kind::kPush;
        m.sender = static_cast<std::uint32_t>(fuzz());
        m.worker = static_cast<std::uint32_t>(fuzz() % 64);
        m.token = fuzz();
        m.clock = fuzz() % 1000;
        m.gradient =
            ps::encode_sparse_gradient(view, codec, residual.data(), &fuzz);

        const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
        ASSERT_EQ(bytes.size(), ps::serialized_bytes(m));
        Message out;
        ASSERT_TRUE(
            ps::deserialize_message(bytes.data(), bytes.size(), out))
            << "trial " << trial;
        EXPECT_EQ(out.gradient.dim, dim);
        EXPECT_EQ(out.gradient.count, index.size());

        const ps::SparseGradient sent =
            ps::decode_sparse_gradient(m.gradient);
        const ps::SparseGradient received =
            ps::decode_sparse_gradient(out.gradient);
        ASSERT_EQ(received.index, index) << "trial " << trial;
        ASSERT_EQ(received.index, sent.index);
        ASSERT_EQ(received.value, sent.value);
        // And the error-feedback invariant held through the pack:
        // r == g - q entry-by-entry, bit-exact against the decoded q.
        for (std::size_t j = 0; j < index.size(); ++j)
            ASSERT_EQ(residual[j], value[j] - received.value[j])
                << "trial " << trial << " j=" << j;
    }
}

// ======================================================== NetGolden

TEST(NetGolden, Cs8PayloadBytes)
{
    const float g[4] = {127.0f, -127.0f, 0.0f, 64.0f};
    float residual[4] = {};
    const ps::WireGradient wire = ps::encode_gradient(g, 4, 8, residual);
    EXPECT_EQ(wire.kind, ps::CodecKind::kLinear);
    EXPECT_EQ(wire.scale, 1.0f); // maxabs 127 over 127 levels
    const std::vector<std::uint8_t> golden = {0x7F, 0x81, 0x00, 0x40};
    EXPECT_EQ(wire.payload, golden);
}

TEST(NetGolden, Cs1PayloadBytes)
{
    const float g[4] = {1.0f, -2.0f, 3.0f, -4.0f};
    float residual[4] = {};
    const ps::WireGradient wire = ps::encode_gradient(g, 4, 1, residual);
    EXPECT_EQ(wire.kind, ps::CodecKind::kSign);
    EXPECT_EQ(wire.scale, 2.5f); // mean |g|
    // Bit set = negative, bit k % 8: coordinates 1 and 3.
    const std::vector<std::uint8_t> golden = {0x0A};
    EXPECT_EQ(wire.payload, golden);
}

TEST(NetGolden, CsQ4PayloadBytes)
{
    // One bucket, norm 5; ratios {1, 0, 0, 0} land on levels {7, 0, 0, 0}
    // for every dither u in [0, 1) — the golden is rng-independent.
    const float g[4] = {5.0f, 0.0f, 0.0f, 0.0f};
    float residual[4] = {};
    rng::Xorshift128Plus rng(123);
    const ps::WireGradient wire =
        ps::encode_gradient(g, 4, ps::Codec::qsgd(4), residual, &rng);
    EXPECT_EQ(wire.kind, ps::CodecKind::kQsgd);
    ASSERT_EQ(wire.norms.size(), 1u);
    EXPECT_EQ(wire.norms[0], 5.0f);
    // Byte 0: sign bitmap (all positive). Then Elias gamma of levels+1 =
    // {8, 1, 1, 1} MSB-first: 0001000 1 1 1 -> 0x11 0xC0.
    const std::vector<std::uint8_t> golden = {0x00, 0x11, 0xC0};
    EXPECT_EQ(wire.payload, golden);
    // And the decode returns exactly the grid points.
    const std::vector<float> decoded = ps::decode_gradient(wire);
    ASSERT_EQ(decoded.size(), 4u);
    EXPECT_EQ(decoded[0], 5.0f);
    EXPECT_EQ(decoded[1], 0.0f);
    EXPECT_EQ(residual[0], 0.0f);
}

TEST(NetGolden, SparseCs8MessageBytes)
{
    // The sparse-push extension golden: a full serialized frame, byte by
    // byte. Values {127, -127} at coordinates {3, 10} of a 32-dim slice,
    // Cs8: maxabs 127 over 127 levels -> scale 1.0, levels 0x7F / 0x81.
    // Index stream, Elias gamma MSB-first: gamma(first+1) = gamma(4) =
    // 00100, then the gap gamma(10-3) = gamma(7) = 00111 -> bytes
    // 0x21 0xC0. This is the cross-process contract for sparse pushes —
    // change it consciously.
    const Message m = sample_sparse_push();
    const std::vector<std::uint8_t> bytes = ps::serialize_message(m);
    const std::vector<std::uint8_t> golden = {
        0, 2, 1, 8,              // kind=kPush, flags=sparse, Cs8 codec
        2, 0, 0, 0,              // sender
        3, 0, 0, 0,              // worker
        8, 7, 6, 5, 4, 3, 2, 1,  // token (LE)
        9, 0, 0, 0, 0, 0, 0, 0,  // clock
        10, 0, 0, 0, 0, 0, 0, 0, // version
        2, 0, 0, 0,              // gradient count = nnz
        0x00, 0x00, 0x80, 0x3F,  // scale 1.0f
        0, 0, 0, 0,              // norm count
        2, 0, 0, 0,              // payload size
        0x7F, 0x81,              // int8 levels 127, -127
        0, 0, 0, 0,              // weight count
        0, 0, 0, 0,              // stats count
        32, 0, 0, 0,             // sparse dimension
        2, 0, 0, 0,              // index payload size
        0x21, 0xC0,              // gamma(4) gamma(7)
    };
    EXPECT_EQ(bytes, golden);
}

// ========================================================== NetQsgd

TEST(NetQsgd, ResidualIsExactlyGradientMinusDecode)
{
    rng::Xorshift128Plus fuzz(31337);
    for (const int bits : {2, 4, 8}) {
        for (int trial = 0; trial < 20; ++trial) {
            const std::size_t n = 1 + fuzz() % 700; // spans >1 bucket
            std::vector<float> g(n), residual(n, 0.0f);
            for (auto& x : g)
                x = (rng::to_unit_float(
                         static_cast<std::uint32_t>(fuzz() >> 32)) -
                     0.5f) *
                    8.0f;
            rng::Xorshift128Plus dither(trial);
            const ps::WireGradient wire = ps::encode_gradient(
                g.data(), n, ps::Codec::qsgd(bits), residual.data(),
                &dither);
            const std::vector<float> q = ps::decode_gradient(wire);
            ASSERT_EQ(q.size(), n);
            for (std::size_t k = 0; k < n; ++k)
                EXPECT_EQ(residual[k], g[k] - q[k])
                    << "bits " << bits << " k " << k;
        }
    }
}

TEST(NetQsgd, StochasticRoundingIsUnbiased)
{
    // E[decode] == g: average many independent encodes of one vector.
    const std::size_t n = 64;
    std::vector<float> g(n);
    rng::Xorshift128Plus init(5);
    for (auto& x : g)
        x = rng::to_unit_float(static_cast<std::uint32_t>(init() >> 32)) -
            0.5f;
    std::vector<double> mean(n, 0.0);
    const int trials = 3000;
    rng::Xorshift128Plus dither(777);
    for (int t = 0; t < trials; ++t) {
        const ps::WireGradient wire = ps::encode_gradient(
            g.data(), n, ps::Codec::qsgd(4), nullptr, &dither);
        const std::vector<float> q = ps::decode_gradient(wire);
        for (std::size_t k = 0; k < n; ++k) mean[k] += q[k];
    }
    for (std::size_t k = 0; k < n; ++k)
        EXPECT_NEAR(mean[k] / trials, g[k], 0.05) << "k " << k;
}

TEST(NetQsgd, CsQ4HalvesCs8Traffic)
{
    // The acceptance ratio: on a realistic (dense, zero-mean) gradient
    // the gamma-coded CsQ4 payload is >= 2x smaller than Cs8's.
    const std::size_t n = 4096;
    std::vector<float> g(n);
    rng::Xorshift128Plus rng(99);
    for (auto& x : g)
        x = (rng::to_unit_float(static_cast<std::uint32_t>(rng() >> 32)) -
             0.5f) *
            2.0f;
    std::vector<float> r8(n, 0.0f), rq(n, 0.0f);
    const ps::WireGradient cs8 = ps::encode_gradient(g.data(), n, 8,
                                                     r8.data());
    rng::Xorshift128Plus dither(7);
    const ps::WireGradient csq = ps::encode_gradient(
        g.data(), n, ps::Codec::qsgd(4), rq.data(), &dither);
    EXPECT_LE(csq.wire_bytes() * 2, cs8.wire_bytes())
        << "CsQ4 " << csq.wire_bytes() << "B vs Cs8 " << cs8.wire_bytes()
        << "B";
}

// ===================================================== NetTransport

/// A listening "shard-side" transport and a dialing "client-side" one,
/// covering endpoints {0} and {1} of a 2-endpoint cluster.
struct TransportPair
{
    std::unique_ptr<ps::SocketTransport> server, client;

    explicit TransportPair(ps::FaultModel client_faults = {})
    {
        ps::SocketTransportConfig s;
        s.endpoints = 2;
        s.local = {0};
        s.listen = true;
        server = std::make_unique<ps::SocketTransport>(std::move(s));

        ps::SocketTransportConfig c;
        c.endpoints = 2;
        c.local = {1};
        c.peers[0] = {"127.0.0.1", server->port()};
        c.faults = client_faults;
        client = std::make_unique<ps::SocketTransport>(std::move(c));
    }

    ~TransportPair()
    {
        client->close();
        server->close();
    }
};

TEST(NetTransport, DeliversAndRepliesOverLoopback)
{
    TransportPair pair;
    // Echo thread on the server endpoint: replies over the learned route.
    WorkerGroup echo;
    echo.start(1, [&](std::size_t) {
        ps::Message m;
        for (;;) {
            if (!pair.server->recv(0, m, std::chrono::microseconds(500))) {
                if (pair.server->closed()) return;
                continue;
            }
            ps::Message reply;
            reply.kind = ps::Message::Kind::kAck;
            reply.token = m.token;
            reply.clock = m.clock;
            pair.server->send(m.sender, std::move(reply));
        }
    });

    ps::RpcClient rpc(*pair.client, 1);
    for (std::uint64_t c = 1; c <= 20; ++c) {
        ps::Message request;
        request.kind = ps::Message::Kind::kPull;
        request.clock = c;
        const ps::Message reply = rpc.call(0, std::move(request));
        EXPECT_EQ(reply.clock, c);
    }
    pair.server->close();
    echo.join();
    EXPECT_GE(pair.client->sent(), 20u);
    EXPECT_GT(pair.client->sent_bytes(), 0u);
    EXPECT_GT(pair.client->recv_bytes(), 0u);
}

TEST(NetTransport, RpcRetriesThroughInjectedDrops)
{
    ps::FaultModel faults;
    faults.drop_prob = 0.25;
    faults.seed = 99;
    TransportPair pair(faults);
    WorkerGroup echo;
    echo.start(1, [&](std::size_t) {
        ps::Message m;
        for (;;) {
            if (!pair.server->recv(0, m, std::chrono::microseconds(500))) {
                if (pair.server->closed()) return;
                continue;
            }
            ps::Message reply;
            reply.kind = ps::Message::Kind::kAck;
            reply.token = m.token;
            reply.clock = m.clock;
            pair.server->send(m.sender, std::move(reply));
        }
    });

    ps::RpcClient rpc(*pair.client, 1);
    for (std::uint64_t c = 1; c <= 50; ++c) {
        ps::Message request;
        request.kind = ps::Message::Kind::kPull;
        request.clock = c;
        const ps::Message reply = rpc.call(0, std::move(request));
        EXPECT_EQ(reply.clock, c); // the reply to THIS call, never stale
    }
    pair.server->close();
    echo.join();
    // A quarter of the traffic vanished; the protocol recovered all of it.
    EXPECT_GT(pair.client->dropped(), 0u);
    EXPECT_GT(rpc.retries(), 0u);
}

TEST(NetTransport, PayloadsCrossTheSocketBitIdentically)
{
    TransportPair pair;
    ps::Message m = sample_push();
    m.sender = 1; // our endpoint in this 2-endpoint cluster
    const std::vector<float> sent_decode = ps::decode_gradient(m.gradient);
    const std::vector<std::uint8_t> sent_payload = m.gradient.payload;
    pair.client->send(0, std::move(m));
    ps::Message out;
    ASSERT_TRUE(pair.server->recv(0, out, std::chrono::microseconds(
                                              2 * 1000 * 1000)));
    EXPECT_EQ(out.gradient.payload, sent_payload);
    EXPECT_EQ(ps::decode_gradient(out.gradient), sent_decode);
}

// ======================================================= NetCluster

/// Runs a full S-shard, W-worker cluster as separate SocketTransports
/// over loopback — threads standing in for processes, same fabric the
/// forked topology uses (tests/test_net must stay runnable under TSan,
/// where fork-based assertions would not be).
template <typename Problem>
ps::ClusterResult
train_over_sockets(const Problem& problem, const ps::ClusterConfig& cfg)
{
    const std::size_t shards = cfg.shards;
    // Bind every shard listener first: race-free advertised ports.
    std::vector<net::Fd> listeners(shards);
    std::vector<net::Address> addresses(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        std::uint16_t port = 0;
        std::string error;
        listeners[s] = net::listen_tcp("127.0.0.1", 0, 16, &port, &error);
        EXPECT_TRUE(listeners[s].valid()) << error;
        addresses[s] = {"127.0.0.1", port};
    }

    std::vector<ps::ShardMetrics> shard_metrics(shards);
    WorkerGroup shard_threads;
    shard_threads.start(shards, [&](std::size_t s) {
        ps::ShardNodeOptions options;
        options.index = s;
        options.adopt_listen_fd = listeners[s].release();
        shard_metrics[s] = ps::run_shard_node(cfg, problem.dim, options);
    });

    std::vector<ps::WorkerStats> worker_stats(cfg.workers);
    WorkerGroup worker_threads;
    worker_threads.start(cfg.workers, [&](std::size_t w) {
        worker_stats[w] = ps::run_worker_node(cfg, problem, w, addresses);
    });
    worker_threads.join();

    ps::ClusterResult result;
    result.comm = cfg.codec.name();
    {
        ps::ControlClient control(cfg, addresses);
        const std::vector<float> model = control.snapshot(problem.dim);
        ps::evaluate_model(problem, cfg.loss, model, &result.final_loss,
                           &result.accuracy);
        result.metrics.shards = control.stats();
        control.shutdown();
    }
    shard_threads.join();
    for (const ps::WorkerStats& w : worker_stats) {
        result.rounds += w.rounds;
        result.metrics.rpc_retries += w.retries;
    }
    return result;
}

ps::ClusterConfig
socket_cluster_config(const ps::Codec& codec)
{
    ps::ClusterConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.codec = codec;
    cfg.rounds = 100;
    cfg.batch = 16;
    cfg.tau = 8;
    cfg.step_size = 0.25f;
    return cfg;
}

TEST(NetCluster, SocketClusterMatchesInProcessConvergence)
{
    const auto& problem = testutil::cluster_problem();
    for (const ps::Codec& codec :
         {ps::Codec::from_bits(32), ps::Codec::qsgd(4)}) {
        const ps::ClusterConfig cfg = socket_cluster_config(codec);
        const ps::ClusterResult socket = train_over_sockets(problem, cfg);
        const ps::ClusterResult inproc = ps::train_cluster(problem, cfg);
        EXPECT_EQ(socket.rounds, 200u) << codec.name();
        EXPECT_EQ(socket.metrics.total_pushes(), 400u) << codec.name();
        // Same round loop, same codec arithmetic, different fabric: the
        // two runs converge alike (asynchrony makes them nondeterministic,
        // so "alike" is a tolerance, not equality).
        EXPECT_NEAR(socket.accuracy, inproc.accuracy, 0.05) << codec.name();
        EXPECT_LT(socket.final_loss, inproc.final_loss + 0.1)
            << codec.name();
    }
#if BUCKWILD_OBS_ENABLED
    // The real framed traffic registered in the obs counters (compiled
    // out — and so legitimately zero — under -DBUCKWILD_OBS=OFF).
    EXPECT_GT(obs::MetricsRegistry::global()
                  .counter("net.sent_bytes")
                  .value(),
              0u);
    EXPECT_GT(obs::MetricsRegistry::global()
                  .counter("net.frames_recv")
                  .value(),
              0u);
#endif
}

TEST(NetCluster, SurvivesFaultInjectionOverSockets)
{
    // The acceptance criterion: drop/reorder/retransmit chaos against
    // the REAL socket transport, protocol still exactly-once.
    const auto& problem = testutil::cluster_problem();
    ps::ClusterConfig cfg = socket_cluster_config(ps::Codec::from_bits(1));
    cfg.tau = 6;
    cfg.faults.drop_prob = 0.05;
    cfg.faults.jitter_us = 5;
    cfg.faults.reorder_window = 3;
    const ps::ClusterResult r = train_over_sockets(problem, cfg);
    EXPECT_GT(r.metrics.rpc_retries, 0u); // drops really happened
    // Exactly-once: every round applied despite retransmissions.
    EXPECT_EQ(r.metrics.total_pushes(), 2u * 2u * 100u);
    EXPECT_LE(r.metrics.max_staleness(), 6u);
    EXPECT_GT(r.accuracy, 0.75);
}

TEST(NetCluster, SparsePushesCrossRealSockets)
{
    // The sparse gradient path over the REAL socket fabric: gamma-coded
    // index streams framed, shipped, and gather-scatter applied, with
    // nnz accounting surviving the trip.
    const auto& problem = testutil::sparse_cluster_problem();
    for (const ps::Codec& codec :
         {ps::Codec::from_bits(32), ps::Codec::qsgd(4)}) {
        const ps::ClusterConfig cfg = socket_cluster_config(codec);
        const ps::ClusterResult socket = train_over_sockets(problem, cfg);
        const ps::ClusterResult inproc = ps::train_cluster(problem, cfg);
        EXPECT_EQ(socket.rounds, 200u) << codec.name();
        EXPECT_EQ(socket.metrics.total_pushes(), 400u) << codec.name();
        EXPECT_GT(socket.metrics.total_sparse_nnz(), 0u) << codec.name();
        EXPECT_GT(socket.metrics.total_sparse_bytes(), 0u) << codec.name();
        EXPECT_NEAR(socket.accuracy, inproc.accuracy, 0.05) << codec.name();
    }
}

} // namespace
} // namespace buckwild
