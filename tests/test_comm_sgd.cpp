/**
 * @file
 * Tests for the explicit-communication (C-term) trainer: synchronous
 * data-parallel SGD with quantized gradient exchange, including the
 * Seide-style 1-bit mode with error feedback.
 */
#include <gtest/gtest.h>

#include "core/comm_sgd.h"
#include "dataset/problem.h"

namespace buckwild::core {
namespace {

const dataset::DenseProblem&
problem()
{
    static const auto kProblem =
        dataset::generate_logistic_dense(128, 2048, 321);
    return kProblem;
}

CommSgdConfig
base()
{
    CommSgdConfig cfg;
    cfg.workers = 4;
    cfg.epochs = 12;
    cfg.batch_per_worker = 8;
    cfg.step_size = 0.5f;
    return cfg;
}

TEST(CommSgd, FullPrecisionConverges)
{
    const auto r = train_comm_sgd(problem(), base());
    EXPECT_EQ(r.signature, "Cs32");
    EXPECT_LT(r.final_loss, 0.5);
    EXPECT_GT(r.accuracy, 0.78);
    EXPECT_GT(r.rounds, 0u);
    EXPECT_DOUBLE_EQ(r.bytes_per_round, 128.0 * 4 + 4);
}

TEST(CommSgd, OneBitWithErrorFeedbackMatchesFullPrecision)
{
    // The Seide et al. result: 1 bit per value is enough *with* the
    // quantization error carried forward.
    CommSgdConfig cfg = base();
    const auto full = train_comm_sgd(problem(), cfg);
    cfg.comm_bits = 1;
    const auto onebit = train_comm_sgd(problem(), cfg);
    EXPECT_EQ(onebit.signature, "Cs1");
    EXPECT_LT(onebit.final_loss, full.final_loss + 0.07)
        << "1-bit with error feedback must track full precision";
    // 32x traffic reduction (within the scale scalar).
    EXPECT_LT(onebit.bytes_per_round, full.bytes_per_round / 20.0);
}

TEST(CommSgd, OneBitWithoutFeedbackIsWorse)
{
    CommSgdConfig cfg = base();
    cfg.comm_bits = 1;
    cfg.error_feedback = true;
    const auto with = train_comm_sgd(problem(), cfg);
    cfg.error_feedback = false;
    const auto without = train_comm_sgd(problem(), cfg);
    EXPECT_LT(with.final_loss, without.final_loss)
        << "error feedback is what makes 1-bit exchange work";
}

TEST(CommSgd, EightBitIsIndistinguishable)
{
    CommSgdConfig cfg = base();
    const auto full = train_comm_sgd(problem(), cfg);
    cfg.comm_bits = 8;
    const auto q8 = train_comm_sgd(problem(), cfg);
    EXPECT_NEAR(q8.final_loss, full.final_loss, 0.03);
}

TEST(CommSgd, WorkerCountPreservesSemantics)
{
    // Synchronous exchange: more workers with the same global batch size
    // compute the same per-round gradient (up to fp order), so the
    // trajectory is close.
    CommSgdConfig a = base();
    a.workers = 1;
    a.batch_per_worker = 32;
    CommSgdConfig b = base();
    b.workers = 8;
    b.batch_per_worker = 4;
    const auto ra = train_comm_sgd(problem(), a);
    const auto rb = train_comm_sgd(problem(), b);
    EXPECT_NEAR(ra.final_loss, rb.final_loss, 1e-3);
}

TEST(CommSgd, RejectsBadConfig)
{
    CommSgdConfig cfg = base();
    cfg.workers = 0;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    cfg.comm_bits = 7;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    cfg.batch_per_worker = 0;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    cfg.step_size = 0.0f;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    cfg.step_size = -0.1f;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    cfg.step_decay = 0.0f;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
    cfg = base();
    // One exchange round must fit in the dataset.
    cfg.workers = 1024;
    cfg.batch_per_worker = 1024;
    EXPECT_THROW(train_comm_sgd(problem(), cfg), std::runtime_error);
}

} // namespace
} // namespace buckwild::core
