/**
 * @file
 * Unit tests for the util substrate: aligned buffers, statistics, tables,
 * timing, and the parallel runner / spin barrier.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "util/aligned_buffer.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace buckwild {
namespace {

TEST(AlignedBuffer, AllocationIsCacheLineAligned)
{
    for (std::size_t n : {1u, 7u, 64u, 1000u}) {
        AlignedBuffer<float> buf(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                      kCacheLineBytes,
                  0u);
    }
}

TEST(AlignedBuffer, ZeroInitialized)
{
    AlignedBuffer<int> buf(129);
    for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0);
}

TEST(AlignedBuffer, CopyPreservesContents)
{
    AlignedBuffer<int> a(10);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int>(i * i);
    AlignedBuffer<int> b(a);
    AlignedBuffer<int> c;
    c = a;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(b[i], a[i]);
        EXPECT_EQ(c[i], a[i]);
    }
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    AlignedBuffer<int> a(4);
    a[0] = 42;
    int* ptr = a.data();
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), ptr);
    EXPECT_EQ(b[0], 42);
    EXPECT_TRUE(a.empty()); // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(AlignedBuffer, TailPaddingAllowsFullVectorLoad)
{
    // 1 float = 4 bytes, but the allocation must cover a whole cache line,
    // so reading 16 floats' worth of bytes stays in bounds.
    AlignedBuffer<float> buf(1);
    volatile float sink = 0.0f;
    for (std::size_t i = 0; i < kCacheLineBytes / sizeof(float); ++i)
        sink = sink + buf.data()[i];
    EXPECT_EQ(sink, 0.0f);
}

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = 0.37 * i - 3.0;
        all.add(x);
        (i < 37 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, VectorHelpers)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
    EXPECT_DOUBLE_EQ(mean_of(xs), 3.75);
    EXPECT_NEAR(geomean_of(xs), std::pow(64.0, 0.25), 1e-12);
    EXPECT_NEAR(stddev_of(xs), std::sqrt((7.5625 + 3.0625 + 0.0625 + 18.0625) / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
    EXPECT_THROW(geomean_of({1.0, -1.0}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolatesAndClamps)
{
    const std::vector<double> xs = {10.0, 40.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(percentile_of(xs, 75), 32.5);
    EXPECT_DOUBLE_EQ(percentile_of(xs, -5), 10.0) << "clamps below";
    EXPECT_DOUBLE_EQ(percentile_of(xs, 200), 40.0) << "clamps above";
    EXPECT_DOUBLE_EQ(percentile_of({7.0}, 99), 7.0);
    EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
}

TEST(Stats, PercentileEdgeCasesPinned)
{
    // Degenerate inputs the obs histograms can feed (empty runs, one
    // sample, exact clamps) must stay total functions, not UB.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(percentile_of({}, 0), 0.0);
    EXPECT_DOUBLE_EQ(percentile_of({}, 100), 0.0);
    for (double p : {0.0, 50.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile_of({3.5}, p), 3.5)
            << "single sample is every percentile (p = " << p << ")";
    EXPECT_DOUBLE_EQ(percentile_of({10.0, 20.0}, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile_of({10.0, 20.0}, 100), 20.0);
    EXPECT_DOUBLE_EQ(percentile_of({10.0, 20.0}, 50), 15.0);
    // NaN samples are dropped (they'd break nth_element's strict weak
    // ordering); the order statistic is taken over what remains.
    EXPECT_DOUBLE_EQ(percentile_of({1.0, nan, 3.0}, 50), 2.0);
    EXPECT_DOUBLE_EQ(percentile_of({nan, 5.0, nan}, 99), 5.0);
    EXPECT_DOUBLE_EQ(percentile_of({nan, nan}, 50), 0.0)
        << "all-NaN degrades to the empty-input result";
    // A NaN percentile request has no defined order statistic.
    EXPECT_TRUE(std::isnan(percentile_of({1.0, 2.0}, nan)));
}

TEST(Histogram, UniformDataHasSmallChiSquared)
{
    Histogram h(0.0, 1.0, 16);
    for (int i = 0; i < 16000; ++i) h.add((i % 16 + 0.5) / 16.0);
    EXPECT_EQ(h.total(), 16000u);
    EXPECT_NEAR(h.chi_squared_uniform(), 0.0, 1e-9);
}

TEST(Histogram, OutOfRangeSamplesClampIntoEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(9.0);
    EXPECT_EQ(h.bins().front(), 1u);
    EXPECT_EQ(h.bins().back(), 1u);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TablePrinter, RendersAlignedTableAndCsv)
{
    TablePrinter t("demo", {"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.print_csv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,22\n");
}

TEST(TablePrinter, RejectsArityMismatch)
{
    TablePrinter t("demo", {"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFormat, NumberHelpers)
{
    EXPECT_EQ(format_num(3.14159, 3), "3.14");
    EXPECT_EQ(format_si(2048), "2.05K");
    EXPECT_EQ(format_si(3.0e6), "3.00M");
    EXPECT_EQ(format_si(12), "12");
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch w;
    volatile double x = 1.0;
    for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
    EXPECT_GT(w.seconds(), 0.0);
}

TEST(Stopwatch, MeasureSecondsPerCallRespectsMinReps)
{
    std::size_t calls = 0;
    const double per = measure_seconds_per_call(
        [&calls](std::size_t) { ++calls; }, /*min_seconds=*/0.0,
        /*min_reps=*/5);
    EXPECT_GE(calls, 6u); // warm-up + 5 timed
    EXPECT_GE(per, 0.0);
}

TEST(ParallelRunner, RunsEveryIndexExactlyOnce)
{
    constexpr std::size_t kThreads = 4;
    std::atomic<unsigned> mask{0};
    run_parallel(kThreads, [&mask](std::size_t t) {
        mask.fetch_or(1u << t);
    });
    EXPECT_EQ(mask.load(), (1u << kThreads) - 1);
}

TEST(ParallelRunner, SingleThreadRunsInline)
{
    std::size_t seen = 99;
    run_parallel(1, [&seen](std::size_t t) { seen = t; });
    EXPECT_EQ(seen, 0u);
}

TEST(ParallelRunner, RejectsZeroThreads)
{
    EXPECT_THROW(run_parallel(0, [](std::size_t) {}), std::invalid_argument);
}

TEST(WorkerGroup, RunsAllWorkersAndJoinsIdempotently)
{
    WorkerGroup group;
    std::atomic<unsigned> mask{0};
    group.start(3, [&mask](std::size_t t) { mask.fetch_or(1u << t); });
    EXPECT_EQ(group.size(), 3u);
    EXPECT_THROW(group.start(1, [](std::size_t) {}), std::logic_error)
        << "already running";
    group.join();
    group.join(); // second join is a no-op
    EXPECT_EQ(mask.load(), 0b111u);
    group.start(1, [&mask](std::size_t) { mask.fetch_or(1u << 5); });
    group.join();
    EXPECT_EQ(mask.load(), 0b100111u) << "restartable after join";
}

TEST(WorkerGroup, RejectsZeroWorkers)
{
    WorkerGroup group;
    EXPECT_THROW(group.start(0, [](std::size_t) {}), std::invalid_argument);
}

TEST(SpinBarrier, SynchronizesPhases)
{
    constexpr std::size_t kThreads = 4;
    constexpr int kPhases = 8;
    SpinBarrier barrier(kThreads);
    std::atomic<int> counter{0};
    std::atomic<bool> violated{false};
    run_parallel(kThreads, [&](std::size_t) {
        for (int phase = 0; phase < kPhases; ++phase) {
            counter.fetch_add(1);
            barrier.arrive_and_wait();
            // After the barrier every thread of this phase has incremented.
            if (counter.load() < (phase + 1) * static_cast<int>(kThreads))
                violated.store(true);
            barrier.arrive_and_wait();
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(Logging, FatalAndPanicThrow)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
    EXPECT_THROW(panic("bug"), std::logic_error);
}

} // namespace
} // namespace buckwild
