/**
 * @file
 * Tests for the serving front door (src/gate/): wire-format goldens and
 * an exhaustive truncation/corruption sweep over the parser, the q8
 * feature codec's size and error bounds, partial-I/O injection through
 * the net:: raw hooks, deterministic admission policy (token buckets,
 * cost model, deadline feasibility), the strict-priority lane
 * scheduler, the model router, request-queue telemetry, and a full
 * GateServer/GateClient stack over loopback TCP — including the
 * malformed-ingress paths (NACK-and-survive vs drop-the-connection).
 */
#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sys/socket.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gate/gate.h"
#include "net/net.h"
#include "obs/prom.h"
#include "obs/registry.h"
#include "obs/tracectx.h"
#include "serve/serve.h"
#include "test_common.h"

namespace buckwild {
namespace {

// ============================================================ GateWire

gate::ScoreRequest
sample_request()
{
    gate::ScoreRequest request;
    request.request_id = 0x1122334455667788ull;
    request.model = "m";
    request.tenant = "t";
    request.lane = gate::Lane::kBatch;
    request.deadline_us = 1000;
    request.encoding = gate::FeatureEncoding::kDenseF32;
    request.dense = {1.0f};
    return request;
}

TEST(GateWire, RequestGoldenBytes)
{
    // The byte-level contract: a client built from other source must
    // produce exactly this. Change the format and this fails by design.
    const std::vector<std::uint8_t> bytes = serialize(sample_request());
    const std::uint8_t expected[] = {
        0x01,                   // kind = ScoreRequest
        0x00,                   // encoding = kDenseF32
        0x01,                   // lane = kBatch
        0x00,                   // reserved
        0x88, 0x77, 0x66, 0x55, // request id, little-endian
        0x44, 0x33, 0x22, 0x11,
        0xe8, 0x03, 0x00, 0x00, // deadline_us = 1000
        0x00, 0x00, 0x00, 0x00, // scale = 0.0f
        0x01, 0x00,             // model name length
        0x01, 0x00,             // tenant length
        0x01, 0x00, 0x00, 0x00, // feature count
        'm',  't',
        0x00, 0x00, 0x80, 0x3f, // 1.0f
    };
    ASSERT_EQ(bytes.size(), sizeof(expected));
    EXPECT_EQ(std::memcmp(bytes.data(), expected, sizeof(expected)), 0);
}

TEST(GateWire, ResponseGoldenBytes)
{
    gate::ScoreResponse response;
    response.request_id = 7;
    response.status = gate::Status::kResourceExhausted;
    response.margin = 1.0f;
    response.score = 0.5f;
    response.label = -1.0f;
    response.model_version = 3;
    response.message = "no";
    const std::vector<std::uint8_t> bytes = serialize(response);
    const std::uint8_t expected[] = {
        0x02, 0x01, 0x00, 0x00,                         // kind, status, rsv
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id
        0x00, 0x00, 0x80, 0x3f,                         // margin 1.0
        0x00, 0x00, 0x00, 0x3f,                         // score 0.5
        0x00, 0x00, 0x80, 0xbf,                         // label -1.0
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // version
        0x02, 0x00, 'n',  'o',                          // message
    };
    ASSERT_EQ(bytes.size(), sizeof(expected));
    EXPECT_EQ(std::memcmp(bytes.data(), expected, sizeof(expected)), 0);
}

TEST(GateWire, RoundTripsEveryEncoding)
{
    gate::ScoreRequest dense = sample_request();
    dense.dense = {0.5f, -2.0f, 3.25f};

    gate::ScoreRequest q8 = sample_request();
    q8.encoding = gate::FeatureEncoding::kDenseQ8;
    q8.dense.clear();
    q8.q8 = {-127, 0, 64, 127};
    q8.scale = 0.03125f;

    gate::ScoreRequest sparse = sample_request();
    sparse.encoding = gate::FeatureEncoding::kSparseF32;
    sparse.index = {3, 99, 100000};
    sparse.dense = {1.0f, -1.0f, 0.25f};

    for (const gate::ScoreRequest* in : {&dense, &q8, &sparse}) {
        const std::vector<std::uint8_t> bytes = serialize(*in);
        gate::ScoreRequest out;
        ASSERT_TRUE(gate::deserialize(bytes.data(), bytes.size(), out));
        EXPECT_EQ(out.request_id, in->request_id);
        EXPECT_EQ(out.model, in->model);
        EXPECT_EQ(out.tenant, in->tenant);
        EXPECT_EQ(out.lane, in->lane);
        EXPECT_EQ(out.deadline_us, in->deadline_us);
        EXPECT_EQ(out.encoding, in->encoding);
        EXPECT_EQ(out.dense, in->dense);
        EXPECT_EQ(out.q8, in->q8);
        EXPECT_EQ(out.index, in->index);
    }
}

TEST(GateWire, EveryTruncationPointFailsCleanly)
{
    // A hostile or half-delivered payload must never parse, whatever
    // byte it stops at — sweep every strict prefix of valid messages.
    gate::ScoreRequest request = sample_request();
    request.encoding = gate::FeatureEncoding::kSparseF32;
    request.index = {1, 2};
    request.dense = {1.0f, 2.0f};
    const std::vector<std::uint8_t> bytes = serialize(request);
    gate::ScoreRequest out;
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_FALSE(gate::deserialize(bytes.data(), n, out))
            << "prefix of " << n << " bytes parsed";
    EXPECT_TRUE(gate::deserialize(bytes.data(), bytes.size(), out));

    gate::ScoreResponse response;
    response.message = "queue full";
    const std::vector<std::uint8_t> rbytes = serialize(response);
    gate::ScoreResponse rout;
    for (std::size_t n = 0; n < rbytes.size(); ++n)
        EXPECT_FALSE(gate::deserialize(rbytes.data(), n, rout))
            << "prefix of " << n << " bytes parsed";
    EXPECT_TRUE(gate::deserialize(rbytes.data(), rbytes.size(), rout));
}

TEST(GateWire, RejectsCorruptFields)
{
    const std::vector<std::uint8_t> good = serialize(sample_request());
    gate::ScoreRequest out;
    auto corrupted = [&](std::size_t offset, std::uint8_t value) {
        std::vector<std::uint8_t> bytes = good;
        bytes[offset] = value;
        return gate::deserialize(bytes.data(), bytes.size(), out);
    };
    EXPECT_FALSE(corrupted(0, 9)) << "unknown message kind";
    EXPECT_FALSE(corrupted(1, 3)) << "unknown encoding";
    EXPECT_FALSE(corrupted(2, 2)) << "lane out of range";
    EXPECT_FALSE(corrupted(3, 1)) << "reserved byte set";
    EXPECT_FALSE(corrupted(21, 0xff)) << "model name over cap";
    EXPECT_FALSE(corrupted(27, 0xff)) << "feature count over cap";

    std::vector<std::uint8_t> trailing = good;
    trailing.push_back(0x00);
    EXPECT_FALSE(gate::deserialize(trailing.data(), trailing.size(), out))
        << "trailing garbage accepted";

    // A count larger than the remaining bytes must fail BEFORE any
    // allocation-sized-by-count happens (the parser checks remaining()).
    std::vector<std::uint8_t> lying = good;
    lying[24] = 0x10; // claims 16 features, carries 1
    EXPECT_FALSE(gate::deserialize(lying.data(), lying.size(), out));
}

TEST(GateWire, TraceBlockRoundTripsOnRequestAndResponse)
{
    gate::ScoreRequest request = sample_request();
    const std::vector<std::uint8_t> plain = serialize(request);

    request.trace.ctx.trace_lo = 0x0102030405060708ull;
    request.trace.ctx.trace_hi = 0x1112131415161718ull;
    request.trace.ctx.span = 0x21;
    request.trace.send_ts_ns = 999;
    const std::vector<std::uint8_t> traced = serialize(request);

    // Strictly additive and off the wire when tracing is off — the
    // goldens above never see it.
    ASSERT_EQ(traced.size(), plain.size() + obs::kTraceBlockBytes);
    EXPECT_EQ(std::memcmp(traced.data(), plain.data(), plain.size()), 0);

    gate::ScoreRequest out;
    ASSERT_TRUE(gate::deserialize(traced.data(), traced.size(), out));
    EXPECT_EQ(out.trace.ctx.trace_lo, request.trace.ctx.trace_lo);
    EXPECT_EQ(out.trace.ctx.trace_hi, request.trace.ctx.trace_hi);
    EXPECT_EQ(out.trace.ctx.span, request.trace.ctx.span);
    EXPECT_EQ(out.trace.send_ts_ns, request.trace.send_ts_ns);
    EXPECT_EQ(out.dense, request.dense);
    gate::ScoreRequest old_format;
    ASSERT_TRUE(gate::deserialize(plain.data(), plain.size(), old_format));
    EXPECT_FALSE(old_format.trace.ctx.valid());

    // Responses carry the echo timestamps that make them clock samples.
    gate::ScoreResponse response;
    response.request_id = 7;
    response.status = gate::Status::kOk;
    response.trace.ctx = obs::make_root_context();
    response.trace.send_ts_ns = 300;      // b2
    response.trace.echo_send_ts_ns = 100; // a1
    response.trace.echo_recv_ts_ns = 250; // b1
    const std::vector<std::uint8_t> rbytes = serialize(response);
    gate::ScoreResponse rout;
    ASSERT_TRUE(gate::deserialize(rbytes.data(), rbytes.size(), rout));
    EXPECT_TRUE(rout.trace.ctx.same_trace(response.trace.ctx));
    const obs::ClockSample sample =
        obs::clock_sample_from_reply(rout.trace, 400); // a2
    ASSERT_TRUE(sample.valid);
    EXPECT_EQ(sample.offset_ns, 25);  // ((250-100)+(300-400))/2
    EXPECT_EQ(sample.rtt_ns, 250);    // (400-100)-(300-250)
}

TEST(GateWire, TraceBlockTruncationSweep)
{
    gate::ScoreRequest request = sample_request();
    request.trace.ctx = obs::make_root_context();
    request.trace.send_ts_ns = 1;
    const std::vector<std::uint8_t> bytes = serialize(request);
    const std::size_t base = bytes.size() - obs::kTraceBlockBytes;

    gate::ScoreRequest out;
    for (std::size_t n = 0; n <= bytes.size(); ++n) {
        const bool ok = gate::deserialize(bytes.data(), n, out);
        if (n == base) {
            EXPECT_TRUE(ok) << "base-layout prefix must stay parseable";
            EXPECT_FALSE(out.trace.ctx.valid());
        } else if (n == bytes.size()) {
            EXPECT_TRUE(ok);
            EXPECT_TRUE(out.trace.ctx.valid());
        } else {
            EXPECT_FALSE(ok) << "accepted a " << n << "-byte prefix";
        }
    }

    std::vector<std::uint8_t> bad = bytes;
    bad[base] = 0x00; // tag
    EXPECT_FALSE(gate::deserialize(bad.data(), bad.size(), out));
    bad = bytes;
    bad[base + 1] = obs::kTraceBlockVersion + 1;
    EXPECT_FALSE(gate::deserialize(bad.data(), bad.size(), out));
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(gate::deserialize(padded.data(), padded.size(), out));
}

TEST(GateWire, Q8ShipsQuarterTheBytesWithinHalfQuantum)
{
    std::vector<float> x(256);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.37f * static_cast<float>(i) - 41.0f;

    gate::ScoreRequest f32 = sample_request();
    f32.dense = x;
    gate::ScoreRequest q8 = sample_request();
    q8.encoding = gate::FeatureEncoding::kDenseQ8;
    q8.dense.clear();
    q8.scale = gate::quantize_features_q8(x.data(), x.size(), q8.q8);

    // The claim on the wire: 4x fewer feature bytes.
    const std::size_t f32_bytes = serialize(f32).size();
    const std::size_t q8_bytes = serialize(q8).size();
    EXPECT_EQ(f32_bytes - q8_bytes, x.size() * 3);

    // And the cost of it: at most half a quantum per feature (biased
    // rounding, symmetric grid fitted to max|x|).
    ASSERT_GT(q8.scale, 0.0f);
    std::vector<float> back(x.size());
    gate::dequantize_features_q8(q8.q8.data(), q8.q8.size(), q8.scale,
                                 back.data());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(back[i], x[i], q8.scale / 2 + 1e-6f);
}

TEST(GateWire, Q8DegeneratesToZeroScale)
{
    std::vector<std::int8_t> q;
    const float zeros[4] = {0, 0, 0, 0};
    EXPECT_EQ(gate::quantize_features_q8(zeros, 4, q), 0.0f);
    EXPECT_EQ(q, (std::vector<std::int8_t>{0, 0, 0, 0}));

    const float nan[2] = {1.0f, std::nanf("")};
    EXPECT_EQ(gate::quantize_features_q8(nan, 2, q), 0.0f)
        << "non-finite input must not produce a poisoned grid";
    EXPECT_EQ(gate::quantize_features_q8(nullptr, 0, q), 0.0f);
}

// ======================================================== GatePartialIo

// Raw-I/O injection hooks (plain function pointers, so state is static):
// deliver/accept ONE byte per call and fail every third call with EINTR.
// write_full/read_full must absorb both and still move exact counts.
std::atomic<int> g_dribble_calls{0};

long
dribble_write(int fd, const void* data, std::size_t n)
{
    if (g_dribble_calls.fetch_add(1) % 3 == 2) {
        errno = EINTR;
        return -1;
    }
    return ::send(fd, data, n > 0 ? 1 : 0, MSG_NOSIGNAL);
}

long
dribble_read(int fd, void* data, std::size_t n)
{
    if (g_dribble_calls.fetch_add(1) % 3 == 2) {
        errno = EINTR;
        return -1;
    }
    return ::recv(fd, data, n > 0 ? 1 : 0, 0);
}

TEST(GatePartialIo, ExactIoSurvivesShortWritesAndEintr)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    net::Fd a(fds[0]), b(fds[1]);

    const std::vector<std::uint8_t> frame =
        serialize(sample_request());
    g_dribble_calls.store(0);
    std::thread writer([&] {
        EXPECT_TRUE(net::write_full(a.get(), frame.data(), frame.size(),
                                    &dribble_write));
    });
    std::vector<std::uint8_t> got(frame.size());
    ASSERT_TRUE(
        net::read_full(b.get(), got.data(), got.size(), &dribble_read));
    writer.join();
    EXPECT_EQ(got, frame);

    gate::ScoreRequest out;
    EXPECT_TRUE(gate::deserialize(got.data(), got.size(), out));
    EXPECT_EQ(out.request_id, sample_request().request_id);
}

// ======================================================= GateAdmission

TEST(GateAdmission, TokenBucketIsDeterministicUnderExplicitClock)
{
    gate::TokenBucket bucket(/*rate=*/1.0, /*burst=*/2.0);
    EXPECT_TRUE(bucket.try_take(100.0)) << "starts full";
    EXPECT_TRUE(bucket.try_take(100.0));
    EXPECT_FALSE(bucket.try_take(100.0)) << "burst exhausted";
    EXPECT_FALSE(bucket.try_take(100.5)) << "half a token is not one";
    EXPECT_TRUE(bucket.try_take(101.0)) << "one second refills one token";
    EXPECT_DOUBLE_EQ(bucket.available(101.0), 0.0);
    // Refill clamps at burst: a long idle gap does not bank extra.
    EXPECT_DOUBLE_EQ(bucket.available(1000.0), 2.0);
}

TEST(GateAdmission, TokenBucketUnlimitedAndClockSkew)
{
    gate::TokenBucket unlimited(/*rate=*/0.0, /*burst=*/1.0);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_take(0.0));

    gate::TokenBucket bucket(1.0, 1.0);
    EXPECT_TRUE(bucket.try_take(100.0));
    // A backwards clock must not refill, overflow, or wedge the bucket.
    EXPECT_FALSE(bucket.try_take(50.0));
    EXPECT_TRUE(bucket.try_take(101.0));
}

TEST(GateAdmission, CostModelFoldsObservationsAsEwma)
{
    gate::CostModel cost(1e-9);
    EXPECT_DOUBLE_EQ(cost.seconds_per_number(), 1e-9);
    cost.observe(/*busy_seconds=*/1.0, /*numbers=*/1e6); // sample 1e-6
    EXPECT_DOUBLE_EQ(cost.seconds_per_number(),
                     1e-9 + (1e-6 - 1e-9) / 8.0);
    cost.observe(0.0, 1e6); // non-positive busy time: ignored
    cost.observe(1.0, 0.0); // zero numbers: ignored
    EXPECT_DOUBLE_EQ(cost.seconds_per_number(),
                     1e-9 + (1e-6 - 1e-9) / 8.0);
    EXPECT_DOUBLE_EQ(cost.estimate_seconds(1000.0),
                     cost.seconds_per_number() * 1000.0);
}

TEST(GateAdmission, RateLimitShedsPerTenant)
{
    gate::AdmissionConfig config;
    config.tenant_rate = 1.0;
    config.tenant_burst = 1.0;
    gate::AdmissionController admission(config);

    gate::ScoreRequest request = sample_request();
    request.deadline_us = 0;
    request.tenant = "a";
    EXPECT_TRUE(admission.admit(request, 0.0, 0.0, 0.0).admitted());
    const gate::Decision shed = admission.admit(request, 0.0, 0.0, 0.0);
    EXPECT_EQ(shed.status, gate::Status::kResourceExhausted);
    EXPECT_STREQ(shed.reason, "rate_limit");

    // Tenant isolation: "a" being clipped leaves "b" untouched.
    request.tenant = "b";
    EXPECT_TRUE(admission.admit(request, 0.0, 0.0, 0.0).admitted());
    EXPECT_EQ(admission.tenant_count(), 2u);
}

TEST(GateAdmission, InfeasibleDeadlineRefusedBeforeQueueing)
{
    gate::AdmissionController admission({}); // no rate limits
    gate::ScoreRequest request = sample_request();
    request.deadline_us = 1000; // 1ms budget

    // 0.9ms of backlog + 0.3ms of service cannot make a 1ms deadline.
    const gate::Decision late =
        admission.admit(request, 0.9e-3, 0.3e-3, 0.0);
    EXPECT_EQ(late.status, gate::Status::kDeadlineExceeded);
    EXPECT_STREQ(late.reason, "infeasible_deadline");

    EXPECT_TRUE(admission.admit(request, 0.3e-3, 0.3e-3, 0.0).admitted());

    request.deadline_us = 0; // no deadline: any backlog is acceptable
    EXPECT_TRUE(admission.admit(request, 10.0, 10.0, 0.0).admitted());
}

// ======================================================= GateScheduler

gate::GateTask
make_task(gate::Lane lane, std::size_t features)
{
    gate::GateTask task;
    task.request.lane = lane;
    task.request.dense.assign(features, 1.0f);
    return task;
}

TEST(GateScheduler, InteractivePreemptsBatchAtEveryPop)
{
    gate::LaneScheduler scheduler(4, 4);
    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kBatch, 1)));
    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kBatch, 2)));
    ASSERT_TRUE(
        scheduler.try_push(make_task(gate::Lane::kInteractive, 3)));
    gate::GateTask task;
    ASSERT_TRUE(scheduler.pop(task));
    EXPECT_EQ(task.request.lane, gate::Lane::kInteractive)
        << "interactive must jump the earlier batch work";
    ASSERT_TRUE(scheduler.pop(task));
    EXPECT_EQ(task.request.lane, gate::Lane::kBatch);
    EXPECT_EQ(task.request.dense.size(), 1u) << "batch stays FIFO";
}

TEST(GateScheduler, LaneCapacitiesIsolateOverload)
{
    gate::LaneScheduler scheduler(/*interactive=*/2, /*batch=*/1);
    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kBatch, 1)));
    EXPECT_FALSE(scheduler.try_push(make_task(gate::Lane::kBatch, 1)))
        << "batch lane full";
    // The batch flood must not consume interactive admission.
    EXPECT_TRUE(scheduler.try_push(make_task(gate::Lane::kInteractive, 1)));
    EXPECT_TRUE(scheduler.try_push(make_task(gate::Lane::kInteractive, 1)));
    EXPECT_FALSE(
        scheduler.try_push(make_task(gate::Lane::kInteractive, 1)));
    EXPECT_EQ(scheduler.depth(gate::Lane::kInteractive), 2u);
    EXPECT_EQ(scheduler.depth(gate::Lane::kBatch), 1u);
}

TEST(GateScheduler, TracksBacklogNumbersAndDepthGauges)
{
    obs::MetricsRegistry registry;
    gate::LaneScheduler scheduler(4, 4, &registry);
    obs::Gauge& interactive_depth = registry.gauge(
        obs::labeled("gate.queue_depth", {{"lane", "interactive"}}));

    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kInteractive, 5)));
    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kBatch, 7)));
    EXPECT_EQ(scheduler.backlog_numbers(), 12u);
    EXPECT_DOUBLE_EQ(interactive_depth.value(), 1.0);

    gate::GateTask task;
    ASSERT_TRUE(scheduler.pop(task));
    EXPECT_EQ(scheduler.backlog_numbers(), 7u);
    EXPECT_DOUBLE_EQ(interactive_depth.value(), 0.0);
}

TEST(GateScheduler, CloseDrainsThenReleasesWorkers)
{
    gate::LaneScheduler scheduler(4, 4);
    ASSERT_TRUE(scheduler.try_push(make_task(gate::Lane::kBatch, 1)));
    scheduler.close();
    EXPECT_FALSE(scheduler.try_push(make_task(gate::Lane::kBatch, 1)));
    gate::GateTask task;
    EXPECT_TRUE(scheduler.pop(task)) << "queued work drains";
    EXPECT_FALSE(scheduler.pop(task)) << "then workers are released";
}

TEST(GateScheduler, CloseWakesBlockedWorker)
{
    gate::LaneScheduler scheduler(4, 4);
    std::thread worker([&] {
        gate::GateTask task;
        EXPECT_FALSE(scheduler.pop(task));
    });
    scheduler.close();
    worker.join(); // must not hang
}

// ========================================================== GateRouter

TEST(GateRouter, RoutesByNameAndHotSwapsIndependently)
{
    gate::ModelRouter router;
    EXPECT_EQ(router.find("nope"), nullptr);

    router.publish("a", testutil::make_saved_model({1.0f, 2.0f}),
                   serve::Precision::kFloat32);
    router.publish("b", testutil::make_saved_model({3.0f}),
                   serve::Precision::kFloat32);
    ASSERT_NE(router.find("a"), nullptr);
    const std::uint64_t b_before = router.find("b")->current_version();

    // Republishing "a" bumps only "a".
    router.publish("a", testutil::make_saved_model({9.0f, 9.0f}),
                   serve::Precision::kFloat32);
    EXPECT_EQ(router.find("b")->current_version(), b_before);
    EXPECT_EQ(router.names(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(router.size(), 2u);
}

// ================================================== RequestQueueGauges

TEST(RequestQueueTelemetry, RejectionsAndDepthAreInstrumented)
{
    // The serve-tier queue satellite: shed work and standing depth must
    // be visible to an operator, not just return values.
    obs::MetricsRegistry registry;
    serve::RequestQueue queue(/*capacity=*/2, /*batch_hint=*/1, &registry);
    obs::Counter& rejected = registry.counter("serve.queue_rejected");
    obs::Gauge& depth = registry.gauge("serve.queue_depth");

    EXPECT_TRUE(queue.try_push(serve::Request{}));
    EXPECT_TRUE(queue.try_push(serve::Request{}));
    EXPECT_DOUBLE_EQ(depth.value(), 2.0);
    EXPECT_EQ(rejected.value(), 0u);

    EXPECT_FALSE(queue.try_push(serve::Request{}));
    EXPECT_FALSE(queue.try_push(serve::Request{}));
    EXPECT_EQ(rejected.value(), 2u);

    std::vector<serve::Request> batch;
    EXPECT_EQ(queue.pop_batch(batch, 8), 2u);
    EXPECT_DOUBLE_EQ(depth.value(), 0.0);

    queue.close();
    EXPECT_FALSE(queue.try_push(serve::Request{}));
    EXPECT_EQ(rejected.value(), 3u) << "post-close sheds count too";
}

// ======================================================== GateEndToEnd

/// Waits (bounded) for a cross-thread counter to settle. The event loop
/// counts an admission after handing the task to a worker, so a fast
/// worker's response can overtake the `gate.admitted` tick by a hair.
template <typename Predicate>
bool
eventually(Predicate predicate,
           std::chrono::milliseconds timeout = std::chrono::seconds(2))
{
    const auto give_up = std::chrono::steady_clock::now() + timeout;
    while (!predicate()) {
        if (std::chrono::steady_clock::now() > give_up) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

/// A gate over loopback with one float32 model, private metrics.
struct GateFixture
{
    gate::ModelRouter router;
    dmgc::PerfModel perf = dmgc::PerfModel::paper_model();
    obs::MetricsRegistry registry;
    std::unique_ptr<gate::GateServer> server;

    explicit GateFixture(gate::GateConfig config = {},
                         std::vector<float> weights = {0.5f, -1.0f, 2.0f,
                                                       0.25f})
    {
        router.publish("unit", testutil::make_saved_model(weights),
                       serve::Precision::kFloat32);
        config.metrics_registry = &registry;
        server = std::make_unique<gate::GateServer>(router, perf, config);
    }

    net::Address address() const
    {
        return {"127.0.0.1", server->port()};
    }
};

TEST(GateEndToEnd, ScoresDenseQ8AndSparseOverLoopback)
{
    GateFixture fixture;
    gate::GateClient client(fixture.address());
    ASSERT_TRUE(client.connected());

    gate::ScoreRequest request;
    request.request_id = 42;
    request.model = "unit";
    request.tenant = "test";
    request.dense = {1.0f, 2.0f, -1.0f, 4.0f};
    // dot = 0.5 - 2.0 - 2.0 + 1.0
    const float expected = -2.5f;

    const auto dense = client.call(request);
    ASSERT_TRUE(dense.has_value());
    EXPECT_EQ(dense->status, gate::Status::kOk);
    EXPECT_EQ(dense->request_id, 42u);
    EXPECT_FLOAT_EQ(dense->margin, expected);
    EXPECT_EQ(dense->model_version, 1u);

    gate::ScoreRequest q8 = request;
    q8.request_id = 43;
    q8.encoding = gate::FeatureEncoding::kDenseQ8;
    q8.scale = gate::quantize_features_q8(request.dense.data(),
                                          request.dense.size(), q8.q8);
    q8.dense.clear();
    const auto quantized = client.call(q8);
    ASSERT_TRUE(quantized.has_value());
    EXPECT_EQ(quantized->status, gate::Status::kOk);
    // Error budget: half a quantum per feature times |w|_1.
    EXPECT_NEAR(quantized->margin, expected, q8.scale / 2 * 3.75f + 1e-4f);

    gate::ScoreRequest sparse = request;
    sparse.request_id = 44;
    sparse.encoding = gate::FeatureEncoding::kSparseF32;
    sparse.index = {1, 3};
    sparse.dense = {2.0f, 4.0f};
    const auto sparse_response = client.call(sparse);
    ASSERT_TRUE(sparse_response.has_value());
    EXPECT_EQ(sparse_response->status, gate::Status::kOk);
    EXPECT_FLOAT_EQ(sparse_response->margin, -1.0f);

    EXPECT_TRUE(eventually([&] {
        const gate::GateStats stats = fixture.server->stats();
        return stats.admitted == 3 && stats.completed == 3 &&
            stats.shed == 0;
    })) << "admitted/completed/shed never settled at 3/3/0";
}

TEST(GateEndToEnd, UnknownModelIsNackedWithoutCharge)
{
    GateFixture fixture;
    gate::GateClient client(fixture.address());
    ASSERT_TRUE(client.connected());

    gate::ScoreRequest request;
    request.request_id = 2;
    request.model = "never-published";
    request.dense = {1.0f};
    const auto response = client.call(request);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, gate::Status::kUnknownModel);
    EXPECT_EQ(fixture.server->stats().shed, 1u);
}

TEST(GateEndToEnd, TenantRateLimitShedsExplicitly)
{
    gate::GateConfig config;
    config.admission.tenant_rate = 0.001; // effectively one-shot
    config.admission.tenant_burst = 1.0;
    GateFixture fixture(config);
    gate::GateClient client(fixture.address());
    ASSERT_TRUE(client.connected());

    gate::ScoreRequest request;
    request.request_id = 2;
    request.model = "unit";
    request.tenant = "greedy";
    request.dense = {1.0f, 1.0f, 1.0f, 1.0f};
    const auto first = client.call(request);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->status, gate::Status::kOk);

    request.request_id = 4;
    const auto second = client.call(request);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->status, gate::Status::kResourceExhausted);
    EXPECT_FALSE(second->message.empty()) << "shed must say why";
    EXPECT_EQ(fixture.server->stats().shed, 1u);
}

TEST(GateEndToEnd, MalformedPayloadNackedConnectionSurvives)
{
    GateFixture fixture;
    std::string error;
    net::Fd raw = net::connect_tcp(fixture.address(),
                                   std::chrono::milliseconds(2000), &error);
    ASSERT_TRUE(raw.valid()) << error;

    // Framing intact, payload garbage: the server must NACK kInvalid and
    // keep the connection — the stream is still in sync.
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(net::write_frame(raw.get(), junk, sizeof(junk)));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(net::read_frame(raw.get(), payload, 1u << 20),
              net::FrameResult::kOk);
    gate::ScoreResponse nack;
    ASSERT_TRUE(gate::deserialize(payload.data(), payload.size(), nack));
    EXPECT_EQ(nack.status, gate::Status::kInvalid);

    // Same socket, now a well-formed request: still served.
    gate::ScoreRequest request;
    request.request_id = 6;
    request.model = "unit";
    request.dense = {1.0f, 0.0f, 0.0f, 0.0f};
    const std::vector<std::uint8_t> bytes = serialize(request);
    ASSERT_TRUE(net::write_frame(raw.get(), bytes.data(), bytes.size()));
    ASSERT_EQ(net::read_frame(raw.get(), payload, 1u << 20),
              net::FrameResult::kOk);
    gate::ScoreResponse ok;
    ASSERT_TRUE(gate::deserialize(payload.data(), payload.size(), ok));
    EXPECT_EQ(ok.status, gate::Status::kOk);
    EXPECT_FLOAT_EQ(ok.margin, 0.5f);
    EXPECT_EQ(fixture.server->stats().malformed, 1u);
}

TEST(GateEndToEnd, BadMagicDropsConnectionButNotTheServer)
{
    GateFixture fixture;
    std::string error;
    net::Fd poisoned = net::connect_tcp(
        fixture.address(), std::chrono::milliseconds(2000), &error);
    ASSERT_TRUE(poisoned.valid()) << error;

    // A stream that desyncs (wrong magic) is unrecoverable: the server
    // must cut it loose rather than guess at frame boundaries.
    const char garbage[] = "NOTAFRAMENOTAFRAME";
    ASSERT_TRUE(
        net::write_full(poisoned.get(), garbage, sizeof(garbage)));
    char buf = 0;
    long got;
    // The drop shows up on our side as EOF or a reset.
    while ((got = ::recv(poisoned.get(), &buf, 1, 0)) == -1 &&
           errno == EINTR) {}
    EXPECT_TRUE(got == 0 || (got == -1 && errno == ECONNRESET))
        << "server should close a desynced connection, got=" << got;

    // The blast radius is that one socket: new clients still score.
    gate::GateClient client(fixture.address());
    ASSERT_TRUE(client.connected());
    gate::ScoreRequest request;
    request.request_id = 2;
    request.model = "unit";
    request.dense = {0.0f, 1.0f, 0.0f, 0.0f};
    const auto response = client.call(request);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, gate::Status::kOk);
    EXPECT_FLOAT_EQ(response->margin, -1.0f);
    EXPECT_GE(fixture.server->stats().malformed, 1u);
}

TEST(GateEndToEnd, StopIsIdempotentAndDrains)
{
    GateFixture fixture;
    fixture.server->stop();
    fixture.server->stop(); // second stop must be a no-op
}

// =================================================== GateConcurrency

TEST(GateConcurrency, ParallelTenantsAllGetAnswers)
{
    // The TSan target: event loop + workers + several pipelined clients
    // racing on one server. Every call must come back with SOME verdict
    // (scored or shed) — nothing hangs, nothing crashes.
    gate::GateConfig config;
    config.workers = 2;
    GateFixture fixture(config);

    constexpr int kThreads = 3;
    constexpr int kCalls = 40;
    std::atomic<int> answered{0};
    std::atomic<int> scored{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            gate::GateClient client(fixture.address());
            ASSERT_TRUE(client.connected());
            gate::ScoreRequest request;
            request.model = "unit";
            request.tenant = "tenant-" + std::to_string(t);
            request.dense = {1.0f, 1.0f, 1.0f, 1.0f};
            for (int i = 0; i < kCalls; ++i) {
                request.request_id =
                    static_cast<std::uint64_t>(t) * 1000 + 2 +
                    static_cast<std::uint64_t>(i) * 2;
                request.lane = (i % 2 != 0) ? gate::Lane::kBatch
                                            : gate::Lane::kInteractive;
                const auto response = client.call(request);
                if (!response.has_value()) continue;
                answered.fetch_add(1);
                if (response->status == gate::Status::kOk)
                    scored.fetch_add(1);
            }
        });
    }
    for (auto& thread : clients) thread.join();
    EXPECT_EQ(answered.load(), kThreads * kCalls);
    EXPECT_GT(scored.load(), 0);
    EXPECT_TRUE(eventually([&] {
        const gate::GateStats stats = fixture.server->stats();
        return stats.completed ==
            static_cast<std::uint64_t>(scored.load()) &&
            stats.admitted + stats.shed ==
            static_cast<std::uint64_t>(kThreads * kCalls);
    })) << "server stats never reconciled with client tallies";
}

} // namespace
} // namespace buckwild
