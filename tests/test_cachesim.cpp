/**
 * @file
 * Tests for the cache-hierarchy simulator: tag-array mechanics, MESI
 * coherence, the next-line prefetcher, the obstinate cache (§6.2), the
 * SGD trace driver, and the stale-read statistical harness (Fig 6f).
 */
#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "cachesim/hierarchy.h"
#include "cachesim/sgd_trace.h"
#include "cachesim/stale_sgd.h"
#include "dataset/problem.h"

namespace buckwild::cachesim {
namespace {

// ---------------------------------------------------------------- arrays

TEST(TagArray, HitAfterInstallMissOtherwise)
{
    TagArray tags({1024, 4, 1});
    std::uint64_t evicted = 0;
    bool dirty = false;
    EXPECT_EQ(tags.lookup(5), Mesi::kInvalid);
    EXPECT_FALSE(tags.install(5, Mesi::kShared, evicted, dirty));
    EXPECT_EQ(tags.lookup(5), Mesi::kShared);
    EXPECT_EQ(tags.lookup(6), Mesi::kInvalid);
}

TEST(TagArray, LruEvictionWithinSet)
{
    // 4 sets x 2 ways: lines 0, 4, 8 all map to set 0.
    TagArray tags({4 * 2 * kLineBytes, 2, 1});
    std::uint64_t evicted = 0;
    bool dirty = false;
    tags.install(0, Mesi::kShared, evicted, dirty);
    tags.install(4, Mesi::kModified, evicted, dirty);
    (void)tags.lookup(0); // 0 is now MRU, 4 is LRU
    EXPECT_TRUE(tags.install(8, Mesi::kShared, evicted, dirty));
    EXPECT_EQ(evicted, 4u);
    EXPECT_TRUE(dirty) << "evicted line was Modified";
    EXPECT_EQ(tags.lookup(0), Mesi::kShared);
    EXPECT_EQ(tags.lookup(4), Mesi::kInvalid);
    EXPECT_EQ(tags.lookup(8), Mesi::kShared);
}

TEST(TagArray, InvalidateReportsDirtiness)
{
    TagArray tags({1024, 4, 1});
    std::uint64_t evicted = 0;
    bool dirty = false;
    tags.install(3, Mesi::kModified, evicted, dirty);
    EXPECT_TRUE(tags.invalidate(3));
    EXPECT_FALSE(tags.invalidate(3)); // already gone
    tags.install(3, Mesi::kShared, evicted, dirty);
    EXPECT_FALSE(tags.invalidate(3)); // clean
}

TEST(TagArray, NonPowerOfTwoSetCountsUseModuloIndexing)
{
    // 3 sets x 1 way: lines 0 and 3 collide, 1 does not.
    TagArray tags({3 * kLineBytes, 1, 1});
    std::uint64_t evicted = 0;
    bool dirty = false;
    tags.install(0, Mesi::kShared, evicted, dirty);
    tags.install(1, Mesi::kShared, evicted, dirty);
    EXPECT_TRUE(tags.install(3, Mesi::kShared, evicted, dirty));
    EXPECT_EQ(evicted, 0u);
    EXPECT_EQ(tags.lookup(1), Mesi::kShared);
    EXPECT_THROW(TagArray({0, 1, 1}), std::runtime_error);
}

// ------------------------------------------------------------- coherence

ChipConfig
tiny_chip(std::size_t cores = 2)
{
    ChipConfig cfg;
    cfg.cores = cores;
    cfg.l1 = {4 * kLineBytes * 2, 2, 4};   // 8 lines
    cfg.l2 = {16 * kLineBytes * 2, 2, 12}; // 32 lines
    cfg.l3 = {256 * kLineBytes * 4, 4, 36};
    cfg.prefetcher = Prefetcher::kNone;
    return cfg;
}

TEST(Chip, ReadMissHitProgression)
{
    ChipConfig cfg = tiny_chip();
    Chip chip(cfg);
    // Cold read: L3 miss -> DRAM, overlapped as a streaming fill.
    EXPECT_DOUBLE_EQ(chip.read(0, 100), (36.0 + 200.0) / cfg.streaming_mlp);
    // Second read: pipelined L1 hit.
    EXPECT_DOUBLE_EQ(chip.read(0, 100), 4.0 / cfg.hit_mlp);
    EXPECT_EQ(chip.stats().dram_fills, 1u);
    EXPECT_EQ(chip.stats().l1_hits, 1u);
    // Other core: L3 hit. Core 0 only holds it clean (nobody wrote), so
    // this is still a prefetchable stream access, not a dirty transfer.
    EXPECT_DOUBLE_EQ(chip.read(1, 100), 36.0 / cfg.streaming_mlp);
    EXPECT_EQ(chip.stats().l3_hits, 1u);
}

TEST(Chip, WriteInvalidatesSharers)
{
    Chip chip(tiny_chip(3));
    chip.read(0, 7);
    chip.read(1, 7);
    chip.read(2, 7);
    // Core 0 writes: cores 1 and 2 must lose their copies.
    chip.write(0, 7);
    EXPECT_EQ(chip.stats().invalidates_sent, 2u);
    EXPECT_EQ(chip.stats().invalidates_ignored, 0u);
    // Core 1 re-read: satisfied on-chip (L3), not from its own L1.
    const double latency = chip.read(1, 7);
    EXPECT_GE(latency, 36.0);
}

TEST(Chip, ExclusiveSilentUpgrade)
{
    Chip chip(tiny_chip());
    chip.read(0, 9); // sole reader -> E
    // E -> M upgrade is silent: L1-latency write, no invalidates.
    EXPECT_DOUBLE_EQ(chip.write(0, 9), 4.0);
    EXPECT_EQ(chip.stats().invalidates_sent, 0u);
}

TEST(Chip, SharedUpgradePaysDirectoryTrip)
{
    Chip chip(tiny_chip());
    ChipConfig cfg2 = tiny_chip();
    Chip& c2 = chip;
    (void)cfg2;
    c2.read(0, 9);
    c2.read(1, 9); // both S
    const double latency = c2.write(0, 9);
    // Directory trip plus one invalidate fan-out.
    EXPECT_DOUBLE_EQ(latency, 12.0 + 36.0 + tiny_chip().invalidate_cost);
    EXPECT_EQ(chip.stats().upgrades, 1u);
    EXPECT_EQ(chip.stats().invalidates_sent, 1u);
}

TEST(Chip, ModifiedOwnerDowngradesOnRemoteRead)
{
    Chip chip(tiny_chip());
    chip.read(0, 11);
    chip.write(0, 11); // core 0 has M
    chip.read(1, 11);  // forces downgrade
    // Core 0 writing again must now upgrade (it is S).
    const double latency = chip.write(0, 11);
    EXPECT_GT(latency, 4.0);
    EXPECT_GE(chip.stats().upgrades, 1u);
}

TEST(Chip, ObstinateCacheIgnoresInvalidatesOnModelLines)
{
    ChipConfig cfg = tiny_chip(2);
    cfg.obstinacy = 1.0; // always obstinate
    Chip chip(cfg);
    chip.set_model_range(0, 100);
    chip.read(0, 50);
    chip.read(1, 50);
    chip.write(0, 50);
    EXPECT_EQ(chip.stats().invalidates_sent, 1u);
    EXPECT_EQ(chip.stats().invalidates_ignored, 1u);
    // Core 1 still hits locally (stale data — that's the point).
    EXPECT_DOUBLE_EQ(chip.read(1, 50), 4.0 / cfg.hit_mlp);
    EXPECT_GE(chip.stats().stale_reads, 1u);
}

TEST(Chip, ObstinacyDoesNotApplyOutsideModelRange)
{
    ChipConfig cfg = tiny_chip(2);
    cfg.obstinacy = 1.0;
    Chip chip(cfg);
    chip.set_model_range(0, 10);
    chip.read(0, 50);
    chip.read(1, 50);
    chip.write(0, 50); // line 50 is not model: invalidate is honored
    EXPECT_EQ(chip.stats().invalidates_ignored, 0u);
    EXPECT_GE(chip.read(1, 50), 36.0);
}

TEST(Chip, ObstinacyIsProbabilistic)
{
    ChipConfig cfg = tiny_chip(2);
    cfg.obstinacy = 0.5;
    Chip chip(cfg);
    chip.set_model_range(0, 1 << 20);
    std::uint64_t ignored_before = 0;
    for (std::uint64_t line = 0; line < 400; ++line) {
        chip.read(0, line);
        chip.read(1, line);
        chip.write(0, line);
        ignored_before = chip.stats().invalidates_ignored;
    }
    const double rate = static_cast<double>(ignored_before) / 400.0;
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

TEST(Chip, PrefetcherFetchesNextLine)
{
    ChipConfig cfg = tiny_chip(1);
    cfg.prefetcher = Prefetcher::kNextLine;
    Chip chip(cfg);
    chip.read(0, 200); // demand miss; prefetches 201
    EXPECT_EQ(chip.stats().prefetches_issued, 1u);
    // 201 now hits in L2 (prefetched), not DRAM.
    const double latency = chip.read(0, 201);
    EXPECT_DOUBLE_EQ(latency, 12.0 / cfg.hit_mlp);
    EXPECT_EQ(chip.stats().prefetch_hits, 1u);
}

TEST(Chip, AdjacentLinePrefetcherFetchesPairBuddy)
{
    ChipConfig cfg = tiny_chip(1);
    cfg.prefetcher = Prefetcher::kAdjacentLine;
    Chip chip(cfg);
    chip.read(0, 200); // even line: buddy is 201
    EXPECT_EQ(chip.stats().prefetches_issued, 1u);
    EXPECT_DOUBLE_EQ(chip.read(0, 201), 12.0 / cfg.hit_mlp);
    // Odd line: buddy is the *previous* line.
    chip.read(0, 301);
    EXPECT_DOUBLE_EQ(chip.read(0, 300), 12.0 / cfg.hit_mlp);
}

TEST(Chip, Stream2PrefetcherFetchesTwoLines)
{
    ChipConfig cfg = tiny_chip(1);
    cfg.prefetcher = Prefetcher::kStream2;
    Chip chip(cfg);
    chip.read(0, 400);
    EXPECT_EQ(chip.stats().prefetches_issued, 2u);
    EXPECT_DOUBLE_EQ(chip.read(0, 401), 12.0 / cfg.hit_mlp);
    EXPECT_DOUBLE_EQ(chip.read(0, 402), 12.0 / cfg.hit_mlp);
}

TEST(Chip, PrefetcherNames)
{
    EXPECT_STREQ(to_string(Prefetcher::kNone), "off");
    EXPECT_STREQ(to_string(Prefetcher::kNextLine), "next-line");
    EXPECT_STREQ(to_string(Prefetcher::kAdjacentLine), "adjacent-line");
    EXPECT_STREQ(to_string(Prefetcher::kStream2), "stream-2");
}

TEST(Chip, PrefetchedModelLinesCanBeInvalidatedBeforeUse)
{
    // The §5.3 pathology: a prefetched model line is invalidated by
    // another core's write before the prefetching core ever uses it.
    ChipConfig cfg = tiny_chip(2);
    cfg.prefetcher = Prefetcher::kNextLine;
    Chip chip(cfg);
    chip.set_model_range(0, 1000);
    chip.read(0, 300);  // core 0 prefetches 301
    chip.read(1, 301);
    chip.write(1, 301); // invalidates core 0's prefetched copy
    EXPECT_GE(chip.stats().prefetched_invalidated, 1u);
}

TEST(Chip, RejectsBadCoreCount)
{
    ChipConfig cfg = tiny_chip();
    cfg.cores = 0;
    EXPECT_THROW(Chip{cfg}, std::runtime_error);
    cfg.cores = 64;
    EXPECT_THROW(Chip{cfg}, std::runtime_error);
}

// ------------------------------------------------------------- SGD trace

SgdWorkload
small_work(std::size_t n)
{
    SgdWorkload w;
    w.model_size = n;
    w.iterations_per_core = 8;
    return w;
}

TEST(SgdTrace, ProcessesExpectedNumbers)
{
    ChipConfig chip;
    chip.cores = 4;
    const auto r = simulate_sgd(chip, small_work(1 << 12));
    EXPECT_EQ(r.numbers_processed, 4.0 * 8.0 * 4096.0);
    EXPECT_GT(r.wall_cycles, 0.0);
    EXPECT_GT(r.gnps(2.5), 0.0);
}

TEST(SgdTrace, SmallSharedModelsSufferInvalidations)
{
    // Fig 2 / Fig 6c mechanism: per-number cost rises as the model
    // shrinks because model lines ping-pong between writers.
    ChipConfig chip;
    chip.cores = 8;
    const auto small = simulate_sgd(chip, small_work(1 << 10));
    const auto large = simulate_sgd(chip, small_work(1 << 18));
    const double small_cpn = small.wall_cycles / small.numbers_processed;
    const double large_cpn = large.wall_cycles / large.numbers_processed;
    EXPECT_GT(small_cpn, large_cpn * 1.5)
        << "small=" << small_cpn << " large=" << large_cpn;
    EXPECT_GT(small.stats.invalidates_sent, 0u);
}

TEST(SgdTrace, ObstinateCacheRecoversSmallModelThroughput)
{
    // Fig 6c: q ~ 0.5+ removes most of the small-model coherence cost.
    ChipConfig chip;
    chip.cores = 8;
    const auto base = simulate_sgd(chip, small_work(1 << 10));
    chip.obstinacy = 0.95;
    const auto obstinate = simulate_sgd(chip, small_work(1 << 10));
    EXPECT_LT(obstinate.wall_cycles, base.wall_cycles)
        << "ignoring invalidates must reduce coherence stalls";
    EXPECT_GT(obstinate.stats.invalidates_ignored, 0u);
}

TEST(SgdTrace, PrefetchOffHelpsSmallModels)
{
    // Fig 6a: for small models the prefetcher wastes bandwidth on lines
    // that are invalidated before use.
    ChipConfig chip;
    chip.cores = 8;
    chip.prefetcher = Prefetcher::kNextLine;
    const auto on = simulate_sgd(chip, small_work(1 << 10));
    chip.prefetcher = Prefetcher::kNone;
    const auto off = simulate_sgd(chip, small_work(1 << 10));
    EXPECT_LE(off.wall_cycles, on.wall_cycles * 1.02);
    EXPECT_GT(on.stats.prefetches_issued, 0u);
}

TEST(SgdTrace, LowerPrecisionMovesFewerLines)
{
    ChipConfig chip;
    chip.cores = 4;
    SgdWorkload w8 = small_work(1 << 16);
    w8.dataset_bits = 8;
    w8.model_bits = 8;
    SgdWorkload w32 = w8;
    w32.dataset_bits = 32;
    w32.model_bits = 32;
    const auto r8 = simulate_sgd(chip, w8);
    const auto r32 = simulate_sgd(chip, w32);
    EXPECT_LT(r8.wall_cycles, r32.wall_cycles)
        << "8-bit traffic is a quarter of 32-bit traffic";
    // Near-linear: the ratio should be in the ballpark of 4.
    EXPECT_GT(r32.wall_cycles / r8.wall_cycles, 2.0);
}

TEST(SgdTrace, MiniBatchReducesModelWriteTraffic)
{
    // Fig 6d: larger B means fewer model writes -> fewer invalidations.
    ChipConfig chip;
    chip.cores = 8;
    SgdWorkload w = small_work(1 << 10);
    w.iterations_per_core = 32;
    const auto b1 = simulate_sgd(chip, w);
    w.batch_size = 16;
    const auto b16 = simulate_sgd(chip, w);
    EXPECT_LT(b16.stats.invalidates_sent, b1.stats.invalidates_sent);
}

TEST(SgdTrace, SparseWorkloadTouchesFewerNumbers)
{
    ChipConfig chip;
    chip.cores = 4;
    SgdWorkload dense = small_work(1 << 14);
    SgdWorkload sparse = dense;
    sparse.density = 0.03;
    sparse.index_bits = 16;
    const auto rd = simulate_sgd(chip, dense);
    const auto rs = simulate_sgd(chip, sparse);
    // 3% density: ~3% of the numbers per iteration.
    EXPECT_NEAR(rs.numbers_processed / rd.numbers_processed, 0.03, 0.005);
    EXPECT_LT(rs.wall_cycles, rd.wall_cycles);
    // But the per-number cost is higher (irregular accesses + index
    // stream) — the paper's sparse sub-linearity.
    EXPECT_GT(rs.wall_cycles / rs.numbers_processed,
              rd.wall_cycles / rd.numbers_processed);
}

TEST(SgdTrace, SparseIndexPrecisionReducesTraffic)
{
    ChipConfig chip;
    chip.cores = 2;
    SgdWorkload w32 = small_work(1 << 14);
    w32.density = 0.05;
    w32.index_bits = 32;
    SgdWorkload w8 = w32;
    w8.index_bits = 8;
    const auto r32 = simulate_sgd(chip, w32);
    const auto r8 = simulate_sgd(chip, w8);
    EXPECT_LT(r8.stats.dram_fills, r32.stats.dram_fills)
        << "narrower indices move fewer dataset lines";
}

TEST(SgdTrace, SparseRejectsBadConfig)
{
    ChipConfig chip;
    SgdWorkload w = small_work(64);
    w.density = 0.0;
    EXPECT_THROW(simulate_sgd(chip, w), std::runtime_error);
    w.density = 0.5;
    w.batch_size = 4;
    EXPECT_THROW(simulate_sgd(chip, w), std::runtime_error);
}

TEST(SgdTrace, RejectsZeroBatch)
{
    ChipConfig chip;
    SgdWorkload w = small_work(64);
    w.batch_size = 0;
    EXPECT_THROW(simulate_sgd(chip, w), std::runtime_error);
}

// -------------------------------------------------------- stale-read SGD

TEST(StaleSgd, ConvergesWithoutStaleness)
{
    const auto p = dataset::generate_logistic_dense(64, 1500, 77);
    StaleSgdConfig cfg;
    cfg.workers = 4;
    cfg.epochs = 10;
    const auto r = train_with_stale_reads(p, cfg);
    EXPECT_LT(r.final_loss, 0.5);
    EXPECT_GT(r.accuracy, 0.78);
    EXPECT_EQ(r.stale_line_reads, 0u);
}

TEST(StaleSgd, HighObstinacyBarelyAffectsQuality)
{
    // Fig 6f: "no detectable effect on statistical efficiency, even when
    // q is as high as 95%".
    const auto p = dataset::generate_logistic_dense(64, 1500, 78);
    StaleSgdConfig cfg;
    cfg.workers = 18;
    cfg.epochs = 10;
    const auto base = train_with_stale_reads(p, cfg);
    cfg.obstinacy = 0.95;
    const auto stale = train_with_stale_reads(p, cfg);
    EXPECT_GT(stale.stale_line_reads, 0u);
    EXPECT_NEAR(stale.final_loss, base.final_loss, 0.05)
        << "q=0.95 must be statistically indistinguishable";
}

TEST(StaleSgd, RejectsBadParameters)
{
    const auto p = dataset::generate_logistic_dense(8, 50, 79);
    StaleSgdConfig cfg;
    cfg.workers = 0;
    EXPECT_THROW(train_with_stale_reads(p, cfg), std::runtime_error);
    cfg.workers = 2;
    cfg.obstinacy = 1.5;
    EXPECT_THROW(train_with_stale_reads(p, cfg), std::runtime_error);
}

} // namespace
} // namespace buckwild::cachesim
