/**
 * @file
 * Tests for the proposed-ISA substrate (§6.1): functional 4-bit kernels,
 * proxy-kernel plumbing (timing proxies produce *some* result without
 * touching out-of-bounds memory), and the instruction cost model.
 */
#include <gtest/gtest.h>

#include <vector>

#include "fixed/nibble.h"
#include "isa/cost_model.h"
#include "isa/nibble_kernels.h"
#include "isa/proxy_kernels.h"
#include "rng/xorshift.h"
#include "util/aligned_buffer.h"

namespace buckwild::isa {
namespace {

std::vector<std::uint8_t>
pack_values(const std::vector<int>& vals)
{
    std::vector<std::uint8_t> packed(fixed::packed_nibble_bytes(vals.size()),
                                     0);
    for (std::size_t i = 0; i < vals.size(); ++i)
        fixed::store_nibble(packed.data(), i, vals[i]);
    return packed;
}

// ------------------------------------------------------- functional 4-bit

TEST(Nibble4Bit, DotComputesExactProducts)
{
    const auto x = pack_values({1, -2, 3, -4, 5, 6, -7, 0, 7});
    const auto w = pack_values({2, 2, 2, 2, 2, -1, 1, 5, -7});
    // 2 -4 +6 -8 +10 -6 -7 +0 -49 = -56
    EXPECT_FLOAT_EQ(dot_d4m4(x.data(), w.data(), 9, 1.0f), -56.0f);
    EXPECT_FLOAT_EQ(dot_d4m4(x.data(), w.data(), 9, 0.25f), -14.0f);
    EXPECT_FLOAT_EQ(dot_d4m4(x.data(), w.data(), 0, 1.0f), 0.0f);
}

TEST(Nibble4Bit, AxpyBiasedRounding)
{
    // c = 1.0 (mult 16, shift 4), biased dither 8: delta = x exactly.
    auto w = pack_values({0, 0, 0, 0});
    const auto x = pack_values({1, -1, 3, -4});
    axpy_d4m4(w.data(), x.data(), 4, make_scalar_d4m4(1.0f),
              simd::biased_fixed(kShiftD4M4));
    EXPECT_EQ(fixed::load_nibble(w.data(), 0), 1);
    EXPECT_EQ(fixed::load_nibble(w.data(), 1), -1);
    EXPECT_EQ(fixed::load_nibble(w.data(), 2), 3);
    EXPECT_EQ(fixed::load_nibble(w.data(), 3), -4);
}

TEST(Nibble4Bit, AxpySaturatesSymmetrically)
{
    auto w = pack_values({7, -7});
    const auto x = pack_values({7, -7});
    axpy_d4m4(w.data(), x.data(), 2, make_scalar_d4m4(1.0f),
              simd::biased_fixed(kShiftD4M4));
    EXPECT_EQ(fixed::load_nibble(w.data(), 0), 7);
    EXPECT_EQ(fixed::load_nibble(w.data(), 1), -7);
}

TEST(Nibble4Bit, AxpyUnbiasedInExpectation)
{
    // c = 0.25: E[delta per unit x] = 0.25. Average over many dithers.
    rng::Xorshift128 gen(5);
    double sum = 0.0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
        simd::DitherBlock d;
        for (auto& b : d.bytes) b = static_cast<std::uint8_t>(gen());
        auto w = pack_values({0});
        const auto x = pack_values({1});
        axpy_d4m4(w.data(), x.data(), 1, make_scalar_d4m4(0.25f), d);
        sum += fixed::load_nibble(w.data(), 0);
    }
    EXPECT_NEAR(sum / kTrials, 0.25, 0.02);
}

TEST(Nibble4Bit, ScalarClamping)
{
    EXPECT_EQ(make_scalar_d4m4(0.5f).mult, 8);
    EXPECT_EQ(make_scalar_d4m4(0.5f).shift, kShiftD4M4);
    EXPECT_EQ(make_scalar_d4m4(1000.0f).mult, kMultLimitD4M4);
    EXPECT_EQ(make_scalar_d4m4(-1000.0f).mult, -kMultLimitD4M4);
}

// ------------------------------------------------------------ proxies

TEST(ProxyKernels, RunOverArbitrarySizesWithoutCorruption)
{
    // Proxies produce invalid *values* but must be memory-safe and
    // deterministic. Guard bytes at the end of w must stay intact.
    for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 100u, 1024u}) {
        buckwild::AlignedBuffer<std::int8_t> x(n + 64), w(n + 64);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<std::int8_t>(i * 7 + 1);
            w[i] = static_cast<std::int8_t>(i * 3 + 2);
        }
        for (std::size_t i = n; i < n + 64; ++i) w[i] = 111;
        (void)dot_d8m8_fused_proxy(x.data(), w.data(), n);
        axpy_d8m8_fused_proxy(w.data(), x.data(), n,
                              simd::make_scalar_d8m8(0.5f));
        // The AXPY proxy may write up to the next multiple of 32 within
        // [0, n) scalar tail; bytes beyond the rounded region are guarded.
        for (std::size_t i = ((n + 31) / 32) * 32 + 32; i < n + 64; ++i)
            EXPECT_EQ(w[i], 111) << "guard byte " << i;
    }
}

TEST(ProxyKernels, FourBitProxiesTouchHalfTheBytes)
{
    constexpr std::size_t kN = 256; // logical 4-bit elements
    buckwild::AlignedBuffer<std::uint8_t> x(kN), w(kN);
    for (std::size_t i = 0; i < kN; ++i) w[i] = 7;
    (void)dot_d4m4_proxy(x.data(), w.data(), kN);
    axpy_d4m4_proxy(w.data(), x.data(), kN, simd::make_scalar_d8m8(0.5f));
    // Only the first kN/2 bytes are the packed array; the rest untouched.
    for (std::size_t i = kN / 2 + 32; i < kN; ++i) EXPECT_EQ(w[i], 7);
}

// ---------------------------------------------------------- cost model

TEST(CostModel, HandBeatsCompilerForLowPrecision)
{
    for (int bits : {8, 16}) {
        const double speedup = predicted_speedup(
            bits, bits, Strategy::kCompilerFloatCast, Strategy::kHandAvx2);
        EXPECT_GT(speedup, 2.0) << bits << " bits";
    }
    // Full precision: nothing to gain (compiler emits good FMA code).
    const double fp = predicted_speedup(32, 32,
                                        Strategy::kCompilerFloatCast,
                                        Strategy::kHandAvx2);
    EXPECT_NEAR(fp, 2.0, 1.0); // small constant-factor advantage at most
}

TEST(CostModel, ProposedInstructionsCollapseTheLoop)
{
    const LoopCost proposed = loop_cost(8, 8, Strategy::kProposedIsa);
    EXPECT_EQ(proposed.dot_instructions, 1);
    EXPECT_EQ(proposed.axpy_instructions, 2);
    // "These instructions are sufficient to compute the inner loop bodies
    // of dot and AXPY with one and two instructions, respectively."
    EXPECT_GT(predicted_speedup(8, 8, Strategy::kHandAvx2,
                                Strategy::kProposedIsa),
              1.0);
}

TEST(CostModel, PerElementMonotoneInPrecision)
{
    // Fewer bits -> more elements per vector -> fewer instructions per
    // element (the whole point of low-precision SIMD).
    const double c8 = loop_cost(8, 8, Strategy::kHandAvx2).per_element();
    const double c16 = loop_cost(16, 16, Strategy::kHandAvx2).per_element();
    const double c32 = loop_cost(32, 32, Strategy::kHandAvx2).per_element();
    EXPECT_LT(c8, c16 * 1.05);
    EXPECT_LT(c16, c32 * 5.0); // float FMA is compact; allow slack
    EXPECT_EQ(loop_cost(8, 8, Strategy::kHandAvx2).elements_per_vector, 32);
    EXPECT_EQ(loop_cost(16, 16, Strategy::kHandAvx2).elements_per_vector,
              16);
}

TEST(CostModel, FourBitOnlyViaProposedIsa)
{
    const LoopCost c4 = loop_cost(4, 4, Strategy::kProposedIsa);
    EXPECT_EQ(c4.elements_per_vector, 64);
    EXPECT_LT(c4.per_element(),
              loop_cost(8, 8, Strategy::kProposedIsa).per_element());
}

TEST(CostModel, Names)
{
    EXPECT_EQ(to_string(Strategy::kCompilerFloatCast), "compiler");
    EXPECT_EQ(to_string(Strategy::kHandAvx2), "avx2");
    EXPECT_EQ(to_string(Strategy::kProposedIsa), "proposed");
}

} // namespace
} // namespace buckwild::isa
