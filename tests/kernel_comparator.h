/**
 * @file
 * KernelComparator: exhaustive registry-driven equivalence harness.
 *
 * Instead of hand-picked size lists per suite, the comparator enumerates
 * the KernelLibrary itself: for every op it pulls every registered
 * variant that is runnable on this host and checks it against the
 * kReference variant over *all* dimensions 0..129 (every sub-vector /
 * exact-vector / vector+tail shape for 8-, 16-, 32- and 64-lane
 * kernels), three large odd sizes, and three pointer mis-alignments.
 * New variants (a future AVX-512 lowp path, say) are covered the moment
 * they register — no test edit required.
 *
 * Tolerance classes reproduce the per-kernel contracts the old
 * hand-written suites pinned:
 *  - fixed x fixed dots: bit-exact for the hand-vectorized variants,
 *    relative tolerance for the compiler-vectorized naive build;
 *  - float-accumulating dots: summation-order tolerance 1e-4 * (n + 1);
 *  - fixed-model AXPYs: bit-exact vectorized, <= 1 model quantum naive;
 *  - float-model AXPYs: per-element 1e-5;
 *  - every lowp array kernel: bit-exact (that is the §5.2 promise).
 */
#ifndef BUCKWILD_TESTS_KERNEL_COMPARATOR_H
#define BUCKWILD_TESTS_KERNEL_COMPARATOR_H

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "fixed/fixed_point.h"
#include "lowp/grid.h"
#include "lowp/round.h"
#include "rng/xorshift.h"
#include "simd/fixed_scalar.h"
#include "simd/ops.h"
#include "simd/registry.h"
#include "simd/sparse_ops.h"
#include "util/aligned_buffer.h"

namespace buckwild::testutil {

// ---------------------------------------------------------------------
// The sweep grid
// ---------------------------------------------------------------------

/// Every dimension 0..129 — denser than any kernel's lane count — plus
/// large odd sizes that force many full vectors and a ragged tail.
inline const std::vector<std::size_t>&
comparator_dims()
{
    static const std::vector<std::size_t> kDims = [] {
        std::vector<std::size_t> dims;
        for (std::size_t n = 0; n <= 129; ++n) dims.push_back(n);
        for (std::size_t n : {255u, 1000u, 4097u}) dims.push_back(n);
        return dims;
    }();
    return kDims;
}

/// Element offsets added to the (aligned) buffer base, so every kernel
/// also runs against unaligned input and output pointers.
inline constexpr std::size_t kComparatorOffsets[] = {0, 1, 3};

// ---------------------------------------------------------------------
// Deterministic data generators (shared by test_simd and test_lowp)
// ---------------------------------------------------------------------

/// Fixed-rep test vectors in [-lim, lim]. Model reps obey the symmetric
/// contract (lim = 127 / 32767); dataset reps may use the full range.
template <typename T>
AlignedBuffer<T>
comparator_fixed(std::size_t n, std::uint32_t seed, int lim)
{
    rng::Xorshift128 gen(seed);
    AlignedBuffer<T> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] =
            static_cast<T>(static_cast<int>(gen() % (2 * lim + 1)) - lim);
    return buf;
}

inline AlignedBuffer<float>
comparator_floats(std::size_t n, std::uint32_t seed, float scale = 1.0f)
{
    rng::Xorshift128 gen(seed);
    AlignedBuffer<float> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = (rng::to_unit_float(gen()) * 2.0f - 1.0f) * scale;
    return buf;
}

inline simd::DitherBlock
comparator_dither(std::uint32_t seed)
{
    rng::Xorshift128 gen(seed);
    simd::DitherBlock block;
    for (auto& b : block.bytes) b = static_cast<std::uint8_t>(gen());
    return block;
}

// ---------------------------------------------------------------------
// Span asserts (gtest machinery engages only on mismatch)
// ---------------------------------------------------------------------

template <typename T>
void
expect_span_eq(const T* want, const T* got, std::size_t n,
               const std::string& what)
{
    for (std::size_t i = 0; i < n; ++i)
        if (!(want[i] == got[i])) {
            ADD_FAILURE() << what << " [" << i << "/" << n
                          << "]: want " << +want[i] << " got " << +got[i];
            return;
        }
}

template <typename T>
void
expect_span_near(const T* want, const T* got, std::size_t n, double tol,
                 const std::string& what)
{
    for (std::size_t i = 0; i < n; ++i)
        if (!(std::fabs(static_cast<double>(want[i]) -
                        static_cast<double>(got[i])) <= tol)) {
            ADD_FAILURE() << what << " [" << i << "/" << n << "]: want "
                          << +want[i] << " got " << +got[i] << " tol "
                          << tol;
            return;
        }
}

// ---------------------------------------------------------------------
// Variant enumeration
// ---------------------------------------------------------------------

/// The registered non-reference variants of `op` that can execute on
/// this host, paired with their exact functions (no fallback: runnable
/// variants resolve to themselves).
template <typename Fn>
std::vector<std::pair<simd::Impl, Fn>>
comparator_variants(const char* op)
{
    const auto& lib = simd::KernelLibrary::instance();
    std::vector<std::pair<simd::Impl, Fn>> out;
    for (simd::Impl impl : lib.registered(op)) {
        if (impl == simd::Impl::kReference || !lib.runnable(op, impl))
            continue;
        out.emplace_back(impl, lib.get<Fn>(op, impl));
    }
    return out;
}

// ---------------------------------------------------------------------
// Dense (D, M) pair comparator
// ---------------------------------------------------------------------

namespace detail {

/// Per-pair sweep parameters, derived from the rep types: the quanta
/// reproduce the magnitudes the historical suites pinned (scale 1/4096
/// on the integer paths, 0.01 / 1e-4 on the mixed float paths), and
/// `c_scale` keeps the adapter-converted AXPY coefficient in each
/// kernel's exercised range.
template <typename D, typename M>
struct DensePairSweep
{
    static constexpr bool kFixedD = !std::is_same_v<D, float>;
    static constexpr bool kFixedM = !std::is_same_v<M, float>;
    /// Bit-exactness is promised only on the all-integer paths; any
    /// float accumulation is order-sensitive.
    static constexpr bool kDotBitExact = kFixedD && kFixedM;

    static constexpr int
    dlim()
    {
        return sizeof(D) == 1 ? 128 : 32767; // dataset rep: full range
    }
    static constexpr int
    mlim()
    {
        return sizeof(M) == 1 ? 127 : 32767; // model rep: symmetric
    }

    static constexpr float
    qx()
    {
        if constexpr (!kFixedD) return 1.0f;
        else if constexpr (!kFixedM) // d8mf / d16mf: dot scale is qx
            return sizeof(D) == 1 ? 0.01f : 1e-4f;
        else
            return 1.0f / 64.0f;
    }
    static constexpr float
    qm()
    {
        if constexpr (!kFixedM) return 1.0f;
        else if constexpr (!kFixedD) // dfm8 / dfm16: dot scale is qm
            return sizeof(M) == 1 ? 0.01f : 1e-4f;
        else
            return 1.0f / 64.0f;
    }

    /// Scales the raw coefficient table so the adapter's converted
    /// coefficient (make_scalar(c*qx/qm), c/qm, or c*qx) lands in the
    /// range the old per-pair suites exercised.
    static constexpr float
    c_scale()
    {
        if constexpr (kFixedD && kFixedM) return 1.0f;
        else if constexpr (!kFixedD && kFixedM)
            return sizeof(M) == 1 ? 3.0f : 0.03f;
        else if constexpr (kFixedD && !kFixedM)
            return sizeof(D) == 1 ? 0.1f : 0.01f;
        else
            return 0.01f;
    }

    /// Extra shrink for the naive baseline's coefficient. The exact
    /// contract saturates the *delta* into int16 (vpaddsw semantics)
    /// before the model add; the naive float baseline clamps only the
    /// final value, so the two agree within a quantum only while the
    /// per-element delta stays in int16 range. D16M16 is the one pair
    /// that can exceed it (|c| * 32767 quanta); halving the table keeps
    /// |c| <= 0.95 there. The vectorized variants still run the full
    /// saturating coefficient.
    static constexpr float
    naive_c_scale()
    {
        return sizeof(D) == 2 && kFixedM && sizeof(M) == 2 ? 0.5f : 1.0f;
    }

    /// The biased-rounding dither block for this pair's AXPY shift.
    static simd::DitherBlock
    biased_block()
    {
        using namespace simd;
        if constexpr (kFixedD && kFixedM) {
            constexpr int shift =
                sizeof(M) == 1 ? (sizeof(D) == 1 ? kShiftD8M8 : kShiftD16M8)
                               : (sizeof(D) == 1 ? kShiftD8M16
                                                 : kShiftD16M16);
            return biased_fixed(shift);
        } else {
            return biased_unit(); // float-dataset and float-model paths
        }
    }
};

template <typename T>
AlignedBuffer<T>
comparator_data(std::size_t n, std::uint32_t seed, int lim)
{
    if constexpr (std::is_same_v<T, float>)
        return comparator_floats(n, seed);
    else
        return comparator_fixed<T>(n, seed, lim);
}

} // namespace detail

/**
 * Sweeps every runnable registered variant of one Table-2 (D, M) pair's
 * dot and AXPY against the reference variant over comparator_dims() x
 * kComparatorOffsets, both dither modes, and a rotating coefficient
 * table, applying the pair's tolerance class.
 */
template <typename D, typename M>
void
compare_dense_pair()
{
    using Ops = simd::DenseOps<D, M>;
    using Names = simd::DensePairNames<D, M>;
    using Sweep = detail::DensePairSweep<D, M>;
    using DotFn = typename Ops::DotFn;
    using AxpyFn = typename Ops::AxpyFn;

    simd::register_dense_kernels();
    const auto& lib = simd::KernelLibrary::instance();
    const auto dots = comparator_variants<DotFn>(Names::dot);
    const auto axpys = comparator_variants<AxpyFn>(Names::axpy);
    // naive + reference are unconditional, so something beyond the
    // reference must be runnable in every build.
    ASSERT_FALSE(dots.empty()) << Names::dot;
    ASSERT_FALSE(axpys.empty()) << Names::axpy;
    const DotFn ref_dot =
        lib.get<DotFn>(Names::dot, simd::Impl::kReference);
    const AxpyFn ref_axpy =
        lib.get<AxpyFn>(Names::axpy, simd::Impl::kReference);

    constexpr float kCs[] = {0.5f, -0.25f, 1.5f, -1.9f, 0.03f, 0.9f};
    const float qx = Sweep::qx(), qm = Sweep::qm();
    const simd::DitherBlock biased = Sweep::biased_block();

    for (std::size_t n : comparator_dims()) {
        for (std::size_t off : kComparatorOffsets) {
            const auto s =
                static_cast<std::uint32_t>(0x9E3779B9u * n + 77u * off);
            const auto xbuf =
                detail::comparator_data<D>(n + off, s + 1, Sweep::dlim());
            const auto wbuf =
                detail::comparator_data<M>(n + off, s + 2, Sweep::mlim());
            const D* x = xbuf.data() + off;
            const M* w = wbuf.data() + off;

            const float r = ref_dot(x, w, n, qx, qm);
            for (const auto& [impl, fn] : dots) {
                const float v = fn(x, w, n, qx, qm);
                const std::string what =
                    std::string(Names::dot) + " " + simd::to_string(impl) +
                    " n=" + std::to_string(n) +
                    " off=" + std::to_string(off);
                if (Sweep::kDotBitExact && simd::is_vectorized(impl))
                    EXPECT_EQ(r, v) << what;
                else
                    EXPECT_NEAR(r, v,
                                1e-4f * (static_cast<float>(n) + 1.0f) +
                                    std::fabs(r) * 1e-4f + 1e-3f)
                        << what;
            }

            const float c = kCs[(n + off) % 6] * Sweep::c_scale();
            for (int mode = 0; mode < 2; ++mode) {
                const simd::DitherBlock d =
                    mode == 0 ? biased : comparator_dither(s + 3);
                // Two coefficient passes: pass 0 runs the full (possibly
                // delta-saturating) coefficient against the exact-contract
                // variants; pass 1 re-derives the reference under the
                // naive baseline's saturation-free coefficient and checks
                // only the naive variant against it.
                for (int pass = 0; pass < 2; ++pass) {
                    const float cc =
                        pass == 0 ? c : c * Sweep::naive_c_scale();
                    auto w_ref = wbuf;
                    ref_axpy(w_ref.data() + off, x, n, cc, qx, qm, d);
                    for (const auto& [impl, fn] : axpys) {
                        const bool naive = impl == simd::Impl::kNaive;
                        if (naive != (pass == 1)) continue;
                        auto w_var = wbuf;
                        fn(w_var.data() + off, x, n, cc, qx, qm, d);
                        const std::string what =
                            std::string(Names::axpy) + " " +
                            simd::to_string(impl) +
                            " n=" + std::to_string(n) +
                            " off=" + std::to_string(off) +
                            (mode == 0 ? " biased" : " unbiased");
                        if constexpr (!Sweep::kFixedM)
                            // Float model: per-element FMA slack.
                            expect_span_near(w_ref.data() + off,
                                             w_var.data() + off, n, 1e-5,
                                             what);
                        else if (simd::is_vectorized(impl))
                            expect_span_eq(w_ref.data() + off,
                                           w_var.data() + off, n, what);
                        else
                            // Naive computes the delta in float: at most
                            // one model quantum per element.
                            expect_span_near(w_ref.data() + off,
                                             w_var.data() + off, n, 1.0,
                                             what);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sparse index-rep comparator
// ---------------------------------------------------------------------

namespace detail {

/// One generated sparse stream: stored indices (absolute coordinates or
/// delta gaps), matching values, and the model span they address.
template <typename I>
struct SparseStream
{
    AlignedBuffer<I> index;
    AlignedBuffer<float> value;
    std::size_t dim = 1;

    SparseStream(std::size_t count, std::size_t off)
        : index(count + off), value(count + off)
    {}
};

/// Distinct strictly-ascending absolute coordinates that fit the index
/// rep — the shape a CSR row slice has after range splitting.
template <typename I>
SparseStream<I>
sparse_absolute_stream(std::size_t nnz, std::size_t off,
                       std::uint32_t seed)
{
    constexpr std::size_t kMaxIndex = std::numeric_limits<I>::max();
    SparseStream<I> stream(nnz, off);
    rng::Xorshift128 gen(seed);
    const std::size_t limit =
        std::min<std::size_t>(kMaxIndex, 4 * nnz + 64);
    const std::size_t gap_cap =
        nnz > 0 && limit >= 2 * nnz
            ? std::max<std::size_t>(1, limit / nnz - 1)
            : 1;
    std::size_t cursor = 0;
    for (std::size_t j = 0; j < nnz; ++j) {
        cursor += j == 0 ? gen() % gap_cap : 1 + gen() % gap_cap;
        stream.index[off + j] = static_cast<I>(cursor);
        stream.value[off + j] = rng::to_unit_float(gen()) * 2.0f - 1.0f;
    }
    stream.dim = cursor + 1;
    return stream;
}

/// Delta-encoded gap stream replicating the dataset builder's padding
/// rule: a gap wider than the rep becomes explicit max-gap entries with
/// zero values (the i8 edge case the paper's footnote 6 implies). The
/// padding gap is the rep's exact maximum for i8/i16; capped for i32,
/// where padding never occurs in practice but large gaps still must
/// decode.
template <typename I>
SparseStream<I>
sparse_delta_stream(std::size_t count, std::size_t off,
                    std::uint32_t seed)
{
    constexpr std::size_t kMaxIndex = std::numeric_limits<I>::max();
    const std::size_t pad_gap = std::min<std::size_t>(kMaxIndex, 65536);
    SparseStream<I> stream(count, off);
    rng::Xorshift128 gen(seed);
    // A handful of padding entries per stream, bounded so the model span
    // (and the comparator's model buffers) stay small at large counts.
    const std::size_t pad_stride = std::max<std::size_t>(5, count / 4);
    std::size_t cursor = 0;
    for (std::size_t j = 0; j < count; ++j) {
        const bool padding = j % pad_stride == pad_stride - 1;
        const std::size_t gap = padding ? pad_gap
                                : j == 0 ? gen() % 3
                                         : 1 + gen() % 19;
        cursor += gap;
        stream.index[off + j] = static_cast<I>(gap);
        stream.value[off + j] =
            padding ? 0.0f : rng::to_unit_float(gen()) * 2.0f - 1.0f;
    }
    stream.dim = cursor + 1;
    return stream;
}

} // namespace detail

/**
 * Sweeps every runnable registered variant of one index rep's sparse dot
 * and AXPY against the reference over nnz = comparator_dims() (0..129
 * plus large) x kComparatorOffsets, in both index modes: absolute
 * coordinates (when nnz distinct coordinates fit the rep) and
 * delta-encoded gaps with builder-style max-gap zero padding (the i8
 * gap-overflow edge case).
 */
template <typename I>
void
compare_sparse_index_rep()
{
    using Ops = simd::SparseOps<I>;
    using Names = simd::SparseIndexNames<I>;
    using DotFn = typename Ops::DotFn;
    using AxpyFn = typename Ops::AxpyFn;

    simd::register_sparse_kernels();
    const auto& lib = simd::KernelLibrary::instance();
    const auto dots = comparator_variants<DotFn>(Names::dot);
    const auto axpys = comparator_variants<AxpyFn>(Names::axpy);
    ASSERT_FALSE(dots.empty()) << Names::dot;
    ASSERT_FALSE(axpys.empty()) << Names::axpy;
    const DotFn ref_dot =
        lib.get<DotFn>(Names::dot, simd::Impl::kReference);
    const AxpyFn ref_axpy =
        lib.get<AxpyFn>(Names::axpy, simd::Impl::kReference);

    constexpr std::size_t kMaxIndex = std::numeric_limits<I>::max();
    constexpr float kCs[] = {0.5f, -0.25f, 1.5f, -1.9f, 0.03f, 0.9f};

    const auto sweep = [&](const auto& stream, std::size_t count,
                           std::size_t off, std::uint32_t seed,
                           simd::sparse::IndexMode mode,
                           const char* mode_tag) {
        const float c = kCs[(count + off) % 6];
        const auto wbuf = comparator_floats(
            stream.dim + off, seed + 7);
        const float* val = stream.value.data() + off;
        const I* idx = stream.index.data() + off;

        const float r =
            ref_dot(val, idx, count, wbuf.data() + off, 1.0f, mode);
        for (const auto& [impl, fn] : dots) {
            const float v =
                fn(val, idx, count, wbuf.data() + off, 1.0f, mode);
            EXPECT_NEAR(r, v,
                        1e-4f * (static_cast<float>(count) + 1.0f) +
                            std::fabs(r) * 1e-4f + 1e-3f)
                << Names::dot << " " << simd::to_string(impl) << " "
                << mode_tag << " nnz=" << count << " off=" << off;
        }

        auto w_ref = wbuf;
        ref_axpy(w_ref.data() + off, val, idx, count, c, mode);
        for (const auto& [impl, fn] : axpys) {
            auto w_var = wbuf;
            fn(w_var.data() + off, val, idx, count, c, mode);
            expect_span_near(w_ref.data() + off, w_var.data() + off,
                             stream.dim, 1e-5,
                             std::string(Names::axpy) + " " +
                                 simd::to_string(impl) + " " + mode_tag +
                                 " nnz=" + std::to_string(count) +
                                 " off=" + std::to_string(off));
        }
    };

    for (std::size_t nnz : comparator_dims()) {
        for (std::size_t off : kComparatorOffsets) {
            const auto s =
                static_cast<std::uint32_t>(0xC2B2AE35u * nnz + 31u * off);
            // Absolute coordinates only when nnz distinct ones fit.
            if (nnz <= kMaxIndex + 1) {
                const auto stream =
                    detail::sparse_absolute_stream<I>(nnz, off, s + 1);
                sweep(stream, nnz, off, s + 1,
                      simd::sparse::IndexMode::kAbsolute, "abs");
            }
            const auto stream =
                detail::sparse_delta_stream<I>(nnz, off, s + 2);
            sweep(stream, nnz, off, s + 2,
                  simd::sparse::IndexMode::kDelta, "delta");
        }
    }
}

// ---------------------------------------------------------------------
// lowp array-kernel comparator (all variants bit-exact)
// ---------------------------------------------------------------------

namespace detail {

/// Enumerates the runnable non-reference variants of one lowp op and
/// hands each (reference, variant, tag) to `body`. Ops whose only
/// registered variant is the reference (scalar-only builds) simply get
/// zero invocations — the registration itself is still checked.
template <typename Fn, typename Body>
void
for_each_lowp_variant(const char* op, Body&& body)
{
    const auto& lib = simd::KernelLibrary::instance();
    ASSERT_TRUE(lib.runnable(op, simd::Impl::kReference)) << op;
    const Fn ref = lib.get<Fn>(op, simd::Impl::kReference);
    for (const auto& [impl, fn] : comparator_variants<Fn>(op)) {
        std::string tag =
            std::string(op) + " " + simd::to_string(impl);
        body(ref, fn, tag);
    }
}

inline std::string
lowp_where(const std::string& tag, std::size_t n, std::size_t off)
{
    return tag + " n=" + std::to_string(n) + " off=" +
           std::to_string(off);
}

} // namespace detail

/**
 * Sweeps every registered lowp array kernel ("lowp.*") variant against
 * the scalar reference over comparator_dims() x kComparatorOffsets for
 * both integer reps. Everything must be bit-exact — that is the §5.2
 * vectorized-rounding contract.
 */
inline void
compare_lowp_kernels()
{
    lowp::register_lowp_kernels();
    const auto grid8 = lowp::GridSpec::from_fixed(fixed::default_format(8));
    const auto grid16 =
        lowp::GridSpec::from_fixed(fixed::default_format(16));
    const auto sym8 = lowp::GridSpec::symmetric(8, 2.0);

    using QuantizeI8Fn = void (*)(const float*, std::int8_t*, std::size_t,
                                  const lowp::GridSpec&);
    using QuantizeI16Fn = void (*)(const float*, std::int16_t*,
                                   std::size_t, const lowp::GridSpec&);
    using SharedI8Fn = void (*)(const float*, std::int8_t*, std::size_t,
                                const lowp::GridSpec&,
                                const std::uint32_t*);
    using SharedI16Fn = void (*)(const float*, std::int16_t*, std::size_t,
                                 const lowp::GridSpec&,
                                 const std::uint32_t*);
    using DequantizeI8Fn = void (*)(const std::int8_t*, float*,
                                    std::size_t, const lowp::GridSpec&);
    using DequantizeI16Fn = void (*)(const std::int16_t*, float*,
                                     std::size_t, const lowp::GridSpec&);
    using MaxAbsFn = float (*)(const float*, std::size_t);
    using RoundLevelsFn = void (*)(const float*, std::size_t, float,
                                   std::int8_t*, float*, float*);
    using Sign1BitFn = void (*)(const float*, std::size_t, float, float*,
                                float*, std::uint8_t*);

    // One shared 256-bit randomness block (fixed seed) for the shared-
    // rounding kernels.
    std::uint32_t words[8];
    {
        rng::Xorshift128 gen(0xABCDEF);
        for (auto& wd : words) wd = gen();
    }

    for (std::size_t n : comparator_dims()) {
        for (std::size_t off : kComparatorOffsets) {
            const auto s =
                static_cast<std::uint32_t>(0x85EBCA6Bu * n + 13u * off);
            // Inputs straddle the saturation bounds (scale 6 on an
            // 8-bit grid) so the clamp paths are compared too.
            const auto in = comparator_floats(n + off, s, 6.0f);
            const float* x = in.data() + off;

            detail::for_each_lowp_variant<QuantizeI8Fn>(
                "lowp.quantize_biased_i8",
                [&](auto ref, auto fn, const std::string& tag) {
                    AlignedBuffer<std::int8_t> a(n + off), b(n + off);
                    ref(x, a.data() + off, n, grid8);
                    fn(x, b.data() + off, n, grid8);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<QuantizeI16Fn>(
                "lowp.quantize_biased_i16",
                [&](auto ref, auto fn, const std::string& tag) {
                    AlignedBuffer<std::int16_t> a(n + off), b(n + off);
                    ref(x, a.data() + off, n, grid16);
                    fn(x, b.data() + off, n, grid16);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<SharedI8Fn>(
                "lowp.quantize_shared_i8",
                [&](auto ref, auto fn, const std::string& tag) {
                    AlignedBuffer<std::int8_t> a(n + off), b(n + off);
                    ref(x, a.data() + off, n, sym8, words);
                    fn(x, b.data() + off, n, sym8, words);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<SharedI16Fn>(
                "lowp.quantize_shared_i16",
                [&](auto ref, auto fn, const std::string& tag) {
                    AlignedBuffer<std::int16_t> a(n + off), b(n + off);
                    ref(x, a.data() + off, n, grid16, words);
                    fn(x, b.data() + off, n, grid16, words);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<DequantizeI8Fn>(
                "lowp.dequantize_i8",
                [&](auto ref, auto fn, const std::string& tag) {
                    const auto raw =
                        comparator_fixed<std::int8_t>(n + off, s + 4, 128);
                    AlignedBuffer<float> a(n + off), b(n + off);
                    ref(raw.data() + off, a.data() + off, n, grid8);
                    fn(raw.data() + off, b.data() + off, n, grid8);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<DequantizeI16Fn>(
                "lowp.dequantize_i16",
                [&](auto ref, auto fn, const std::string& tag) {
                    const auto raw = comparator_fixed<std::int16_t>(
                        n + off, s + 5, 32767);
                    AlignedBuffer<float> a(n + off), b(n + off);
                    ref(raw.data() + off, a.data() + off, n, grid16);
                    fn(raw.data() + off, b.data() + off, n, grid16);
                    expect_span_eq(a.data() + off, b.data() + off, n,
                                   detail::lowp_where(tag, n, off));
                });
            detail::for_each_lowp_variant<MaxAbsFn>(
                "lowp.max_abs",
                [&](auto ref, auto fn, const std::string& tag) {
                    EXPECT_EQ(ref(x, n), fn(x, n))
                        << detail::lowp_where(tag, n, off);
                });
            detail::for_each_lowp_variant<RoundLevelsFn>(
                "lowp.round_levels_i8",
                [&](auto ref, auto fn, const std::string& tag) {
                    const auto& lib = simd::KernelLibrary::instance();
                    const auto max_abs = lib.get<MaxAbsFn>(
                        "lowp.max_abs", simd::Impl::kReference);
                    const float peak = max_abs(x, n);
                    const float scale =
                        n > 0 && peak > 0 ? peak / 127.0f : 1.0f;
                    AlignedBuffer<std::int8_t> la(n + off), lb(n + off);
                    AlignedBuffer<float> qa(n + off), qb(n + off);
                    AlignedBuffer<float> ra(n + off), rb(n + off);
                    ref(x, n, scale, la.data() + off, qa.data() + off,
                        ra.data() + off);
                    fn(x, n, scale, lb.data() + off, qb.data() + off,
                       rb.data() + off);
                    const auto what = detail::lowp_where(tag, n, off);
                    expect_span_eq(la.data() + off, lb.data() + off, n,
                                   what + " levels");
                    expect_span_eq(qa.data() + off, qb.data() + off, n,
                                   what + " q");
                    expect_span_eq(ra.data() + off, rb.data() + off, n,
                                   what + " residual");
                });
            detail::for_each_lowp_variant<Sign1BitFn>(
                "lowp.quantize_sign_1bit",
                [&](auto ref, auto fn, const std::string& tag) {
                    const std::size_t bytes = (n + 7) / 8;
                    AlignedBuffer<float> qa(n + off), qb(n + off);
                    AlignedBuffer<float> ra(n + off), rb(n + off);
                    std::vector<std::uint8_t> pa(bytes + off, 0),
                        pb(bytes + off, 0);
                    ref(x, n, 0.5f, qa.data() + off, ra.data() + off,
                        pa.data() + off);
                    fn(x, n, 0.5f, qb.data() + off, rb.data() + off,
                       pb.data() + off);
                    const auto what = detail::lowp_where(tag, n, off);
                    expect_span_eq(qa.data() + off, qb.data() + off, n,
                                   what + " q");
                    expect_span_eq(ra.data() + off, rb.data() + off, n,
                                   what + " residual");
                    expect_span_eq(pa.data() + off, pb.data() + off,
                                   bytes, what + " payload");
                });
        }
    }
}

} // namespace buckwild::testutil

#endif // BUCKWILD_TESTS_KERNEL_COMPARATOR_H
