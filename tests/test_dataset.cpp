/**
 * @file
 * Tests for the dataset substrate: synthetic generators, quantized
 * containers (dense and CSR with low-precision/delta indices), the digit
 * image generator, and random Fourier features.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "dataset/digits.h"
#include "dataset/fourier.h"
#include "dataset/problem.h"
#include "dataset/quantized.h"
#include "fixed/quantize.h"

namespace buckwild::dataset {
namespace {

// ---------------------------------------------------------- generators

TEST(LogisticDense, ShapesAndRanges)
{
    const auto p = generate_logistic_dense(64, 200, 1);
    EXPECT_EQ(p.dim, 64u);
    EXPECT_EQ(p.examples, 200u);
    EXPECT_EQ(p.x.size(), 64u * 200u);
    EXPECT_EQ(p.y.size(), 200u);
    EXPECT_EQ(p.w_true.size(), 64u);
    for (float v : p.x) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
    for (float v : p.y) EXPECT_TRUE(v == 1.0f || v == -1.0f);
}

TEST(LogisticDense, DeterministicInSeedAndVariedAcrossSeeds)
{
    const auto a = generate_logistic_dense(16, 50, 7);
    const auto b = generate_logistic_dense(16, 50, 7);
    const auto c = generate_logistic_dense(16, 50, 8);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_NE(a.x, c.x);
}

TEST(LogisticDense, LabelsCorrelateWithTrueModel)
{
    // The generative model must produce learnable labels: the margin
    // w*.x should be positive more often for y=+1 examples.
    const auto p = generate_logistic_dense(128, 2000, 3);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < p.examples; ++i) {
        double dot = 0.0;
        for (std::size_t k = 0; k < p.dim; ++k)
            dot += static_cast<double>(p.row(i)[k]) * p.w_true[k];
        if ((dot >= 0) == (p.y[i] > 0)) ++agree;
    }
    EXPECT_GT(static_cast<double>(agree) / p.examples, 0.75);
}

TEST(LogisticDense, RejectsDegenerateShapes)
{
    EXPECT_THROW(generate_logistic_dense(0, 10, 1), std::runtime_error);
    EXPECT_THROW(generate_logistic_dense(10, 0, 1), std::runtime_error);
}

TEST(LogisticSparse, DensityAndSortedDistinctIndices)
{
    const auto p = generate_logistic_sparse(1000, 100, 0.03, 5);
    EXPECT_EQ(p.dim, 1000u);
    EXPECT_EQ(p.examples(), 100u);
    for (const auto& row : p.rows) {
        EXPECT_EQ(row.index.size(), 30u); // ceil(0.03 * 1000)
        EXPECT_EQ(row.value.size(), row.index.size());
        std::set<std::uint32_t> uniq(row.index.begin(), row.index.end());
        EXPECT_EQ(uniq.size(), row.index.size()) << "duplicate coordinate";
        for (std::size_t j = 1; j < row.index.size(); ++j)
            EXPECT_LT(row.index[j - 1], row.index[j]) << "unsorted";
        for (std::uint32_t k : row.index) EXPECT_LT(k, 1000u);
    }
    EXPECT_EQ(p.nnz(), 3000u);
}

TEST(LogisticSparse, StatsSummarizeDensity)
{
    const auto p = generate_logistic_sparse(1000, 100, 0.03, 5);
    const auto stats = dataset::sparse_stats(p);
    EXPECT_EQ(stats.examples, 100u);
    EXPECT_EQ(stats.dim, 1000u);
    EXPECT_EQ(stats.nnz, 3000u);
    EXPECT_EQ(stats.min_row_nnz, 30u);
    EXPECT_EQ(stats.max_row_nnz, 30u);
    EXPECT_DOUBLE_EQ(stats.mean_row_nnz, 30.0);
    EXPECT_DOUBLE_EQ(stats.density, 0.03);
}

TEST(LogisticSparse, StatsHandleRaggedAndEmptyProblems)
{
    dataset::SparseProblem p;
    p.dim = 16;
    const auto empty = dataset::sparse_stats(p);
    EXPECT_EQ(empty.examples, 0u);
    EXPECT_EQ(empty.nnz, 0u);
    EXPECT_DOUBLE_EQ(empty.density, 0.0);

    p.rows.resize(3);
    p.y.assign(3, 1.0f);
    p.rows[0].index = {1, 5};
    p.rows[0].value = {1.0f, 2.0f};
    p.rows[1].index = {}; // an all-zero example
    p.rows[2].index = {0, 3, 7, 9};
    p.rows[2].value = {1.0f, 1.0f, 1.0f, 1.0f};
    const auto ragged = dataset::sparse_stats(p);
    EXPECT_EQ(ragged.nnz, 6u);
    EXPECT_EQ(ragged.min_row_nnz, 0u);
    EXPECT_EQ(ragged.max_row_nnz, 4u);
    EXPECT_DOUBLE_EQ(ragged.mean_row_nnz, 2.0);
    EXPECT_DOUBLE_EQ(ragged.density, 2.0 / 16.0);
}

TEST(LogisticSparse, RejectsBadDensity)
{
    EXPECT_THROW(generate_logistic_sparse(10, 10, 0.0, 1),
                 std::runtime_error);
    EXPECT_THROW(generate_logistic_sparse(10, 10, 1.5, 1),
                 std::runtime_error);
}

// ------------------------------------------------------ dense container

TEST(DenseData, QuantizesWithinHalfQuantum)
{
    const auto p = generate_logistic_dense(32, 64, 11);
    const DenseData<std::int8_t> data(p, fixed::default_format(8));
    EXPECT_EQ(data.rows(), 64u);
    EXPECT_EQ(data.cols(), 32u);
    EXPECT_FLOAT_EQ(data.quantum(), 1.0f / 64.0f);
    for (std::size_t i = 0; i < data.rows(); ++i)
        for (std::size_t k = 0; k < data.cols(); ++k) {
            const float back = data.row(i)[k] * data.quantum();
            EXPECT_NEAR(back, p.row(i)[k], data.quantum() / 2 + 1e-6f);
        }
    EXPECT_EQ(data.bytes(), 32u * 64u);
}

TEST(DenseData, FloatRepIsPassThrough)
{
    const auto p = generate_logistic_dense(16, 8, 12);
    const DenseData<float> data(p, fixed::FixedFormat{32, 0});
    EXPECT_FLOAT_EQ(data.quantum(), 1.0f);
    for (std::size_t k = 0; k < 16; ++k)
        EXPECT_EQ(data.row(0)[k], p.row(0)[k]);
    EXPECT_EQ(data.bytes(), 16u * 8u * 4u);
}

TEST(DenseData, SixteenBitHasSmallerErrorThanEightBit)
{
    const auto p = generate_logistic_dense(64, 32, 13);
    const DenseData<std::int8_t> d8(p, fixed::default_format(8));
    const DenseData<std::int16_t> d16(p, fixed::default_format(16));
    double err8 = 0, err16 = 0;
    for (std::size_t i = 0; i < p.examples; ++i)
        for (std::size_t k = 0; k < p.dim; ++k) {
            err8 += std::fabs(d8.row(i)[k] * d8.quantum() - p.row(i)[k]);
            err16 += std::fabs(d16.row(i)[k] * d16.quantum() - p.row(i)[k]);
        }
    EXPECT_LT(err16, err8 / 10.0);
}

// ------------------------------------------------------- sparse container

TEST(SparseData, AbsoluteIndexModeWhenTypeCoversDim)
{
    const auto p = generate_logistic_sparse(200, 20, 0.05, 21);
    const SparseData<std::int8_t, std::uint8_t> data(
        p, fixed::default_format(8));
    EXPECT_EQ(data.index_mode(), simd::sparse::IndexMode::kAbsolute);
    EXPECT_EQ(data.stored_nnz(), p.nnz());
    // Round-trip the indices.
    for (std::size_t i = 0; i < data.rows(); ++i) {
        ASSERT_EQ(data.row_nnz(i), p.rows[i].index.size());
        for (std::size_t j = 0; j < data.row_nnz(i); ++j)
            EXPECT_EQ(data.row_indices(i)[j], p.rows[i].index[j]);
    }
}

TEST(SparseData, DeltaModeWithPaddingWhenTypeTooNarrow)
{
    // dim 5000 >> 255 forces u8 delta encoding with padding.
    const auto p = generate_logistic_sparse(5000, 50, 0.01, 22);
    const SparseData<std::int8_t, std::uint8_t> data(
        p, fixed::default_format(8));
    EXPECT_EQ(data.index_mode(), simd::sparse::IndexMode::kDelta);
    EXPECT_GE(data.stored_nnz(), p.nnz()); // padding only adds entries

    // Decode and compare coordinates per row.
    for (std::size_t i = 0; i < data.rows(); ++i) {
        std::vector<std::uint32_t> decoded;
        std::size_t cursor = 0;
        for (std::size_t j = 0; j < data.row_nnz(i); ++j) {
            cursor += data.row_indices(i)[j];
            if (data.row_values(i)[j] != 0 ||
                p.rows[i].value.empty()) // skip pure padding
                decoded.push_back(static_cast<std::uint32_t>(cursor));
        }
        // Every true coordinate with nonzero quantized value must appear.
        for (std::size_t j = 0; j < p.rows[i].index.size(); ++j) {
            const long raw = fixed::quantize_biased_raw(
                p.rows[i].value[j], fixed::default_format(8));
            if (raw == 0) continue; // quantized to zero: indistinguishable
            EXPECT_NE(std::find(decoded.begin(), decoded.end(),
                                p.rows[i].index[j]),
                      decoded.end())
                << "row " << i << " coord " << p.rows[i].index[j];
        }
    }
}

TEST(SparseData, BytesAccountsForValuesAndIndices)
{
    const auto p = generate_logistic_sparse(100, 10, 0.1, 23);
    const SparseData<std::int16_t, std::uint16_t> data(
        p, fixed::default_format(16));
    EXPECT_EQ(data.bytes(), p.nnz() * 2 + p.nnz() * 2);
}

TEST(SparseData, LabelsPreserved)
{
    const auto p = generate_logistic_sparse(64, 30, 0.1, 24);
    const SparseData<float, std::uint32_t> data(p,
                                                fixed::FixedFormat{32, 0});
    for (std::size_t i = 0; i < 30; ++i)
        EXPECT_EQ(data.label(i), p.y[i]);
}

// ----------------------------------------------------------------- digits

TEST(Digits, ShapesLabelsBalance)
{
    const auto ds = generate_digits(500, 9);
    EXPECT_EQ(ds.count, 500u);
    EXPECT_EQ(ds.pixels.size(), 500u * kDigitPixels);
    std::size_t per_class[10] = {};
    for (int label : ds.labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 10);
        ++per_class[label];
    }
    for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(per_class[c], 50u);
    for (float v : ds.pixels) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Digits, ClassesAreVisuallyDistinct)
{
    // Noise-free class means must differ between digits (e.g. 1 vs 8).
    const auto ds = generate_digits(200, 10, /*noise=*/0.0f);
    auto class_mean = [&ds](int digit) {
        std::vector<double> mean(kDigitPixels, 0.0);
        std::size_t count = 0;
        for (std::size_t i = 0; i < ds.count; ++i) {
            if (ds.labels[i] != digit) continue;
            ++count;
            for (std::size_t p = 0; p < kDigitPixels; ++p)
                mean[p] += ds.image(i)[p];
        }
        for (auto& m : mean) m /= static_cast<double>(count);
        return mean;
    };
    const auto m1 = class_mean(1);
    const auto m8 = class_mean(8);
    double dist = 0.0;
    for (std::size_t p = 0; p < kDigitPixels; ++p)
        dist += (m1[p] - m8[p]) * (m1[p] - m8[p]);
    EXPECT_GT(dist, 10.0); // digit 8 has many more lit pixels than 1
}

TEST(Digits, IntraClassVariation)
{
    const auto ds = generate_digits(40, 11, 0.0f);
    // Two noise-free images of the same class should still differ
    // (jitter/thickness), i.e. the task is not a lookup table.
    const float* a = nullptr;
    const float* b = nullptr;
    for (std::size_t i = 0; i < ds.count; ++i) {
        if (ds.labels[i] != 3) continue;
        if (a == nullptr) {
            a = ds.image(i);
        } else {
            b = ds.image(i);
            break;
        }
    }
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    double diff = 0.0;
    for (std::size_t p = 0; p < kDigitPixels; ++p)
        diff += std::fabs(a[p] - b[p]);
    EXPECT_GT(diff, 0.5);
}

// ---------------------------------------------------------------- fourier

TEST(Fourier, OutputRangeAndShape)
{
    const FourierFeatures rff(10, 64, 2.0f, 31);
    EXPECT_EQ(rff.input_dim(), 10u);
    EXPECT_EQ(rff.feature_dim(), 64u);
    std::vector<float> x(10, 0.3f), z(64);
    rff.transform(x.data(), z.data());
    const float bound = std::sqrt(2.0f / 64.0f) + 1e-6f;
    for (float v : z) {
        EXPECT_GE(v, -bound);
        EXPECT_LE(v, bound);
    }
}

TEST(Fourier, ApproximatesGaussianKernel)
{
    // z(x).z(x') -> exp(-|x-x'|^2 / (2 sigma^2)) as D grows.
    constexpr std::size_t kDim = 8;
    constexpr float kSigma = 1.5f;
    const FourierFeatures rff(kDim, 4096, kSigma, 32);
    rng::Xorshift128 gen(33);
    double worst = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<float> x(kDim), xp(kDim), zx(4096), zxp(4096);
        double d2 = 0.0;
        for (std::size_t k = 0; k < kDim; ++k) {
            x[k] = rng::to_unit_float(gen()) - 0.5f;
            xp[k] = rng::to_unit_float(gen()) - 0.5f;
            d2 += (x[k] - xp[k]) * (x[k] - xp[k]);
        }
        rff.transform(x.data(), zx.data());
        rff.transform(xp.data(), zxp.data());
        double dot = 0.0;
        for (std::size_t j = 0; j < 4096; ++j)
            dot += static_cast<double>(zx[j]) * zxp[j];
        const double expect = std::exp(-d2 / (2.0 * kSigma * kSigma));
        worst = std::max(worst, std::fabs(dot - expect));
    }
    EXPECT_LT(worst, 0.06);
}

TEST(Fourier, BatchMatchesSingle)
{
    const FourierFeatures rff(4, 16, 1.0f, 34);
    std::vector<float> xs = {0.1f, -0.2f, 0.3f, -0.4f,
                             0.5f, 0.6f, -0.7f, 0.8f};
    const auto batch = rff.transform_batch(xs.data(), 2);
    std::vector<float> single(16);
    rff.transform(xs.data() + 4, single.data());
    for (std::size_t j = 0; j < 16; ++j)
        EXPECT_EQ(batch[16 + j], single[j]);
}

TEST(Fourier, RejectsBadParameters)
{
    EXPECT_THROW(FourierFeatures(0, 4, 1.0f, 1), std::runtime_error);
    EXPECT_THROW(FourierFeatures(4, 0, 1.0f, 1), std::runtime_error);
    EXPECT_THROW(FourierFeatures(4, 4, -1.0f, 1), std::runtime_error);
}

} // namespace
} // namespace buckwild::dataset
