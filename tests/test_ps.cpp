/**
 * @file
 * Tests for the sharded parameter-server subsystem (src/ps) and the
 * quantizer it shares with the emulated C-term trainer:
 *
 *  - PsQuantize: validation, round-trip error-feedback invariant (fuzz),
 *    wire codec bit-identity against quantize_gradient, byte accounting;
 *  - PsCommSgd: the refactored emulation is bit-identical to a verbatim
 *    replica of the seed implementation, plus recorded golden anchors;
 *  - PsTransport: delivery, drop-with-retry RPC, reorder, shutdown drain;
 *  - PsShard: apply/pull semantics, retransmission dedup, the SSP gate
 *    and worker retirement;
 *  - PsCluster: convergence per precision, fault injection, staleness
 *    bounds, config validation, checkpoint provenance;
 *  - PsServe: train-to-serve hot-swap through a shared ModelRegistry;
 *  - PsConcurrency: concurrent push/pull on one shard (the TSan target).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/comm_sgd.h"
#include "dataset/problem.h"
#include "ps/ps.h"
#include "rng/xorshift.h"
#include "serve/serve.h"
#include "test_common.h"
#include "util/thread_pool.h"

namespace buckwild {
namespace {

// ===================================================== PsQuantize

TEST(PsQuantize, ValidatesCommBits)
{
    EXPECT_NO_THROW(ps::validate_comm_bits(1));
    EXPECT_NO_THROW(ps::validate_comm_bits(8));
    EXPECT_NO_THROW(ps::validate_comm_bits(32));
    for (const int bits : {0, 2, 4, 7, 16, 24, 64, -1})
        EXPECT_THROW(ps::validate_comm_bits(bits), std::runtime_error)
            << "bits = " << bits;
}

TEST(PsQuantize, PayloadBytesPerPrecision)
{
    EXPECT_EQ(ps::payload_bytes(256, 32), 1024u);
    EXPECT_EQ(ps::payload_bytes(256, 8), 256u);
    EXPECT_EQ(ps::payload_bytes(256, 1), 32u);
    // Cs1 rounds up to whole bytes.
    EXPECT_EQ(ps::payload_bytes(9, 1), 2u);
    EXPECT_EQ(ps::payload_bytes(0, 1), 0u);
}

std::vector<float>
fuzz_vector(rng::Xorshift128Plus& rng, std::size_t n, float magnitude)
{
    std::vector<float> g(n);
    for (auto& v : g) {
        const double u =
            static_cast<double>(rng() >> 11) * 0x1.0p-53; // [0, 1)
        v = static_cast<float>((2.0 * u - 1.0) * magnitude);
    }
    return g;
}

TEST(PsQuantize, RoundTripInvariantFuzz)
{
    // The error-feedback contract: what was not transmitted is exactly
    // what stays behind — q[k] + r[k] == g[k] up to float rounding.
    rng::Xorshift128Plus rng(2024);
    for (const int bits : {32, 8, 1}) {
        for (int trial = 0; trial < 50; ++trial) {
            const std::size_t n = 1 + static_cast<std::size_t>(rng() % 300);
            const float magnitude =
                std::pow(10.0f, static_cast<float>(rng() % 7) - 3.0f);
            const auto g = fuzz_vector(rng, n, magnitude);
            std::vector<float> residual(n, 0.0f);
            const auto q = ps::quantize_gradient(g, bits, &residual);
            ASSERT_EQ(q.size(), n);
            for (std::size_t k = 0; k < n; ++k) {
                const float tol =
                    1e-6f * (std::fabs(g[k]) + std::fabs(q[k]));
                EXPECT_NEAR(q[k] + residual[k], g[k], tol)
                    << "bits " << bits << " k " << k;
            }
            if (bits == 32) {
                for (std::size_t k = 0; k < n; ++k)
                    EXPECT_EQ(residual[k], 0.0f);
            }
        }
    }
}

TEST(PsQuantize, WireCodecBitIdenticalToQuantizer)
{
    // decode(encode(g)) must reproduce quantize_gradient(g) exactly —
    // the executed cluster and the emulation then share one arithmetic.
    rng::Xorshift128Plus rng(7);
    for (const int bits : {32, 8, 1}) {
        for (int trial = 0; trial < 40; ++trial) {
            const std::size_t n = 1 + static_cast<std::size_t>(rng() % 200);
            auto g = fuzz_vector(rng, n, trial % 2 == 0 ? 1.0f : 40.0f);
            if (trial % 5 == 0) std::fill(g.begin(), g.end(), 0.0f);
            std::vector<float> r_ref(n, 0.0f), r_wire(n, 0.0f);
            const auto q = ps::quantize_gradient(g, bits, &r_ref);
            const ps::WireGradient wire =
                ps::encode_gradient(g.data(), n, bits, r_wire.data());
            EXPECT_EQ(wire.bits, bits);
            EXPECT_EQ(wire.count, n);
            EXPECT_EQ(wire.payload.size(), ps::payload_bytes(n, bits));
            const auto decoded = ps::decode_gradient(wire);
            ASSERT_EQ(decoded.size(), n);
            for (std::size_t k = 0; k < n; ++k) {
                EXPECT_EQ(decoded[k], q[k])
                    << "bits " << bits << " k " << k;
                EXPECT_EQ(r_wire[k], r_ref[k])
                    << "bits " << bits << " k " << k;
            }
        }
    }
}

TEST(PsQuantize, DecodeRejectsCorruptPayload)
{
    ps::WireGradient wire;
    wire.kind = ps::CodecKind::kLinear;
    wire.bits = 8;
    wire.count = 16;
    wire.payload.assign(15, 0); // one byte short
    EXPECT_THROW(ps::decode_gradient(wire), std::runtime_error);
    wire.bits = 5; // kind/bits no longer name a valid tier
    EXPECT_THROW(ps::decode_gradient(wire), std::runtime_error);
}

TEST(PsQuantize, WireBytesCollapseTwentyFoldAtOneBit)
{
    // The acceptance ratio behind bench_cluster_scaling: a dim-512 model
    // on 2 shards pushes >= 20x fewer wire bytes per round at Cs1.
    const std::size_t half = 256;
    const double full = 2.0 * (ps::kWireHeaderBytes +
                               ps::payload_bytes(half, 32));
    const double onebit = 2.0 * (ps::kWireHeaderBytes +
                                 ps::payload_bytes(half, 1));
    EXPECT_GE(full / onebit, 20.0);
}

// =============================================== PsQuantize (sparse)

/// Scatter a decoded sparse gradient into a dense vector of `dim`.
std::vector<float>
scatter(const ps::SparseGradient& g)
{
    std::vector<float> out(g.dim, 0.0f);
    for (std::size_t j = 0; j < g.nnz(); ++j) out[g.index[j]] += g.value[j];
    return out;
}

TEST(PsQuantize, SparseIndexRepsDecodeAlike)
{
    // One logical gradient, three index representations: absolute u32,
    // absolute u16, and delta u8 with zero-valued padding entries where
    // a gap overflows the rep (footnote 6). The wire form normalizes
    // them all to the same gamma gap stream; for the scale-stable tiers
    // (Cs32, Cs8 — padding zeros leave maxabs untouched) the scattered
    // decode is identical.
    const std::vector<float> value = {4.0f, -2.0f, 1.0f, 0.5f};
    const std::vector<std::uint32_t> abs32 = {3, 200, 460, 461};
    const std::vector<std::uint16_t> abs16(abs32.begin(), abs32.end());
    const std::uint32_t dim = 500;

    std::vector<float> delta_value;
    std::vector<std::uint8_t> delta_gap;
    std::uint32_t prev = 0;
    for (std::size_t j = 0; j < abs32.size(); ++j) {
        std::uint32_t gap = abs32[j] - prev;
        while (gap > 255) {
            delta_gap.push_back(255);
            delta_value.push_back(0.0f);
            gap -= 255;
        }
        delta_gap.push_back(static_cast<std::uint8_t>(gap));
        delta_value.push_back(value[j]);
        prev = abs32[j];
    }
    ASSERT_GT(delta_gap.size(), abs32.size()) << "gaps forced padding";

    for (const int bits : {32, 8}) {
        const ps::Codec codec = ps::Codec::from_bits(bits);
        const auto a32 = ps::encode_sparse_gradient(
            ps::GradientView::sparse_view(value.data(), abs32.data(),
                                          value.size(), dim,
                                          simd::sparse::IndexMode::kAbsolute),
            codec, nullptr);
        const auto a16 = ps::encode_sparse_gradient(
            ps::GradientView::sparse_view(value.data(), abs16.data(),
                                          value.size(), dim,
                                          simd::sparse::IndexMode::kAbsolute),
            codec, nullptr);
        const auto d8 = ps::encode_sparse_gradient(
            ps::GradientView::sparse_view(delta_value.data(),
                                          delta_gap.data(),
                                          delta_value.size(), dim,
                                          simd::sparse::IndexMode::kDelta),
            codec, nullptr);
        // Same rep-independent wire form for the absolute views...
        EXPECT_EQ(a32.index_payload, a16.index_payload) << "bits " << bits;
        EXPECT_EQ(a32.payload, a16.payload) << "bits " << bits;
        // ...and the padded delta stream scatters to the same dense
        // gradient (its wire frame carries the extra zero entries).
        EXPECT_EQ(d8.count, delta_value.size());
        testutil::expect_all_eq(
            scatter(ps::decode_sparse_gradient(d8)),
            scatter(ps::decode_sparse_gradient(a32)),
            ("bits " + std::to_string(bits)).c_str());
    }
}

TEST(PsQuantize, SparseResidualInvariantFuzz)
{
    // Error feedback over the nnz entries: the residual the encoder
    // leaves behind is bit-exactly g - q against the decoded values,
    // for every codec tier, entry-aligned with the stored stream.
    rng::Xorshift128Plus rng(515);
    const ps::Codec codecs[] = {ps::Codec::from_bits(32),
                                ps::Codec::from_bits(8),
                                ps::Codec::from_bits(1), ps::Codec::qsgd(4)};
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint32_t dim = 16 + rng() % 2000;
        std::vector<std::uint32_t> index;
        std::uint32_t cursor = rng() % 4;
        while (cursor < dim && index.size() < 400) {
            index.push_back(cursor);
            cursor += 1 + rng() % 11;
        }
        const auto value = fuzz_vector(rng, index.size(), 2.0f);
        std::vector<float> residual(index.size(), 1e9f); // must be overwritten
        const ps::Codec& codec = codecs[trial % 4];
        const auto wire = ps::encode_sparse_gradient(
            ps::GradientView::sparse_view(value.data(), index.data(),
                                          index.size(), dim,
                                          simd::sparse::IndexMode::kAbsolute),
            codec, residual.data(), &rng);
        EXPECT_EQ(wire.count, index.size());
        EXPECT_EQ(wire.dim, dim);
        const ps::SparseGradient q = ps::decode_sparse_gradient(wire);
        ASSERT_EQ(q.index, index) << "trial " << trial;
        for (std::size_t j = 0; j < index.size(); ++j)
            ASSERT_EQ(residual[j], value[j] - q.value[j])
                << codec.name() << " trial " << trial << " j=" << j;
        if (codec.kind == ps::CodecKind::kDense)
            for (const float r : residual) ASSERT_EQ(r, 0.0f);
    }
}

TEST(PsQuantize, SparseEmptyPushEncodesAndDecodes)
{
    // Every worker pushes every round (uniform SSP clocks), so a round
    // that touches nothing on a shard still crosses the wire: nnz 0,
    // dim preserved, empty payloads.
    for (const ps::Codec& codec :
         {ps::Codec::from_bits(32), ps::Codec::from_bits(8),
          ps::Codec::from_bits(1), ps::Codec::qsgd(4)}) {
        const auto view = ps::GradientView::sparse_view<std::uint32_t>(
            nullptr, nullptr, 0, 64, simd::sparse::IndexMode::kAbsolute);
        const auto wire =
            ps::encode_sparse_gradient(view, codec, nullptr);
        EXPECT_TRUE(wire.sparse()) << codec.name();
        EXPECT_EQ(wire.count, 0u) << codec.name();
        EXPECT_EQ(wire.dim, 64u) << codec.name();
        const ps::SparseGradient g = ps::decode_sparse_gradient(wire);
        EXPECT_EQ(g.nnz(), 0u) << codec.name();
        EXPECT_EQ(g.dim, 64u) << codec.name();
    }
}

TEST(PsQuantize, SparseEncodeRejectsMalformedViews)
{
    const float value[2] = {1.0f, 2.0f};
    const ps::Codec codec = ps::Codec::from_bits(8);
    { // a dense view is not a sparse push
        const float g[4] = {1, 2, 3, 4};
        EXPECT_THROW(ps::encode_sparse_gradient(
                         ps::GradientView::dense(g, 4), codec, nullptr),
                     std::runtime_error);
    }
    { // duplicate / non-ascending coordinates
        const std::uint32_t dup[2] = {5, 5};
        EXPECT_THROW(ps::encode_sparse_gradient(
                         ps::GradientView::sparse_view(
                             value, dup, 2, 16,
                             simd::sparse::IndexMode::kAbsolute),
                         codec, nullptr),
                     std::runtime_error);
        const std::uint32_t desc[2] = {9, 3};
        EXPECT_THROW(ps::encode_sparse_gradient(
                         ps::GradientView::sparse_view(
                             value, desc, 2, 16,
                             simd::sparse::IndexMode::kAbsolute),
                         codec, nullptr),
                     std::runtime_error);
    }
    { // coordinate out of the declared span
        const std::uint32_t big[2] = {3, 16};
        EXPECT_THROW(ps::encode_sparse_gradient(
                         ps::GradientView::sparse_view(
                             value, big, 2, 16,
                             simd::sparse::IndexMode::kAbsolute),
                         codec, nullptr),
                     std::runtime_error);
    }
    { // decoding a dense wire gradient as sparse
        float residual[2] = {};
        ps::WireGradient dense =
            ps::encode_gradient(value, 2, 8, residual);
        EXPECT_THROW(ps::decode_sparse_gradient(dense),
                     std::runtime_error);
    }
    { // a truncated index payload
        const std::uint32_t index[2] = {1, 7};
        ps::WireGradient wire = ps::encode_sparse_gradient(
            ps::GradientView::sparse_view(
                value, index, 2, 16, simd::sparse::IndexMode::kAbsolute),
            codec, nullptr);
        wire.index_payload.pop_back();
        EXPECT_THROW(ps::decode_sparse_gradient(wire),
                     std::runtime_error);
    }
}

// ===================================================== PsCommSgd

/// A verbatim replica of the seed's train_comm_sgd (with its embedded
/// quantizer) as it existed before the quantizer moved to ps/quantize:
/// the refactored trainer must reproduce its trajectory bit for bit.
namespace seed_replica {

std::vector<float>
quantize_gradient(const std::vector<float>& g, int bits,
                  std::vector<float>* residual)
{
    const std::size_t n = g.size();
    std::vector<float> q(n);
    if (bits >= 32) {
        q = g;
        if (residual != nullptr)
            for (auto& r : *residual) r = 0.0f;
        return q;
    }

    if (bits == 1) {
        double mag = 0.0;
        for (float v : g) mag += std::fabs(v);
        const float scale =
            n > 0 ? static_cast<float>(mag / static_cast<double>(n)) : 0.0f;
        for (std::size_t k = 0; k < n; ++k)
            q[k] = g[k] >= 0.0f ? scale : -scale;
    } else {
        float maxabs = 0.0f;
        for (float v : g) maxabs = std::max(maxabs, std::fabs(v));
        const float levels = static_cast<float>((1 << (bits - 1)) - 1);
        const float scale = maxabs > 0.0f ? maxabs / levels : 1.0f;
        for (std::size_t k = 0; k < n; ++k)
            q[k] = std::nearbyintf(g[k] / scale) * scale;
    }
    if (residual != nullptr)
        for (std::size_t k = 0; k < n; ++k) (*residual)[k] = g[k] - q[k];
    return q;
}

core::CommSgdResult
train(const dataset::DenseProblem& problem, const core::CommSgdConfig& cfg)
{
    const std::size_t n = problem.dim;
    std::vector<float> model(n, 0.0f);
    std::vector<std::vector<float>> residual(
        cfg.workers, std::vector<float>(n, 0.0f));

    core::CommSgdResult result;
    result.signature = cfg.comm_bits == 32
        ? "Cs32"
        : "Cs" + std::to_string(cfg.comm_bits);
    result.bytes_per_round =
        static_cast<double>(n) * cfg.comm_bits / 8.0 + sizeof(float);

    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            float z = 0.0f;
            const float* x = problem.row(i);
            for (std::size_t k = 0; k < n; ++k) z += model[k] * x[k];
            total += loss_value(cfg.loss, z, problem.y[i]);
            if (loss_correct(cfg.loss, z, problem.y[i])) ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples);
        return total / static_cast<double>(problem.examples);
    };

    const std::size_t round_examples = cfg.workers * cfg.batch_per_worker;
    float eta = cfg.step_size;
    std::vector<float> gradient(n);
    std::vector<float> reduced(n);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t base = 0; base + round_examples <= problem.examples;
             base += round_examples) {
            std::fill(reduced.begin(), reduced.end(), 0.0f);
            for (std::size_t w = 0; w < cfg.workers; ++w) {
                std::fill(gradient.begin(), gradient.end(), 0.0f);
                for (std::size_t b = 0; b < cfg.batch_per_worker; ++b) {
                    const std::size_t i =
                        base + w * cfg.batch_per_worker + b;
                    const float* x = problem.row(i);
                    float z = 0.0f;
                    for (std::size_t k = 0; k < n; ++k)
                        z += model[k] * x[k];
                    const float g = core::loss_gradient_coefficient(
                        cfg.loss, z, problem.y[i]);
                    if (g == 0.0f) continue;
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += g * x[k];
                }
                if (cfg.error_feedback)
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += residual[w][k];
                const auto q = quantize_gradient(
                    gradient, cfg.comm_bits,
                    cfg.error_feedback ? &residual[w] : nullptr);
                for (std::size_t k = 0; k < n; ++k) reduced[k] += q[k];
            }
            const float scale =
                eta / static_cast<float>(round_examples);
            for (std::size_t k = 0; k < n; ++k)
                model[k] -= scale * reduced[k];
            ++result.rounds;
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    result.final_loss =
        result.loss_trace.empty() ? eval() : result.loss_trace.back();
    return result;
}

} // namespace seed_replica

const dataset::DenseProblem&
anchor_problem()
{
    static const auto kProblem =
        dataset::generate_logistic_dense(96, 1536, 4242);
    return kProblem;
}

core::CommSgdConfig
anchor_config(int bits)
{
    core::CommSgdConfig cfg;
    cfg.workers = 3;
    cfg.comm_bits = bits;
    cfg.epochs = 6;
    cfg.batch_per_worker = 8;
    cfg.step_size = 0.4f;
    return cfg;
}

TEST(PsCommSgd, EmulationBitIdenticalToSeedReplica)
{
    // The quantizer extraction must be a pure refactor: at every
    // precision (and without feedback) the refactored trainer's loss
    // trace equals the seed's, double for double.
    for (const int bits : {32, 8, 1}) {
        for (const bool feedback : {true, false}) {
            auto cfg = anchor_config(bits);
            cfg.error_feedback = feedback;
            const auto now = core::train_comm_sgd(anchor_problem(), cfg);
            const auto seed = seed_replica::train(anchor_problem(), cfg);
            ASSERT_EQ(now.loss_trace.size(), seed.loss_trace.size());
            for (std::size_t e = 0; e < seed.loss_trace.size(); ++e)
                EXPECT_EQ(now.loss_trace[e], seed.loss_trace[e])
                    << "bits " << bits << " feedback " << feedback
                    << " epoch " << e;
            EXPECT_EQ(now.final_loss, seed.final_loss);
            EXPECT_EQ(now.accuracy, seed.accuracy);
            EXPECT_EQ(now.signature, seed.signature);
            EXPECT_EQ(now.bytes_per_round, seed.bytes_per_round);
        }
    }
}

TEST(PsCommSgd, GoldenTraceAnchor)
{
    // Traces recorded from the seed implementation (Release build).
    // Loose enough (1e-5) to absorb optimization-level FP differences
    // across build presets, tight enough to catch any semantic change.
    const struct
    {
        int bits;
        double accuracy;
        double trace[6];
    } kGolden[] = {
        {32,
         0.83268229166666663,
         {0.42260391796783853, 0.39493114033515059, 0.38538405900574918,
          0.38090271267924436, 0.37843120579907463, 0.3769196434028288}},
        {8,
         0.83268229166666663,
         {0.42261191553552635, 0.39492788603979534, 0.38538291469975167,
          0.38090198186654334, 0.3784314225536794, 0.37692018077291323}},
        {1,
         0.83333333333333337,
         {0.42278591115731007, 0.39529797529553434, 0.38580643069838061,
          0.38122558256198619, 0.37864024331266438, 0.37699530383359087}},
    };
    for (const auto& golden : kGolden) {
        const auto r = core::train_comm_sgd(anchor_problem(),
                                            anchor_config(golden.bits));
        ASSERT_EQ(r.loss_trace.size(), 6u) << "bits " << golden.bits;
        for (std::size_t e = 0; e < 6; ++e)
            EXPECT_NEAR(r.loss_trace[e], golden.trace[e], 1e-5)
                << "bits " << golden.bits << " epoch " << e;
        EXPECT_NEAR(r.accuracy, golden.accuracy, 5e-3);
    }
}

// ===================================================== PsTransport

TEST(PsTransport, DeliversFifoWithoutFaults)
{
    ps::InProcTransport transport(2);
    for (std::uint64_t c = 1; c <= 5; ++c) {
        ps::Message m;
        m.clock = c;
        transport.send(0, std::move(m));
    }
    ps::Message out;
    for (std::uint64_t c = 1; c <= 5; ++c) {
        ASSERT_TRUE(
            transport.recv(0, out, std::chrono::microseconds(1000)));
        EXPECT_EQ(out.clock, c);
    }
    EXPECT_EQ(transport.sent(), 5u);
    EXPECT_EQ(transport.dropped(), 0u);
    // Timeout with nothing queued.
    EXPECT_FALSE(transport.recv(0, out, std::chrono::microseconds(100)));
}

TEST(PsTransport, ClosedMailboxDrainsBacklogThenFails)
{
    ps::InProcTransport transport(1);
    for (std::uint64_t c = 1; c <= 3; ++c) {
        ps::Message m;
        m.clock = c;
        transport.send(0, std::move(m));
    }
    transport.close();
    ps::Message out;
    for (int k = 0; k < 3; ++k)
        EXPECT_TRUE(
            transport.recv(0, out, std::chrono::microseconds(1000)));
    EXPECT_FALSE(transport.recv(0, out, std::chrono::microseconds(1000)));
    EXPECT_TRUE(transport.closed());
}

TEST(PsTransport, ReorderWindowDeliversEverythingOnce)
{
    ps::FaultModel faults;
    faults.reorder_window = 4;
    ps::InProcTransport transport(1, faults);
    const std::uint64_t count = 32;
    for (std::uint64_t c = 1; c <= count; ++c) {
        ps::Message m;
        m.clock = c;
        transport.send(0, std::move(m));
    }
    std::vector<std::uint64_t> received;
    ps::Message out;
    while (transport.recv(0, out, std::chrono::microseconds(100)))
        received.push_back(out.clock);
    ASSERT_EQ(received.size(), count);
    // Exactly-once delivery of every message...
    auto sorted = received;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint64_t c = 1; c <= count; ++c)
        EXPECT_EQ(sorted[c - 1], c);
    // ...but not in order (the window shuffles; deterministic per seed).
    EXPECT_FALSE(std::is_sorted(received.begin(), received.end()));
}

TEST(PsTransport, RpcRetriesThroughDrops)
{
    ps::FaultModel faults;
    faults.drop_prob = 0.25;
    faults.seed = 99;
    ps::InProcTransport transport(2, faults);

    // An echo peer at endpoint 0: every request is acked with its token.
    WorkerGroup echo;
    echo.start(1, [&](std::size_t) {
        ps::Message m;
        for (;;) {
            if (!transport.recv(0, m, std::chrono::microseconds(500))) {
                if (transport.closed()) return;
                continue;
            }
            ps::Message reply;
            reply.kind = ps::Message::Kind::kAck;
            reply.token = m.token;
            reply.clock = m.clock;
            transport.send(m.sender, std::move(reply));
        }
    });

    ps::RpcClient rpc(transport, 1);
    for (std::uint64_t c = 1; c <= 50; ++c) {
        ps::Message request;
        request.clock = c;
        const ps::Message reply = rpc.call(0, std::move(request));
        EXPECT_EQ(reply.clock, c); // the reply to THIS call, not a stale one
    }
    transport.close();
    echo.join();
    // A quarter of the traffic vanished; the protocol recovered all of it.
    EXPECT_GT(transport.dropped(), 0u);
    EXPECT_GT(rpc.retries(), 0u);
}

TEST(PsTransport, RejectsBadConfig)
{
    EXPECT_THROW(ps::InProcTransport(0), std::runtime_error);
    ps::FaultModel faults;
    faults.drop_prob = 1.0;
    EXPECT_THROW(ps::InProcTransport(1, faults), std::runtime_error);
}

// ===================================================== PsShard

/// A shard on its own thread plus an RpcClient talking to it.
struct ShardHarness
{
    ps::InProcTransport transport;
    ps::ServerShard shard;
    WorkerGroup thread;
    ps::RpcClient rpc;

    ShardHarness(std::size_t dim, const ps::ShardConfig& cfg)
        : transport(2 + cfg.workers), shard(0, 0, dim, cfg, transport),
          rpc(transport, 1)
    {
        thread.start(1, [this](std::size_t) { shard.run(); });
    }

    ~ShardHarness()
    {
        transport.close();
        thread.join();
    }

    ps::Message
    push(std::uint32_t worker, std::uint64_t clock,
         const std::vector<float>& gradient, int bits = 32)
    {
        ps::Message m;
        m.kind = ps::Message::Kind::kPush;
        m.worker = worker;
        m.clock = clock;
        m.gradient =
            ps::encode_gradient(gradient.data(), gradient.size(), bits,
                                nullptr);
        return rpc.call(0, std::move(m));
    }

    std::vector<float>
    pull()
    {
        ps::Message m;
        m.kind = ps::Message::Kind::kPull;
        return rpc.call(0, std::move(m)).weights;
    }

    void
    retire(std::uint32_t worker)
    {
        ps::Message m;
        m.kind = ps::Message::Kind::kRetire;
        m.worker = worker;
        rpc.call(0, std::move(m));
    }
};

ps::ShardConfig
shard_config(std::size_t workers, std::size_t tau)
{
    ps::ShardConfig cfg;
    cfg.workers = workers;
    cfg.tau = tau;
    cfg.step_size = 0.5f;
    cfg.batch = 1;
    return cfg;
}

TEST(PsShard, AppliesPushesAndServesPulls)
{
    ShardHarness h(4, shard_config(1, 16));
    const std::vector<float> g = {1.0f, -2.0f, 0.5f, 4.0f};
    const ps::Message ack = h.push(0, 1, g);
    EXPECT_TRUE(ack.accepted);
    EXPECT_EQ(ack.version, 1u);
    const auto w = h.pull();
    ASSERT_EQ(w.size(), 4u);
    // One push at eta 0.5, batch 1: w = -0.5 * g.
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_FLOAT_EQ(w[k], -0.5f * g[k]);
    EXPECT_EQ(h.shard.version(), 1u);
}

TEST(PsShard, DeduplicatesRetransmittedPush)
{
    ShardHarness h(4, shard_config(1, 16));
    const std::vector<float> g = {2.0f, 2.0f, 2.0f, 2.0f};
    EXPECT_TRUE(h.push(0, 1, g).accepted);
    // The same clock again — as after a lost ack. Must be acked
    // positively but NOT applied a second time.
    const ps::Message ack = h.push(0, 1, g);
    EXPECT_TRUE(ack.accepted);
    const auto w = h.pull();
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_FLOAT_EQ(w[k], -1.0f * 1.0f); // one application of -0.5*2
    h.transport.close();
    h.thread.join();
    EXPECT_EQ(h.shard.metrics().pushes, 1u);
    // At least the deliberate resend; RpcClient retransmits on a 200us
    // in-proc timer, so a descheduled shard thread (sanitizer runs)
    // legitimately mints extra duplicates. Exactly-once is the pushes
    // count above, not the duplicate tally.
    EXPECT_GE(h.shard.metrics().duplicates, 1u);
}

TEST(PsShard, GatesRunawayWorkerUntilPeersCatchUp)
{
    // tau = 0: no worker may be ahead of the slowest live worker at all.
    ShardHarness h(2, shard_config(2, 0));
    const std::vector<float> g = {1.0f, 1.0f};
    EXPECT_TRUE(h.push(0, 1, g).accepted);
    // Worker 0 is now 1 round ahead of worker 1 -> its next push bounces.
    EXPECT_FALSE(h.push(0, 2, g).accepted);
    // Worker 1 catches up; the gate opens for worker 0.
    EXPECT_TRUE(h.push(1, 1, g).accepted);
    EXPECT_TRUE(h.push(0, 2, g).accepted);
    h.transport.close();
    h.thread.join();
    // >= 1, not == 1: a nacked push is not dedup-tracked, so an RPC
    // timeout under load may replay it and legitimately gate it twice.
    EXPECT_GE(h.shard.metrics().gated, 1u);
    EXPECT_EQ(h.shard.metrics().pushes, 3u);
}

TEST(PsShard, RetiredWorkerLeavesTheGate)
{
    ShardHarness h(2, shard_config(2, 0));
    const std::vector<float> g = {1.0f, 1.0f};
    EXPECT_TRUE(h.push(0, 1, g).accepted);
    EXPECT_FALSE(h.push(0, 2, g).accepted);
    // Worker 1 finishes without ever pushing; worker 0 must not be
    // wedged against its clock forever.
    h.retire(1);
    EXPECT_TRUE(h.push(0, 2, g).accepted);
    EXPECT_TRUE(h.push(0, 3, g).accepted);
}

TEST(PsShard, AppliesSparsePushGatherScatter)
{
    ShardHarness h(8, shard_config(1, 16));
    const float value[2] = {2.0f, 4.0f};
    const std::uint32_t index[2] = {1, 6};
    ps::Message m;
    m.kind = ps::Message::Kind::kPush;
    m.worker = 0;
    m.clock = 1;
    m.gradient = ps::encode_sparse_gradient(
        ps::GradientView::sparse_view(value, index, 2, 8,
                                      simd::sparse::IndexMode::kAbsolute),
        ps::Codec::from_bits(32), nullptr);
    const ps::Message ack = h.rpc.call(0, std::move(m));
    EXPECT_TRUE(ack.accepted);

    // Only the pushed coordinates moved: w[k] = -eta * g[k] / batch.
    const auto w = h.pull();
    ASSERT_EQ(w.size(), 8u);
    for (std::size_t k = 0; k < 8; ++k) {
        if (k == 1)
            EXPECT_FLOAT_EQ(w[k], -0.5f * 2.0f);
        else if (k == 6)
            EXPECT_FLOAT_EQ(w[k], -0.5f * 4.0f);
        else
            EXPECT_EQ(w[k], 0.0f) << k;
    }
    h.transport.close();
    h.thread.join();
    EXPECT_EQ(h.shard.metrics().sparse_nnz, 2u);
    EXPECT_GT(h.shard.metrics().sparse_bytes, 0u);
    // Numbers processed counts the nnz actually applied, not the dim.
    EXPECT_DOUBLE_EQ(h.shard.metrics().numbers, 2.0);
}

TEST(PsShard, CountsStalenessHistogram)
{
    ShardHarness h(2, shard_config(2, 8));
    const std::vector<float> g = {1.0f, 1.0f};
    // Worker 0 runs 3 rounds ahead while worker 1 sits at clock 0:
    // leads 0, 1, 2 land in the histogram.
    for (std::uint64_t c = 1; c <= 3; ++c)
        EXPECT_TRUE(h.push(0, c, g).accepted);
    h.transport.close();
    h.thread.join();
    const auto& m = h.shard.metrics();
    EXPECT_EQ(m.max_staleness(), 2u);
    ASSERT_GE(m.staleness_counts.size(), 3u);
    EXPECT_EQ(m.staleness_counts[0], 1u);
    EXPECT_EQ(m.staleness_counts[1], 1u);
    EXPECT_EQ(m.staleness_counts[2], 1u);
}

// ===================================================== PsCluster

// The problem itself lives in test_common.h (testutil::cluster_problem)
// so other suites can train on the same canonical instance.
using testutil::cluster_problem;

ps::ClusterConfig
cluster_config(int bits)
{
    ps::ClusterConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.codec = ps::Codec::from_bits(bits);
    cfg.rounds = 250;
    cfg.batch = 16;
    cfg.tau = 8;
    cfg.step_size = 0.25f;
    return cfg;
}

TEST(PsCluster, FullPrecisionConverges)
{
    const auto r = ps::train_cluster(cluster_problem(), cluster_config(32));
    EXPECT_EQ(r.comm, "Cs32");
    EXPECT_LT(r.final_loss, 0.5);
    EXPECT_GT(r.accuracy, 0.78);
    EXPECT_EQ(r.rounds, 500u);
    EXPECT_EQ(r.metrics.total_pushes(), 1000u); // 2 shards x 500 rounds
    // 2 shards x (16B header + 32 floats).
    EXPECT_DOUBLE_EQ(r.bytes_per_round, 2.0 * (16 + 32 * 4));
    EXPECT_GT(r.metrics.worker_seconds, 0.0);
    EXPECT_GT(r.metrics.gnps(), 0.0);
}

TEST(PsCluster, OneBitTracksFullPrecisionAtFractionOfBytes)
{
    const auto full =
        ps::train_cluster(cluster_problem(), cluster_config(32));
    const auto onebit =
        ps::train_cluster(cluster_problem(), cluster_config(1));
    EXPECT_EQ(onebit.comm, "Cs1");
    EXPECT_NEAR(onebit.accuracy, full.accuracy, 0.03);
    EXPECT_LT(onebit.final_loss, full.final_loss + 0.05);
    EXPECT_LT(onebit.bytes_per_round, full.bytes_per_round / 5.0);
    EXPECT_LT(onebit.metrics.total_push_bytes(),
              full.metrics.total_push_bytes() / 5);
}

TEST(PsCluster, DimFiveTwelveMeetsTwentyFoldByteReduction)
{
    // The acceptance configuration: at dim 512 on 2 shards the Cs1 wire
    // traffic per round is >= 20x under Cs32 (bench_cluster_scaling
    // reports the same numbers over full-length runs).
    const auto problem = dataset::generate_logistic_dense(512, 512, 5);
    auto cfg = cluster_config(32);
    cfg.rounds = 20;
    const auto full = ps::train_cluster(problem, cfg);
    cfg.codec = ps::Codec::from_bits(1);
    const auto onebit = ps::train_cluster(problem, cfg);
    EXPECT_DOUBLE_EQ(full.bytes_per_round, 2080.0);
    EXPECT_DOUBLE_EQ(onebit.bytes_per_round, 96.0);
    EXPECT_GE(full.bytes_per_round / onebit.bytes_per_round, 20.0);
}

TEST(PsCluster, SurvivesFaultInjection)
{
    auto cfg = cluster_config(1);
    cfg.rounds = 150;
    cfg.tau = 6;
    cfg.faults.drop_prob = 0.05;
    cfg.faults.jitter_us = 5;
    cfg.faults.reorder_window = 3;
    const auto r = ps::train_cluster(cluster_problem(), cfg);
    // The fabric really misbehaved...
    EXPECT_GT(r.metrics.messages_dropped, 0u);
    EXPECT_GT(r.metrics.rpc_retries, 0u);
    // ...and the protocol still applied every round exactly once,
    // within the staleness bound, and converged.
    EXPECT_EQ(r.metrics.total_pushes(), 2u * 2u * 150u);
    EXPECT_LE(r.metrics.max_staleness(), 6u);
    EXPECT_GT(r.accuracy, 0.75);
}

TEST(PsCluster, StalenessStaysWithinTau)
{
    auto cfg = cluster_config(32);
    cfg.workers = 4;
    cfg.rounds = 120;
    cfg.tau = 2;
    const auto r = ps::train_cluster(cluster_problem(), cfg);
    EXPECT_LE(r.metrics.max_staleness(), 2u);
    const auto histogram = r.metrics.staleness_histogram();
    std::uint64_t total = 0;
    for (const auto count : histogram) total += count;
    EXPECT_EQ(total, r.metrics.total_pushes());
}

TEST(PsCluster, CheckpointCarriesAsyncProvenance)
{
    auto cfg = cluster_config(1);
    cfg.rounds = 30;
    const auto r = ps::train_cluster(cluster_problem(), cfg);
    // Asynchronous explicit communication at 1 bit: "C1", not "Cs1".
    EXPECT_EQ(r.checkpoint.signature.to_string(), "C1");
    EXPECT_EQ(r.checkpoint.weights.size(), cluster_problem().dim);
    cfg.codec = ps::Codec::from_bits(32);
    const auto full = ps::train_cluster(cluster_problem(), cfg);
    EXPECT_EQ(full.checkpoint.signature.to_string(), "C32f");
}

TEST(PsCluster, DeterministicReplayRepeatsMetricCounters)
{
    // The deterministic-replay contract behind --metrics-out: with fault
    // injection off, two runs of the same fixed-seed emulation must
    // report identical values for every counter whose semantics are
    // exactly-once. The asynchronous schedule itself is NOT replayed —
    // thread interleaving varies run to run — so counters that observe
    // the schedule rather than the protocol are legitimately
    // nondeterministic and deliberately not asserted:
    //   - gated and the staleness histogram (which worker ran ahead);
    //   - rpc_retries, duplicates, pulls, messages_sent, wire_bytes_sent
    //     (the RPC layer retransmits on a ~200us timeout, so a scheduler
    //     stall adds retries, duplicate pushes, and extra pulls — and
    //     every gate bounce costs an extra push/nack exchange);
    //   - worker_seconds / wall_seconds / gnps (wall-clock);
    //   - final_loss, accuracy, checkpoint weights (floating-point sums
    //     applied in a schedule-dependent order — the Hogwild point).
    auto cfg = cluster_config(8);
    cfg.rounds = 120;
    const auto a = ps::train_cluster(cluster_problem(), cfg);
    const auto b = ps::train_cluster(cluster_problem(), cfg);

    // Run identity.
    EXPECT_EQ(a.comm, b.comm);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.checkpoint.signature.to_string(),
              b.checkpoint.signature.to_string());
    EXPECT_EQ(a.checkpoint.weights.size(), b.checkpoint.weights.size());

    // Exactly-once counters replay bit-identically...
    EXPECT_EQ(a.metrics.total_pushes(), b.metrics.total_pushes());
    EXPECT_EQ(a.metrics.total_push_bytes(), b.metrics.total_push_bytes());
    EXPECT_DOUBLE_EQ(a.bytes_per_round, b.bytes_per_round);
    EXPECT_DOUBLE_EQ(a.metrics.numbers, b.metrics.numbers);
    EXPECT_EQ(a.metrics.messages_dropped, 0u);
    EXPECT_EQ(b.metrics.messages_dropped, 0u);

    // ...and to the closed forms the protocol guarantees: every worker
    // round is applied exactly once on every shard no matter how many
    // retransmissions or gate bounces it took to get there.
    EXPECT_EQ(a.metrics.total_pushes(),
              cfg.workers * cfg.shards * cfg.rounds);
    EXPECT_DOUBLE_EQ(a.metrics.numbers,
                     static_cast<double>(cfg.workers * cfg.rounds *
                                         cfg.batch *
                                         cluster_problem().dim));

    // When neither run happened to retransmit or bounce off the
    // staleness gate, the fabric totals are deterministic too (each
    // retry or bounce adds messages and possibly a duplicate push or
    // repeated pull).
    if (a.metrics.rpc_retries == 0 && b.metrics.rpc_retries == 0 &&
        a.metrics.total_gated() == 0 && b.metrics.total_gated() == 0) {
        EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
        EXPECT_EQ(a.metrics.wire_bytes_sent, b.metrics.wire_bytes_sent);
        EXPECT_EQ(a.metrics.total_pull_bytes(),
                  b.metrics.total_pull_bytes());
    }

    // Published through the obs bridge, the replayable counters land in
    // two registries with identical exported values.
    obs::MetricsRegistry reg_a, reg_b;
    a.metrics.publish(reg_a, "ps.");
    b.metrics.publish(reg_b, "ps.");
    const auto snap_a = reg_a.snapshot();
    const auto snap_b = reg_b.snapshot();
    for (const char* name : {"ps.pushes_applied", "ps.push_bytes",
                             "ps.messages_dropped"})
        EXPECT_EQ(snap_a.counters.at(name), snap_b.counters.at(name))
            << name;
    EXPECT_DOUBLE_EQ(snap_a.gauges.at("ps.numbers"),
                     snap_b.gauges.at("ps.numbers"));
}

TEST(PsCluster, RejectsBadConfig)
{
    const auto& problem = cluster_problem();
    auto bad = cluster_config(32);
    bad.workers = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.shards = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.shards = problem.dim + 1;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.codec.bits = 7; // kDense at 7 bits names no tier
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.step_size = 0.0f;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.batch = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.rounds = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
}

// ================================================ PsSparseCluster

using testutil::sparse_cluster_problem;

TEST(PsSparseCluster, ConvergesWithinOnePointOfDensePath)
{
    // The acceptance comparison: the sparse gradient path (worker
    // touched-coordinate accumulation -> sparse wire push -> shard
    // gather-scatter apply) on the same examples the dense path trains
    // on, row-major expanded. Statistical efficiency must match.
    const auto& problem = sparse_cluster_problem();
    static const dataset::DenseProblem dense = testutil::densify(problem);

    auto cfg = cluster_config(32);
    cfg.rounds = 250;
    const auto sparse_run = ps::train_cluster(problem, cfg);
    const auto dense_run = ps::train_cluster(dense, cfg);

    EXPECT_GT(dense_run.accuracy, 0.8);
    EXPECT_GE(sparse_run.accuracy, dense_run.accuracy - 0.01)
        << "sparse path must stay within 1pp of the dense path";
    EXPECT_LT(sparse_run.final_loss, dense_run.final_loss + 0.05);

    // Exactly-once protocol accounting holds on the sparse path too.
    EXPECT_EQ(sparse_run.rounds, 500u);
    EXPECT_EQ(sparse_run.metrics.total_pushes(),
              cfg.workers * cfg.shards * cfg.rounds);
    EXPECT_GT(sparse_run.metrics.total_sparse_nnz(), 0u);
    EXPECT_GT(sparse_run.metrics.total_sparse_bytes(), 0u);

    // Sparse traffic is measured from the encoded frames and beats the
    // densified closed form even at full precision (5% rows, batch 16:
    // the round union stays well under the dimension).
    EXPECT_GT(sparse_run.bytes_per_round, 0.0);
    EXPECT_LT(sparse_run.bytes_per_round, dense_run.bytes_per_round);

    // The checkpoint records the sparse signature with i32 indices.
    EXPECT_TRUE(sparse_run.checkpoint.signature.sparse);
    EXPECT_EQ(sparse_run.checkpoint.signature.index_bits, 32);
    EXPECT_EQ(sparse_run.checkpoint.weights.size(), problem.dim);
}

TEST(PsSparseCluster, QuantizedSparsePushesCutBytesFurther)
{
    const auto& problem = sparse_cluster_problem();
    auto cfg = cluster_config(32);
    cfg.rounds = 60;
    const auto full = ps::train_cluster(problem, cfg);
    cfg.codec = ps::Codec::qsgd(4);
    const auto q4 = ps::train_cluster(problem, cfg);
    EXPECT_EQ(q4.comm, "CsQ4");
    // CsQ4-sparse: same gamma index stream, ~4-bit values instead of
    // 32-bit floats — a clear per-round byte cut at matched nnz.
    EXPECT_LT(q4.bytes_per_round, full.bytes_per_round / 1.8);
    EXPECT_NEAR(q4.accuracy, full.accuracy, 0.05);
}

TEST(PsSparseCluster, SurvivesFaultInjectionAndPublishesToServing)
{
    // The sparse end-to-end acceptance path: worker -> quantized sparse
    // push through a faulty fabric -> shard gather-scatter -> checkpoint
    // publish -> serve sparse scores. Runs under TSan in CI.
    const auto& problem = sparse_cluster_problem();

    serve::ModelRegistry registry;
    auto cfg = cluster_config(8);
    cfg.rounds = 150;
    cfg.tau = 6;
    cfg.publish_every = 60;
    cfg.faults.drop_prob = 0.05;
    cfg.faults.jitter_us = 5;
    cfg.faults.reorder_window = 3;
    const auto r = ps::train_cluster(problem, cfg, &registry);

    // The fabric really misbehaved, and the protocol still applied
    // every sparse round exactly once within the staleness bound.
    EXPECT_GT(r.metrics.messages_dropped, 0u);
    EXPECT_GT(r.metrics.rpc_retries, 0u);
    EXPECT_EQ(r.metrics.total_pushes(),
              cfg.workers * cfg.shards * cfg.rounds);
    EXPECT_LE(r.metrics.max_staleness(), cfg.tau);
    EXPECT_GT(r.accuracy, 0.75);
    EXPECT_GT(r.metrics.total_sparse_nnz(), 0u);

    // Published mid-run and finally; the registry serves the sparse
    // checkpoint.
    ASSERT_GE(r.published_versions.size(), 2u);
    EXPECT_EQ(registry.current_version(), r.published_versions.back());
    EXPECT_TRUE(registry.current()->trained_signature().sparse);

    // Score the training rows sparsely through the serving front end.
    serve::ServerConfig serve_cfg;
    serve_cfg.workers = 1;
    serve_cfg.max_batch = 16;
    serve::Server server(registry, serve_cfg);
    std::size_t correct = 0;
    const std::size_t scored = 512;
    for (std::size_t i = 0; i < scored; ++i) {
        const auto& row = problem.rows[i];
        auto pending = server.submit_sparse(row.index, row.value);
        ASSERT_TRUE(pending.has_value());
        const serve::ScoreResult score = pending->get();
        if (score.label == problem.y[i]) ++correct;
    }
    server.stop();
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(scored);
    EXPECT_NEAR(accuracy, r.accuracy, 0.08)
        << "served sparse accuracy must track training accuracy";
}

TEST(PsSparseCluster, RejectsBadConfig)
{
    const auto& problem = sparse_cluster_problem();
    auto bad = cluster_config(32);
    bad.workers = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.shards = problem.dim + 1;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
    bad = cluster_config(32);
    bad.batch = 0;
    EXPECT_THROW(ps::train_cluster(problem, bad), std::runtime_error);
}

// ===================================================== PsServe

TEST(PsServe, ClusterPublishesIntoLiveServingRegistry)
{
    const auto& problem = cluster_problem();

    // A server goes live on a zero model; the training cluster then
    // publishes checkpoints into the same registry mid-run — every swap
    // is picked up by the serving side with no file in between.
    serve::ModelRegistry registry;
    core::SavedModel zero;
    zero.signature = dmgc::Signature::dense_hogwild();
    zero.weights.assign(problem.dim, 0.0f);
    registry.publish(zero, serve::Precision::kFloat32);

    serve::ServerConfig serve_cfg;
    serve_cfg.workers = 1;
    serve_cfg.max_batch = 16;
    serve::Server server(registry, serve_cfg);

    auto cfg = cluster_config(8);
    cfg.rounds = 150;
    cfg.publish_every = 60;
    const auto r = ps::train_cluster(problem, cfg, &registry);

    // Mid-run checkpoints plus the final publish, strictly ordered.
    ASSERT_GE(r.published_versions.size(), 2u);
    for (std::size_t i = 1; i < r.published_versions.size(); ++i)
        EXPECT_GT(r.published_versions[i], r.published_versions[i - 1]);
    EXPECT_EQ(registry.current_version(), r.published_versions.back());
    EXPECT_EQ(registry.current()->trained_signature().to_string(), "C8");

    // The server now scores with the cluster-trained weights.
    std::size_t correct = 0;
    const std::size_t scored = 512;
    for (std::size_t i = 0; i < scored; ++i) {
        auto pending = server.submit_dense(std::vector<float>(
            problem.row(i), problem.row(i) + problem.dim));
        ASSERT_TRUE(pending.has_value());
        const serve::ScoreResult score = pending->get();
        EXPECT_EQ(score.model_version, registry.current_version());
        if (score.label == problem.y[i]) ++correct;
    }
    server.stop();
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(scored);
    EXPECT_NEAR(accuracy, r.accuracy, 0.08)
        << "served accuracy must track the training accuracy";
    EXPECT_GT(accuracy, 0.75);
}

// ===================================================== PsConcurrency

TEST(PsConcurrency, ConcurrentPushPullOneShard)
{
    // Four workers hammer one shard with interleaved pushes and pulls
    // over the real mailboxes — the TSan target exercising every
    // cross-thread edge: send/recv, RPC retransmit, version counter.
    const std::size_t dim = 64;
    const std::size_t workers = 4;
    const std::uint64_t rounds = 150;

    ps::ShardConfig cfg;
    cfg.workers = workers;
    cfg.tau = 1u << 20; // gate open: this test is about data races
    cfg.step_size = 0.01f;
    cfg.batch = 1;

    ps::InProcTransport transport(1 + workers);
    ps::ServerShard shard(0, 0, dim, cfg, transport);
    WorkerGroup shard_thread;
    shard_thread.start(1, [&](std::size_t) { shard.run(); });

    std::atomic<std::uint64_t> pulls_served{0};
    std::atomic<std::uint64_t> rpc_retries{0};
    WorkerGroup group;
    group.start(workers, [&](std::size_t w) {
        ps::RpcClient rpc(transport, 1 + w);
        rng::Xorshift128Plus rng(1000 + w);
        std::vector<float> gradient(dim);
        for (std::uint64_t round = 1; round <= rounds; ++round) {
            for (auto& v : gradient)
                v = static_cast<float>(
                        static_cast<double>(rng() >> 11) * 0x1.0p-53) -
                    0.5f;
            ps::Message push;
            push.kind = ps::Message::Kind::kPush;
            push.worker = static_cast<std::uint32_t>(w);
            push.clock = round;
            push.gradient = ps::encode_gradient(gradient.data(), dim,
                                                w % 2 == 0 ? 8 : 1,
                                                nullptr);
            ASSERT_TRUE(rpc.call(0, std::move(push)).accepted);
            if (round % 3 == 0) {
                ps::Message pull;
                pull.kind = ps::Message::Kind::kPull;
                const ps::Message reply = rpc.call(0, std::move(pull));
                ASSERT_EQ(reply.weights.size(), dim);
                pulls_served.fetch_add(1, std::memory_order_relaxed);
            }
        }
        rpc_retries.fetch_add(rpc.retries(), std::memory_order_relaxed);
    });
    group.join();
    const std::uint64_t version_before_close = shard.version();
    transport.close();
    shard_thread.join();

    EXPECT_EQ(version_before_close, workers * rounds);
    EXPECT_EQ(shard.metrics().pushes, workers * rounds);
    // Pushes are deduplicated by (worker, clock), so the shard-side count
    // is exactly-once even when the RPC layer retransmits. Pulls are
    // idempotent and served on every arrival: a spurious ~200us timeout
    // (common under TSan's slowdown on a loaded box) makes the shard
    // serve the same pull twice, so its count may exceed the client's
    // completed-call count — by at most one per retransmission.
    EXPECT_GE(shard.metrics().pulls, pulls_served.load());
    EXPECT_LE(shard.metrics().pulls,
              pulls_served.load() + rpc_retries.load());
    for (const float w : shard.weights()) EXPECT_TRUE(std::isfinite(w));
}

} // namespace
} // namespace buckwild
