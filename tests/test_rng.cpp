/**
 * @file
 * Unit and statistical tests for the PRNG substrate (§5.2).
 *
 * The AVX2 xorshift128+ must bit-exactly match four scalar lanes, and every
 * source must pass a coarse uniformity check — "not very statistically
 * reliable" (the paper on XORSHIFT) still means uniform enough for
 * stochastic rounding.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "rng/avx2_xorshift.h"
#include "rng/random_source.h"
#include "rng/xorshift.h"
#include "util/stats.h"

namespace buckwild::rng {
namespace {

TEST(Xorshift32, NonZeroAndDeterministic)
{
    Xorshift32 a(123), b(123), c(456);
    bool differs = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        if (va != c()) differs = true;
        EXPECT_NE(va, 0u) << "xorshift32 must never emit its fixed point 0";
    }
    EXPECT_TRUE(differs);
}

TEST(Xorshift32, ZeroSeedIsRemapped)
{
    Xorshift32 g(0);
    EXPECT_NE(g(), 0u);
}

TEST(Xorshift128, PeriodIsLong)
{
    // No repeats of the full state projection in a modest window.
    Xorshift128 g(7);
    std::set<std::uint32_t> seen;
    int repeats = 0;
    for (int i = 0; i < 50000; ++i)
        if (!seen.insert(g()).second) ++repeats;
    // Birthday bound: ~50000^2 / 2^33 ≈ 0.3 expected collisions of the
    // 32-bit *output* — allow a small number, but not a short cycle.
    EXPECT_LT(repeats, 10);
}

TEST(Xorshift128Plus, MatchesReferenceRecurrence)
{
    // Independent reimplementation of one step.
    Xorshift128Plus g(42);
    std::uint64_t sm = 42;
    std::uint64_t s0 = splitmix64(sm);
    std::uint64_t s1 = splitmix64(sm);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t a = s0;
        const std::uint64_t b = s1;
        s0 = b;
        a ^= a << 23;
        s1 = a ^ b ^ (a >> 18) ^ (b >> 5);
        EXPECT_EQ(g(), s1 + b);
    }
}

TEST(Avx2Xorshift, LanesMatchScalarGenerator)
{
    // The vector generator seeds lane k with the (2k, 2k+1)-th splitmix
    // outputs; reconstruct each lane with the scalar generator and compare.
    constexpr std::uint64_t kSeed = 0xDEADBEEFCAFEull;
    Avx2Xorshift128Plus vec(kSeed);

    std::uint64_t sm = kSeed;
    struct Lane { std::uint64_t s0, s1; } lanes[4];
    for (auto& lane : lanes) {
        lane.s0 = splitmix64(sm);
        lane.s1 = splitmix64(sm);
    }
    auto scalar_next = [](Lane& l) {
        std::uint64_t a = l.s0;
        const std::uint64_t b = l.s1;
        l.s0 = b;
        a ^= a << 23;
        l.s1 = a ^ b ^ (a >> 18) ^ (b >> 5);
        return l.s1 + b;
    };

    // Drive the generator through fill() (one 8-word block per step) so
    // the check covers the AVX2 and scalar-fallback builds identically:
    // lane k's 64-bit output lands in words 2k (low) and 2k+1 (high).
    for (int step = 0; step < 64; ++step) {
        std::uint32_t words[8];
        vec.fill(words, 8);
        for (int lane = 0; lane < 4; ++lane) {
            const std::uint64_t got =
                static_cast<std::uint64_t>(words[2 * lane]) |
                (static_cast<std::uint64_t>(words[2 * lane + 1]) << 32);
            EXPECT_EQ(got, scalar_next(lanes[lane]))
                << "step " << step << " lane " << lane;
        }
    }
}

TEST(Avx2Xorshift, FillHandlesNonMultipleOfEight)
{
    Avx2Xorshift128Plus a(1), b(1);
    std::vector<std::uint32_t> x(19), y(19);
    a.fill(x.data(), x.size());
    // Same seed, filled in two chunks of the vector stream → the first 16
    // words (two full steps) must agree.
    b.fill(y.data(), y.size());
    EXPECT_EQ(x, y);
    bool nonzero = false;
    for (auto w : x) nonzero |= (w != 0);
    EXPECT_TRUE(nonzero);
}

TEST(Xorshift128Plus, JumpProducesDisjointStreams)
{
    // Two generators from one seed, one jumped: their outputs must not
    // collide in a modest window (they are 2^64 steps apart).
    Xorshift128Plus a(42), b(42);
    b.jump();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) seen.insert(a());
    int collisions = 0;
    for (int i = 0; i < 5000; ++i)
        if (seen.count(b())) ++collisions;
    EXPECT_EQ(collisions, 0);
}

TEST(Xorshift128Plus, JumpIsDeterministic)
{
    Xorshift128Plus a(7), b(7);
    a.jump();
    b.jump();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xorshift128Plus, JumpedStreamStaysUniform)
{
    Xorshift128Plus g(2024);
    g.jump();
    buckwild::Histogram h(0.0, 1.0, 64);
    for (int i = 0; i < 64 * 4096; ++i)
        h.add(to_unit_float(static_cast<std::uint32_t>(g() >> 32)));
    EXPECT_LT(h.chi_squared_uniform(), 63.0 + 5 * 11.3);
}

TEST(UnitFloat, RangeAndGranularity)
{
    EXPECT_EQ(to_unit_float(0), 0.0f);
    EXPECT_LT(to_unit_float(0xFFFFFFFFu), 1.0f);
    EXPECT_GT(to_unit_float(0xFFFFFFFFu), 0.9999f);
    EXPECT_EQ(to_unit_float(0x80000000u), 0.5f);
}

class SourceUniformity : public ::testing::TestWithParam<RoundingRng>
{};

TEST_P(SourceUniformity, ChiSquaredWithinBound)
{
    // Coarse chi-squared uniformity on [0,1): all three sources must pass.
    // For the shared source, test the *fresh-draw* stream (period draws
    // apart) since repeats within a period are by design.
    const auto strategy = GetParam();
    auto src = make_source(strategy, /*seed=*/2024, /*shared_period=*/8);
    constexpr int kBins = 64;
    constexpr int kSamples = 64 * 4096;
    Histogram h(0.0, 1.0, kBins);
    if (strategy == RoundingRng::kSharedXorshift) {
        for (int i = 0; i < kSamples; ++i) {
            float v = src->next_unit_float();
            for (int skip = 1; skip < 8; ++skip) (void)src->next_word();
            h.add(v);
        }
    } else {
        for (int i = 0; i < kSamples; ++i) h.add(src->next_unit_float());
    }
    // chi2 ~ chi2(63): mean 63, stddev ~11.2; 5 sigma bound.
    EXPECT_LT(h.chi_squared_uniform(), 63.0 + 5 * 11.3)
        << "strategy " << to_string(strategy);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SourceUniformity,
                         ::testing::Values(RoundingRng::kMersenne,
                                           RoundingRng::kXorshift,
                                           RoundingRng::kSharedXorshift),
                         [](const auto& info) {
                             std::string name;
                             for (char c : to_string(info.param))
                                 if (c != '-') name += c;
                             return name;
                         });

TEST(SharedSource, RepeatsWordExactlyPeriodTimes)
{
    SharedXorshiftSource src(/*period=*/4, /*seed=*/99);
    for (int block = 0; block < 16; ++block) {
        const std::uint32_t first = src.next_word();
        for (int i = 1; i < 4; ++i) EXPECT_EQ(src.next_word(), first);
    }
}

TEST(SharedSource, PeriodOneIsFreshEveryCall)
{
    SharedXorshiftSource shared(1, 7);
    XorshiftSource fresh(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(shared.next_word(), fresh.next_word());
}

TEST(SharedSource, RejectsZeroPeriod)
{
    EXPECT_THROW(SharedXorshiftSource(0, 1), std::invalid_argument);
}

TEST(SourceFactory, BuildsEveryStrategy)
{
    for (auto s : {RoundingRng::kMersenne, RoundingRng::kXorshift,
                   RoundingRng::kSharedXorshift}) {
        auto src = make_source(s, 1);
        ASSERT_NE(src, nullptr);
        (void)src->next_word();
    }
}

TEST(SourceMeans, AllSourcesCenterAtOneHalf)
{
    for (auto s : {RoundingRng::kMersenne, RoundingRng::kXorshift,
                   RoundingRng::kSharedXorshift}) {
        auto src = make_source(s, 31337);
        buckwild::RunningStats stats;
        for (int i = 0; i < 100000; ++i)
            stats.add(src->next_unit_float());
        EXPECT_NEAR(stats.mean(), 0.5, 0.01) << to_string(s);
    }
}

} // namespace
} // namespace buckwild::rng
