/**
 * @file
 * Tests for the NN substrate (§7): quantizer grid semantics, layer
 * forward/backward correctness (including numeric gradient checks), the
 * low-precision conv path, and LeNet end-to-end training behaviour
 * across model precisions (the Fig 7b property).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dataset/digits.h"
#include "nn/conv_lowp.h"
#include "nn/lenet.h"
#include "nn/layers.h"
#include "nn/quantizer.h"
#include "test_common.h"

namespace buckwild::nn {
namespace {

// --------------------------------------------------------------- quantizer

TEST(Quantizer, FullPrecisionIsIdentity)
{
    rng::Xorshift128 gen(1);
    QuantSpec spec; // 32 bits
    EXPECT_FALSE(spec.enabled());
    EXPECT_EQ(quantize(0.12345f, spec, gen), 0.12345f);
}

TEST(Quantizer, NearestSnapsToGrid)
{
    rng::Xorshift128 gen(1);
    QuantSpec spec{8, Round::kNearest, 2.0f};
    const float q = spec.quantum();
    EXPECT_FLOAT_EQ(q, 2.0f / 128.0f);
    EXPECT_FLOAT_EQ(quantize(0.0f, spec, gen), 0.0f);
    EXPECT_FLOAT_EQ(quantize(3.2f * q, spec, gen), 3.0f * q);
    EXPECT_FLOAT_EQ(quantize(-5.8f * q, spec, gen), -6.0f * q);
    // Saturation at +-(2^(b-1)-1) quanta.
    EXPECT_FLOAT_EQ(quantize(100.0f, spec, gen), 127.0f * q);
    EXPECT_FLOAT_EQ(quantize(-100.0f, spec, gen), -127.0f * q);
}

TEST(Quantizer, StochasticIsUnbiased)
{
    rng::Xorshift128 gen(7);
    QuantSpec spec{6, Round::kStochastic, 2.0f};
    const float x = 0.3f;
    double sum = 0.0;
    constexpr int kTrials = 200000;
    for (int t = 0; t < kTrials; ++t) sum += quantize(x, spec, gen);
    EXPECT_NEAR(sum / kTrials, x, 4e-4);
}

TEST(Quantizer, ArrayQuantization)
{
    rng::Xorshift128 gen(3);
    QuantSpec spec{4, Round::kNearest, 2.0f};
    std::vector<float> data = {0.1f, 0.9f, -1.7f, 5.0f};
    quantize_array(data.data(), data.size(), spec, gen);
    const float q = spec.quantum();
    for (float v : data) {
        const float ratio = v / q;
        EXPECT_NEAR(ratio, std::nearbyintf(ratio), 1e-5);
        EXPECT_LE(std::fabs(v), 7.0f * q);
    }
}

// ------------------------------------------------------------------ layers

TEST(Layers, ConvForwardKnownValues)
{
    QuantSpec fp; // full precision
    Conv2d conv(1, 1, 2, fp, 9);
    // 3x3 input of ones: each output = sum of the 2x2 kernel.
    Volume in(1, 3, 3);
    for (auto& v : in.data) v = 1.0f;
    const Volume out = conv.forward(in);
    EXPECT_EQ(out.height, 2u);
    EXPECT_EQ(out.width, 2u);
    float wsum = 0.0f;
    for (float w : conv.weights()) wsum += w;
    for (float v : out.data) EXPECT_NEAR(v, wsum, 1e-6);
}

TEST(Layers, ConvGradientMatchesNumeric)
{
    // Numeric gradient check of dL/d(input) with L = sum(out).
    QuantSpec fp;
    Conv2d conv(2, 3, 3, fp, 11);
    Volume in(2, 5, 5);
    rng::Xorshift128 gen(13);
    for (auto& v : in.data) v = rng::to_unit_float(gen()) - 0.5f;

    const Volume out = conv.forward(in);
    Volume ones(out.channels, out.height, out.width);
    for (auto& v : ones.data) v = 1.0f;
    // eta = 0 so backward() does not change the weights.
    Conv2d conv_copy = conv;
    const Volume grad = conv_copy.backward(ones, 0.0f);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < in.size(); i += 7) {
        Volume in_p = in;
        in_p.data[i] += eps;
        Volume in_m = in;
        in_m.data[i] -= eps;
        float lp = 0, lm = 0;
        for (float v : conv.forward(in_p).data) lp += v;
        for (float v : conv.forward(in_m).data) lm += v;
        const float numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(grad.data[i], numeric, 1e-2) << "index " << i;
    }
}

TEST(Layers, MaxPoolForwardAndRouting)
{
    MaxPool2 pool;
    Volume in(1, 4, 4);
    for (std::size_t i = 0; i < 16; ++i)
        in.data[i] = static_cast<float>(i);
    const Volume out = pool.forward(in);
    EXPECT_EQ(out.height, 2u);
    // Max of each 2x2 block: 5, 7, 13, 15.
    EXPECT_FLOAT_EQ(out.data[0], 5.0f);
    EXPECT_FLOAT_EQ(out.data[1], 7.0f);
    EXPECT_FLOAT_EQ(out.data[2], 13.0f);
    EXPECT_FLOAT_EQ(out.data[3], 15.0f);

    Volume g(1, 2, 2);
    g.data = {1.0f, 2.0f, 3.0f, 4.0f};
    const Volume back = pool.backward(g);
    EXPECT_FLOAT_EQ(back.data[5], 1.0f);
    EXPECT_FLOAT_EQ(back.data[7], 2.0f);
    EXPECT_FLOAT_EQ(back.data[13], 3.0f);
    EXPECT_FLOAT_EQ(back.data[15], 4.0f);
    EXPECT_FLOAT_EQ(back.data[0], 0.0f);
}

TEST(Layers, ReluForwardBackward)
{
    Relu relu;
    Volume in(1, 1, 4);
    in.data = {-1.0f, 0.0f, 2.0f, -3.0f};
    const Volume out = relu.forward(in);
    EXPECT_FLOAT_EQ(out.data[0], 0.0f);
    EXPECT_FLOAT_EQ(out.data[2], 2.0f);
    Volume g(1, 1, 4);
    g.data = {5.0f, 5.0f, 5.0f, 5.0f};
    const Volume back = relu.backward(g);
    EXPECT_FLOAT_EQ(back.data[0], 0.0f);
    EXPECT_FLOAT_EQ(back.data[1], 0.0f); // relu'(0) = 0 convention
    EXPECT_FLOAT_EQ(back.data[2], 5.0f);
}

TEST(Layers, DenseGradientMatchesNumeric)
{
    QuantSpec fp;
    Dense fc(6, 4, fp, 17);
    std::vector<float> in = {0.1f, -0.2f, 0.3f, 0.4f, -0.5f, 0.6f};
    const auto out = fc.forward(in);
    ASSERT_EQ(out.size(), 4u);
    std::vector<float> ones(4, 1.0f);
    Dense fc_copy = fc;
    const auto grad = fc_copy.backward(ones, 0.0f);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < in.size(); ++i) {
        auto in_p = in;
        in_p[i] += eps;
        auto in_m = in;
        in_m[i] -= eps;
        float lp = 0, lm = 0;
        for (float v : fc.forward(in_p)) lp += v;
        for (float v : fc.forward(in_m)) lm += v;
        EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-2);
    }
}

TEST(Layers, DenseSgdStepReducesLoss)
{
    QuantSpec fp;
    Dense fc(4, 2, fp, 19);
    const std::vector<float> in = {1.0f, -1.0f, 0.5f, -0.5f};
    for (int step = 0; step < 50; ++step) {
        const auto out = fc.forward(in);
        auto [loss, grad] = SoftmaxXent::loss_and_grad(out, 0);
        (void)loss;
        fc.backward(grad, 0.1f);
    }
    const auto out = fc.forward(in);
    EXPECT_EQ(SoftmaxXent::predict(out), 0);
    auto [final_loss, g] = SoftmaxXent::loss_and_grad(out, 0);
    (void)g;
    EXPECT_LT(final_loss, 0.1f);
}

TEST(Layers, SoftmaxXentProperties)
{
    const std::vector<float> logits = {1.0f, 2.0f, 3.0f};
    auto [loss, grad] = SoftmaxXent::loss_and_grad(logits, 2);
    EXPECT_GT(loss, 0.0f);
    // Gradient sums to zero (softmax minus one-hot).
    EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0f, 1e-6);
    EXPECT_LT(grad[2], 0.0f);
    EXPECT_EQ(SoftmaxXent::predict(logits), 2);
}

TEST(Layers, QuantizedWeightsStayOnGrid)
{
    QuantSpec spec{6, Round::kStochastic, 2.0f};
    Dense fc(8, 4, spec, 23);
    std::vector<float> in(8, 0.5f);
    for (int step = 0; step < 20; ++step) {
        const auto out = fc.forward(in);
        auto [loss, grad] = SoftmaxXent::loss_and_grad(out, 1);
        (void)loss;
        fc.backward(grad, 0.05f);
    }
    const float q = spec.quantum();
    for (float w : fc.weights()) {
        const float ratio = w / q;
        EXPECT_NEAR(ratio, std::nearbyintf(ratio), 1e-4)
            << "weight off grid: " << w;
    }
}

TEST(Layers, ShapeValidation)
{
    QuantSpec fp;
    Conv2d conv(2, 2, 3, fp, 1);
    Volume wrong_channels(1, 8, 8);
    EXPECT_THROW(conv.forward(wrong_channels), std::runtime_error);
    Volume too_small(2, 2, 2);
    EXPECT_THROW(conv.forward(too_small), std::runtime_error);
    Dense fc(4, 2, fp, 1);
    EXPECT_THROW(fc.forward({1.0f, 2.0f}), std::runtime_error);
}

// ----------------------------------------------------------- lowp conv

TEST(LowpConv, ShapesMatchAlexNetConv1)
{
    const ConvShape s = ConvShape::alexnet_conv1();
    EXPECT_EQ(s.out_size(), 55u);
    EXPECT_EQ(s.patch_elements(), 363u);
    EXPECT_EQ(s.patches(), 3025u);
    EXPECT_NEAR(s.macs(), 96.0 * 3025.0 * 363.0, 1.0);
}

TEST(LowpConv, ForwardProducesFiniteOutput)
{
    ConvShape s;
    s.in_size = 31;
    s.filters = 4;
    s.kernel = 7;
    s.stride = 4;
    LowpConv<std::int8_t, std::int8_t> conv(s, 5);
    const auto out = conv.forward(simd::best_impl());
    EXPECT_EQ(out.size(), s.filters * s.patches());
    for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(LowpConv, Avx2MatchesReference)
{
    ConvShape s;
    s.in_size = 23;
    s.filters = 3;
    s.kernel = 5;
    s.stride = 2;
    LowpConv<std::int8_t, std::int8_t> a(s, 7);
    LowpConv<std::int8_t, std::int8_t> b(s, 7);
    const auto ra = a.forward(simd::Impl::kAvx2);
    const auto rb = b.forward(simd::Impl::kReference);
    testutil::expect_all_eq(ra, rb, "lowp conv output");
}

// --------------------------------------------------------------- LeNet

dataset::DigitDataset
train_set()
{
    return dataset::generate_digits(600, 41, 0.1f);
}

dataset::DigitDataset
test_set()
{
    return dataset::generate_digits(200, 42, 0.1f);
}

TEST(LenetTraining, FullPrecisionLearnsDigits)
{
    LenetConfig cfg;
    cfg.epochs = 5;
    Lenet net(cfg);
    const auto m = net.train(train_set(), test_set());
    EXPECT_GT(m.test_accuracy, 0.85)
        << "seven-segment digits are easy; the CNN must learn them";
    ASSERT_GE(m.train_loss_trace.size(), 2u);
    EXPECT_LT(m.train_loss_trace.back(), m.train_loss_trace.front());
}

TEST(LenetTraining, EightBitUnbiasedMatchesFullPrecision)
{
    // Fig 7b: "it is possible to train accurately even below 8-bits,
    // using unbiased rounding".
    LenetConfig cfg;
    cfg.epochs = 3;
    Lenet fp(cfg);
    const auto mf = fp.train(train_set(), test_set());

    cfg.weight_spec = QuantSpec{8, Round::kStochastic, 2.0f};
    Lenet q8(cfg);
    const auto m8 = q8.train(train_set(), test_set());
    EXPECT_GT(m8.test_accuracy, mf.test_accuracy - 0.08);
}

TEST(LenetTraining, QuantizedActivationsStillLearn)
{
    // The D term for deep learning: 8-bit activations alongside 8-bit
    // weights (the paper's D8M8 deep-learning configuration).
    LenetConfig cfg;
    cfg.epochs = 4;
    cfg.weight_spec = QuantSpec{8, Round::kStochastic, 2.0f};
    cfg.activation_spec = QuantSpec{8, Round::kNearest, 8.0f}; // activations exceed the weight range
    Lenet net(cfg);
    const auto m = net.train(train_set(), test_set());
    EXPECT_GT(m.test_accuracy, 0.85);
}

TEST(LenetTraining, VeryLowPrecisionBiasedDegrades)
{
    // The contrast in Fig 7b: at very low bits, biased rounding loses
    // noticeably more accuracy than unbiased rounding.
    LenetConfig cfg;
    cfg.epochs = 3;
    cfg.weight_spec = QuantSpec{5, Round::kStochastic, 2.0f};
    Lenet unbiased(cfg);
    const auto mu = unbiased.train(train_set(), test_set());

    cfg.weight_spec = QuantSpec{5, Round::kNearest, 2.0f};
    Lenet biased(cfg);
    const auto mb = biased.train(train_set(), test_set());

    EXPECT_GT(mu.test_accuracy, mb.test_accuracy - 0.02)
        << "unbiased must not be worse";
}

} // namespace
} // namespace buckwild::nn
