/**
 * @file
 * buckwild_serve — low-precision inference server with a closed-loop
 * synthetic load generator.
 *
 * Loads a BUCKWILD-MODEL file (written by buckwild_train --save),
 * re-quantizes it to a serving precision, and drives a closed-loop load
 * through the micro-batched serving engine, printing a metrics table:
 *
 *     buckwild_train --dense 256 4000 --save model.bw
 *     buckwild_serve --model model.bw --precision Ms8 --batch 1,16
 *     buckwild_serve --model model.bw --libsvm data.svm --workers 2
 *
 * With --listen the tool becomes the network front door instead: the
 * model is published under --name and a gate::GateServer accepts
 * gate-protocol clients (drive it with tools/buckwild_gate):
 *
 *     buckwild_serve --model model.bw --listen 127.0.0.1:7070 \
 *         --workers 2 --obs-port 9900
 *
 * Run with --help for the full flag list.
 */
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dataset/digits.h"
#include "dataset/libsvm.h"
#include "dataset/problem.h"
#include "gate/gate.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "obs_cli.h"
#include "serve/serve.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace buckwild;

void
usage()
{
    std::printf(
        "buckwild_serve — micro-batched low-precision inference serving\n"
        "\n"
        "model:\n"
        "  --model PATH           BUCKWILD-MODEL file (required)\n"
        "  --precision P          serving precision Ms8 | Ms16 | Ms32f\n"
        "                         (default: the precision the model was\n"
        "                         trained at)\n"
        "\n"
        "load (default: synthetic dense requests at the model dimension):\n"
        "  --libsvm PATH          sparse requests from a LIBSVM file\n"
        "  --digits N             N synthetic digit images (dim must be %zu)\n"
        "  --requests N           total requests to serve (default 20000)\n"
        "  --clients C            closed-loop client threads (default 1)\n"
        "  --window W             in-flight requests per client (default 64;\n"
        "                         1 = strict request-response)\n"
        "\n"
        "network serving (the front door; see tools/buckwild_gate):\n"
        "  --listen HOST:PORT     serve the gate wire protocol instead of\n"
        "                         the closed-loop bench (port 0 = any free\n"
        "                         port, printed at startup)\n"
        "  --name NAME            model name to publish (default: default)\n"
        "  --duration S           exit after S seconds (default: run until\n"
        "                         SIGINT/SIGTERM)\n"
        "  --tenant-rate R        per-tenant admission rate, requests/s\n"
        "                         (default: unlimited)\n"
        "  --tenant-burst B       per-tenant token-bucket burst (default 32)\n"
        "  --interactive-cap N    interactive lane capacity (default 256)\n"
        "  --batch-cap N          batch lane capacity (default 1024)\n"
        "\n"
        "serving:\n"
        "  --workers W            scoring worker threads (default 1)\n"
        "  --batch B[,B,...]      micro-batch bound sweep (default 1,16)\n"
        "  --queue N              queue capacity (default 1024)\n"
        "  --linger US            batch-fill linger in microseconds\n"
        "                         (default 200; 0 = no linger)\n"
        "  --impl I               reference | naive | avx2 | fma | avx512\n"
        "                         (default: fastest supported; the\n"
        "                         BUCKWILD_KERNEL_IMPL env var overrides)\n"
        "  --seed X               load-generator RNG seed\n"
        "  --csv                  also print the table as CSV\n"
        "\n"
        "observability:\n"
        "%s",
        dataset::kDigitPixels, tools::obs_cli_usage());
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

struct Options
{
    std::string model_path;
    std::optional<std::string> precision;
    std::string libsvm_path;
    std::size_t digit_count = 0;
    std::size_t requests = 20000;
    std::size_t clients = 1;
    std::size_t window = 64;
    std::size_t workers = 1;
    std::vector<std::size_t> batches = {1, 16};
    std::size_t queue_capacity = 1024;
    std::size_t linger_us = 200;
    std::optional<simd::Impl> impl;
    // Matches buckwild_train's default so the synthetic load is drawn
    // from the same generative model the trained weights fit.
    std::uint64_t seed = 0x5EED;
    tools::ObsCliOptions obs;
    bool csv = false;
    // Network front-door mode.
    std::string listen;
    std::string gate_name = "default";
    double duration_s = 0.0;
    double tenant_rate = 0.0; // <= 0 = unlimited
    double tenant_burst = 32.0;
    std::size_t interactive_cap = 256;
    std::size_t batch_cap = 1024;
};

std::vector<std::size_t>
parse_batch_list(const std::string& text)
{
    std::vector<std::size_t> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        const std::size_t b = std::strtoull(tok.c_str(), nullptr, 10);
        if (b == 0) die("batch sizes must be >= 1: " + text);
        out.push_back(b);
    }
    if (out.empty()) die("empty --batch list");
    return out;
}

Options
parse_args(int argc, char** argv)
{
    Options opt;
    auto need = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) die(std::string("missing value for ") + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--model") {
            opt.model_path = need(i, "--model");
        } else if (a == "--precision") {
            opt.precision = need(i, "--precision");
        } else if (a == "--libsvm") {
            opt.libsvm_path = need(i, "--libsvm");
        } else if (a == "--digits") {
            opt.digit_count =
                std::strtoull(need(i, "--digits"), nullptr, 10);
        } else if (a == "--requests") {
            opt.requests =
                std::strtoull(need(i, "--requests"), nullptr, 10);
        } else if (a == "--clients") {
            opt.clients =
                std::strtoull(need(i, "--clients"), nullptr, 10);
        } else if (a == "--window") {
            opt.window =
                std::strtoull(need(i, "--window"), nullptr, 10);
        } else if (a == "--workers") {
            opt.workers =
                std::strtoull(need(i, "--workers"), nullptr, 10);
        } else if (a == "--batch") {
            opt.batches = parse_batch_list(need(i, "--batch"));
        } else if (a == "--queue") {
            opt.queue_capacity =
                std::strtoull(need(i, "--queue"), nullptr, 10);
        } else if (a == "--linger") {
            opt.linger_us =
                std::strtoull(need(i, "--linger"), nullptr, 10);
        } else if (a == "--impl") {
            const std::string m = need(i, "--impl");
            if (const auto impl = simd::parse_impl(m)) opt.impl = impl;
            else die("unknown impl: " + m);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        } else if (a == "--listen") {
            opt.listen = need(i, "--listen");
        } else if (a == "--name") {
            opt.gate_name = need(i, "--name");
        } else if (a == "--duration") {
            opt.duration_s = std::strtod(need(i, "--duration"), nullptr);
        } else if (a == "--tenant-rate") {
            opt.tenant_rate =
                std::strtod(need(i, "--tenant-rate"), nullptr);
        } else if (a == "--tenant-burst") {
            opt.tenant_burst =
                std::strtod(need(i, "--tenant-burst"), nullptr);
        } else if (a == "--interactive-cap") {
            opt.interactive_cap =
                std::strtoull(need(i, "--interactive-cap"), nullptr, 10);
        } else if (a == "--batch-cap") {
            opt.batch_cap =
                std::strtoull(need(i, "--batch-cap"), nullptr, 10);
        } else if (tools::parse_obs_flag(opt.obs, argc, argv, i)) {
            // shared observability flag, consumed
        } else if (a == "--csv") {
            opt.csv = true;
        } else {
            die("unknown flag: " + a);
        }
    }
    if (opt.model_path.empty()) die("no --model given");
    if (opt.requests == 0 || opt.clients == 0) die("need requests/clients >= 1");
    return opt;
}

/// One pre-generated request: dense features or a sparse row, plus the
/// label the load generator knows (for the accuracy column).
struct LoadSet
{
    bool sparse = false;
    std::size_t dim = 0;
    std::vector<std::vector<float>> dense;
    std::vector<std::vector<std::uint32_t>> index;
    std::vector<std::vector<float>> value;
    std::vector<float> labels;

    std::size_t size() const { return labels.size(); }
};

LoadSet
build_load(const Options& opt, std::size_t model_dim)
{
    LoadSet load;
    load.dim = model_dim;
    if (!opt.libsvm_path.empty()) {
        const auto p =
            dataset::load_libsvm_file(opt.libsvm_path, model_dim);
        load.sparse = true;
        for (std::size_t i = 0; i < p.examples(); ++i) {
            load.index.push_back(p.rows[i].index);
            load.value.push_back(p.rows[i].value);
            load.labels.push_back(p.y[i]);
        }
    } else if (opt.digit_count > 0) {
        if (model_dim != dataset::kDigitPixels)
            die("--digits needs a model of dimension " +
                std::to_string(dataset::kDigitPixels));
        const auto d = dataset::generate_digits(opt.digit_count, opt.seed);
        for (std::size_t i = 0; i < d.count; ++i) {
            load.dense.emplace_back(d.image(i),
                                    d.image(i) + dataset::kDigitPixels);
            // Binary view of the 10-class task: digit >= 5 is +1.
            load.labels.push_back(d.labels[i] >= 5 ? 1.0f : -1.0f);
        }
    } else {
        const auto p = dataset::generate_logistic_dense(
            model_dim, std::min<std::size_t>(opt.requests, 4096), opt.seed);
        for (std::size_t i = 0; i < p.examples; ++i) {
            load.dense.emplace_back(p.row(i), p.row(i) + p.dim);
            load.labels.push_back(p.y[i]);
        }
    }
    if (load.size() == 0) die("empty load set");
    return load;
}

struct RunResult
{
    serve::ServeMetrics metrics;
    double wall_seconds = 0.0;
    double accuracy = 0.0;
};

/**
 * Drives `opt.requests` requests through a fresh server in a closed
 * loop: each client keeps at most `opt.window` requests in flight
 * through the zero-copy slot path, submitting the free part of its
 * window as one vectored burst and reaping the oldest slot when the
 * window fills (window 1 = strict request-response). Backpressure
 * rejects are retried after a yield and counted by the server's
 * metrics.
 */
RunResult
run_closed_loop(const Options& opt, const serve::ModelRegistry& registry,
                const LoadSet& load, std::size_t max_batch)
{
    serve::ServerConfig cfg;
    cfg.workers = opt.workers;
    cfg.max_batch = max_batch;
    cfg.queue_capacity = opt.queue_capacity;
    cfg.linger_us = opt.linger_us;
    if (opt.impl) cfg.impl = *opt.impl;
    // Live observability shares the process-global registry so the
    // sampler and /metrics see requests as they happen (the per-run
    // private registry is still summarized into ServeMetrics).
    if (opt.obs.live())
        cfg.metrics_registry = &obs::MetricsRegistry::global();
    serve::Server server(registry, cfg);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> correct{0};
    Stopwatch wall;
    run_parallel(opt.clients, [&](std::size_t) {
        const std::size_t window = std::max<std::size_t>(opt.window, 1);
        std::vector<serve::ReplySlot> slots(window);
        std::vector<std::size_t> in_flight(window); // load index per slot
        std::size_t head = 0, tail = 0, local_correct = 0;

        auto reap_oldest = [&] {
            serve::ReplySlot& slot = slots[tail % window];
            if (!slot.wait())
                throw std::runtime_error("request failed: " + slot.error);
            if (slot.result.label == load.labels[in_flight[tail % window]])
                ++local_correct;
            ++tail;
        };

        std::vector<serve::ViewRequest> burst;
        burst.reserve(window);
        for (;;) {
            // Claim one ticket per free window slot; a final over-claim
            // past opt.requests just stops the other clients too.
            const std::size_t want = window - (head - tail);
            std::size_t got = 0, first = 0;
            if (want > 0) {
                first = next.fetch_add(want, std::memory_order_relaxed);
                if (first < opt.requests)
                    got = std::min(want, opt.requests - first);
            }
            if (got == 0) {
                if (tail == head) break; // no tickets, nothing in flight
                reap_oldest();
                continue;
            }
            burst.clear();
            for (std::size_t k = 0; k < got; ++k) {
                const std::size_t i = (first + k) % load.size();
                serve::ReplySlot& slot = slots[(head + k) % window];
                slot.reset();
                in_flight[(head + k) % window] = i;
                serve::ViewRequest view;
                if (load.sparse) {
                    view.index = load.index[i].data();
                    view.value = load.value[i].data();
                    view.length = load.value[i].size();
                } else {
                    view.dense = load.dense[i].data();
                    view.length = load.dense[i].size();
                }
                view.slot = &slot;
                burst.push_back(view);
            }
            std::size_t sent = 0;
            while (sent < got) {
                sent += server.submit_views(burst.data() + sent,
                                            got - sent);
                if (sent < got) std::this_thread::yield(); // shed + retry
            }
            head += got;
            if (head - tail == window) reap_oldest();
        }
        while (tail < head) reap_oldest();
        correct.fetch_add(local_correct, std::memory_order_relaxed);
    });
    RunResult result;
    result.wall_seconds = wall.seconds();
    server.stop();
    result.metrics = server.metrics();
    result.accuracy = static_cast<double>(correct.load()) /
        static_cast<double>(opt.requests);
    return result;
}

std::atomic<bool> g_stop{false};

void
on_signal(int)
{
    g_stop.store(true, std::memory_order_release);
}

/**
 * Front-door mode: publish the model under --name, bind the gate, and
 * serve the wire protocol until --duration elapses or a signal lands.
 * The gate.* instruments go to the process-global registry so
 * --obs-port exposes them on /metrics.
 */
int
run_gate(const Options& opt, const core::SavedModel& saved,
         serve::Precision precision)
{
    gate::ModelRouter router;
    router.publish(opt.gate_name, saved, precision);

    const net::Address bind = net::parse_address(opt.listen);
    gate::GateConfig cfg;
    cfg.bind_address = bind.host;
    cfg.port = bind.port;
    cfg.workers = opt.workers;
    cfg.interactive_capacity = opt.interactive_cap;
    cfg.batch_capacity = opt.batch_cap;
    cfg.admission.tenant_rate = opt.tenant_rate;
    cfg.admission.tenant_burst = opt.tenant_burst;
    if (opt.impl) cfg.impl = *opt.impl;
    cfg.metrics_registry = &obs::MetricsRegistry::global();

    const dmgc::PerfModel perf = dmgc::PerfModel::paper_model();
    gate::GateServer server(router, perf, cfg);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // The scripts that drive this (CI smoke, bench harnesses) parse
    // this line for the bound port — keep the format stable.
    std::printf("gate: model '%s' listening on %s:%u (%zu workers, "
                "lanes %zu/%zu)\n",
                opt.gate_name.c_str(), bind.host.c_str(), server.port(),
                opt.workers, opt.interactive_cap, opt.batch_cap);
    std::fflush(stdout);

    Stopwatch up;
    while (!g_stop.load(std::memory_order_acquire)) {
        if (opt.duration_s > 0.0 && up.seconds() >= opt.duration_s)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    const gate::GateStats stats = server.stats();
    std::printf("gate: admitted %llu, completed %llu, shed %llu, "
                "deadline-missed %llu, malformed %llu\n",
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.deadline_missed),
                static_cast<unsigned long long>(stats.malformed));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    try {
        opt = parse_args(argc, argv);

        const auto saved = core::load_model_file(opt.model_path);
        const serve::Precision precision = opt.precision
            ? serve::parse_precision(*opt.precision)
            : serve::precision_from_signature(saved.signature);

        serve::ModelRegistry registry;
        registry.publish(saved, precision);
        const auto model = registry.current();
        std::printf("model %s: dim %zu, loss %s, trained %s, serving %s "
                    "(%zu model bytes/request, %s kernels)\n",
                    opt.model_path.c_str(), model->dim(),
                    to_string(model->loss()).c_str(),
                    model->trained_signature().to_string().c_str(),
                    to_string(precision).c_str(), model->bytes(),
                    simd::to_string(
                        opt.impl.value_or(simd::best_impl())));

        if (!opt.listen.empty()) {
            // Network front-door mode; /metrics piggybacks on the same
            // shared observability session as the bench mode.
            tools::ObsSession::Workload workload;
            workload.signature = dmgc::Signature::dense_hogwild();
            workload.threads = opt.workers;
            workload.model_size = model->dim();
            workload.process = "serve";
            tools::ObsSession session(opt.obs, workload);
            const int rc = run_gate(opt, saved, precision);
            session.finish();
            return rc;
        }

        const LoadSet load = build_load(opt, model->dim());
        std::printf("load: %zu unique %s requests, %zu total, %zu clients, "
                    "%zu workers, queue %zu\n",
                    load.size(), load.sparse ? "sparse" : "dense",
                    opt.requests, opt.clients, opt.workers,
                    opt.queue_capacity);

        TablePrinter table(
            "serving throughput/latency (" + to_string(precision) + ")",
            {"batch B", "req/s", "p50 us", "p95 us", "p99 us",
             "mean B", "GNPS", "rejects", "accuracy"});

        // Scoring reads float requests against an Ms-precision model, so
        // the roofline signature is the Table-2 D32fM<s> row.
        tools::ObsSession::Workload workload;
        workload.signature = dmgc::Signature::dense_hogwild();
        if (precision == serve::Precision::kInt8)
            workload.signature.model = dmgc::Precision::fixed(8);
        else if (precision == serve::Precision::kInt16)
            workload.signature.model = dmgc::Precision::fixed(16);
        workload.threads = opt.workers;
        workload.model_size = model->dim();
        workload.numbers_gauge = "serve.numbers";
        workload.seconds_gauge = "serve.busy_seconds";
        tools::ObsSession session(opt.obs, workload);

        for (const std::size_t b : opt.batches) {
            const RunResult run =
                run_closed_loop(opt, registry, load, b);
            const auto& m = run.metrics;
            m.publish(obs::MetricsRegistry::global(),
                      "serve.b" + std::to_string(b) + ".");
            table.add_row(
                {std::to_string(b),
                 format_num(static_cast<double>(m.requests) /
                                run.wall_seconds,
                            5),
                 format_num(m.latency_percentile(50) * 1e6, 4),
                 format_num(m.latency_percentile(95) * 1e6, 4),
                 format_num(m.latency_percentile(99) * 1e6, 4),
                 format_num(m.mean_batch_size(), 3),
                 format_num(m.gnps(), 3), std::to_string(m.rejects),
                 format_num(run.accuracy, 4)});
        }
        table.print(std::cout);
        if (opt.csv) table.print_csv(std::cout);

        session.finish();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
