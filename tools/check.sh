#!/usr/bin/env bash
# Sanitizer gate for the concurrent subsystems (and everything they lean
# on):
#
#   0. lint: no quantization/rounding primitive outside src/lowp/
#      (tools/lint_quantizers.sh);
#   1. build the whole tree under ASan+UBSan and run the full gtest suite
#      (including test_lowp's cross-layer bit-identity goldens);
#   2. build under TSan and run test_serve + test_ps + test_net +
#      test_obs + test_live + test_gate, which exercise the registry
#      hot-swap, the request queue, the serving worker loop, the
#      parameter-server shards/transport/cluster, the socket fabric
#      (accept/reader threads, frame I/O, loopback clusters), the
#      observability counters/trace rings, the live tier (sampler
#      thread, HTTP scrapes, and the conformance/perf listeners racing
#      hot-path writers), and the serving front door (event loop +
#      scoring workers + pipelined clients on one gate, malformed
#      ingress included) — the races these subsystems could plausibly
#      have.
#
# Usage: tools/check.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: tools/check.sh [-j N]" >&2; exit 2 ;;
  esac
done

echo "== lint: substrate is the only quantizer =="
tools/lint_quantizers.sh

echo "== ASan+UBSan: full suite =="
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan

echo "== TSan: serving + parameter-server + net + obs + gate concurrency suites =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target test_serve test_ps test_net test_obs test_live test_gate
ctest --preset tsan -R '^(Serve|Serving|ModelRegistry|InferenceEngine|RequestQueue|Server|Ps|Net|Obs|Gate)'

echo "check.sh: all gates passed"
