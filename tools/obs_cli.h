/**
 * @file
 * Shared observability CLI plumbing for the buckwild_* tools.
 *
 * Every tool gets the same six flags from one parser instead of three
 * divergent copies:
 *
 *   --trace-out PATH         Chrome trace_event JSON of the run
 *   --metrics-out PATH       flat-JSON metrics registry dump at exit
 *   --timeseries-out PATH    sampler JSONL flight record (one line/tick)
 *   --obs-port N             serve GET /metrics + /healthz on port N
 *                            (0 = pick a free port and print it)
 *   --obs-period-ms N        sampler tick period (default 500)
 *   --conformance-band LO,HI acceptable measured/predicted GNPS ratio
 *
 * and one ObsSession RAII object that wires the live tier together:
 * tracer enablement, the Sampler (with the tool's GNPS input gauges as
 * rate gauges), the perf-counter publisher and DMGC conformance watchdog
 * as sampler listeners, and the HTTP exporter — then tears it all down
 * and writes the trace/metrics files in finish().
 *
 * The live tier (sampler + listeners + exporter) activates only when
 * --obs-port or --timeseries-out was given; the batch flags
 * (--trace-out/--metrics-out) keep working on their own exactly as
 * before.
 */
#ifndef BUCKWILD_TOOLS_OBS_CLI_H
#define BUCKWILD_TOOLS_OBS_CLI_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dmgc/signature.h"
#include "lowp/round.h"
#include "obs/obs.h"
#include "simd/registry.h"

namespace buckwild::tools {

/**
 * Publishes the kernel registry's per-process resolution as labeled
 * gauges so /metrics shows which variant each op actually runs on this
 * host: `kern.kernel_impl{op="simd.dot_d8m8",impl="avx512"} = 1` for
 * every registered op, plus `kern.best_impl{impl="..."} = 1` for the
 * resolver's overall pick. Values are presence markers (always 1); the
 * label carries the information.
 */
inline void
publish_kernel_impl_gauges(obs::MetricsRegistry& registry)
{
    simd::register_dense_kernels();
    lowp::register_lowp_kernels();
    const auto& lib = simd::KernelLibrary::instance();
    for (const std::string& op : lib.ops()) {
        const auto resolved = lib.resolve_auto(op);
        registry
            .gauge(obs::labeled(
                "kern.kernel_impl",
                {{"op", op}, {"impl", simd::to_string(resolved.impl)}}))
            .set(1.0);
    }
    registry
        .gauge(obs::labeled(
            "kern.best_impl",
            {{"impl", simd::to_string(simd::best_impl())}}))
        .set(1.0);
}

struct ObsCliOptions
{
    std::string trace_path;
    std::string metrics_path;
    std::string timeseries_path;
    /// --obs-port value; -1 = no HTTP endpoint, 0 = ephemeral port.
    int port = -1;
    std::size_t period_ms = 500;
    double band_lo = 0.02;
    double band_hi = 50.0;

    /// True when the live tier (sampler thread + /metrics) should run.
    bool live() const { return port >= 0 || !timeseries_path.empty(); }
};

/// The usage-text block for the shared flags (printed by every tool
/// under its "observability:" heading).
inline const char*
obs_cli_usage()
{
    return
        "  --trace-out PATH       write a Chrome trace_event JSON of the\n"
        "                         run (open in chrome://tracing / Perfetto)\n"
        "  --metrics-out PATH     write the metrics registry as flat JSON\n"
        "  --timeseries-out PATH  append one JSONL line per sampler tick\n"
        "                         (live counters, gauges, derived rates)\n"
        "  --obs-port N           serve Prometheus GET /metrics and\n"
        "                         GET /healthz on port N (0 = any free\n"
        "                         port, printed at startup)\n"
        "  --obs-period-ms N      sampler period in ms (default 500)\n"
        "  --conformance-band L,H flag ticks whose measured/predicted\n"
        "                         GNPS ratio leaves [L, H]\n";
}

namespace detail {

[[noreturn]] inline void
obs_die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

inline const char*
obs_need(int argc, char** argv, int& i, const char* flag)
{
    if (i + 1 >= argc)
        obs_die(std::string("missing value for ") + flag);
    return argv[++i];
}

} // namespace detail

/**
 * Consumes argv[i] if it is one of the shared observability flags
 * (advancing `i` over the flag's value). Returns false — leaving `i`
 * untouched — for anything else, so tools call this from the tail of
 * their flag-dispatch chain.
 */
inline bool
parse_obs_flag(ObsCliOptions& opt, int argc, char** argv, int& i)
{
    const std::string a = argv[i];
    if (a == "--trace-out") {
        opt.trace_path = detail::obs_need(argc, argv, i, "--trace-out");
    } else if (a == "--metrics-out") {
        opt.metrics_path = detail::obs_need(argc, argv, i, "--metrics-out");
    } else if (a == "--timeseries-out") {
        opt.timeseries_path =
            detail::obs_need(argc, argv, i, "--timeseries-out");
    } else if (a == "--obs-port") {
        const char* v = detail::obs_need(argc, argv, i, "--obs-port");
        char* rest = nullptr;
        const long port = std::strtol(v, &rest, 10);
        if (rest == v || *rest != '\0' || port < 0 || port > 65535)
            detail::obs_die("bad --obs-port (want 0..65535): " +
                            std::string(v));
        opt.port = static_cast<int>(port);
    } else if (a == "--obs-period-ms") {
        const char* v = detail::obs_need(argc, argv, i, "--obs-period-ms");
        char* rest = nullptr;
        opt.period_ms = std::strtoull(v, &rest, 10);
        if (rest == v || *rest != '\0' || opt.period_ms == 0)
            detail::obs_die("--obs-period-ms must be >= 1");
    } else if (a == "--conformance-band") {
        const char* v =
            detail::obs_need(argc, argv, i, "--conformance-band");
        char* rest = nullptr;
        opt.band_lo = std::strtod(v, &rest);
        if (rest == nullptr || *rest != ',')
            detail::obs_die("bad --conformance-band (want LO,HI): " +
                            std::string(v));
        opt.band_hi = std::strtod(rest + 1, nullptr);
        if (!(opt.band_lo > 0.0) || !(opt.band_hi > opt.band_lo))
            detail::obs_die("bad --conformance-band (want 0 < LO < HI): " +
                            std::string(v));
    } else {
        return false;
    }
    return true;
}

/**
 * RAII wiring of the live observability tier around one tool run.
 *
 * Construct it (after parsing flags) with the workload's DMGC identity —
 * the signature the conformance watchdog holds the run's roofline to,
 * plus the names of the cumulative numbers/seconds gauges that workload
 * publishes. When the options request the live tier this starts, in
 * order: hardware perf counters, the conformance watchdog, the sampler
 * thread (perf publisher and watchdog as per-tick listeners), and the
 * HTTP exporter. finish() (or the destructor) tears the tier down in
 * reverse and then writes the batch trace/metrics files.
 */
class ObsSession
{
  public:
    struct Workload
    {
        dmgc::Signature signature;
        std::size_t threads = 1;
        /// Model dimension n for p(n); 0 = no roofline prediction.
        std::size_t model_size = 0;
        std::string numbers_gauge = "serve.numbers";
        std::string seconds_gauge = "serve.busy_seconds";
        /// Process label stamped into the trace (process_name metadata);
        /// this is what buckwild_tracemerge shows per pid. Empty = keep
        /// the exporter's traditional single-process output.
        std::string process;
    };

    ObsSession(const ObsCliOptions& opt, const Workload& workload)
        : opt_(opt)
    {
        if (!opt_.trace_path.empty())
            obs::Tracer::global().set_enabled(true);
        if (!workload.process.empty())
            obs::Tracer::global().set_process(workload.process);
        // Resolved-kernel gauges go into every export (--metrics-out and
        // live scrapes alike), not just live sessions.
        auto& registry = obs::MetricsRegistry::global();
        publish_kernel_impl_gauges(registry);
        if (!opt_.live()) return;

        perf_ = std::make_unique<obs::PerfCounters>();
        if (!perf_->available())
            std::printf("obs: hardware counters unavailable (%s)\n",
                        perf_->unavailable_reason().c_str());

        obs::ConformanceConfig conf;
        conf.signature = workload.signature;
        conf.threads = workload.threads;
        conf.model_size = workload.model_size;
        conf.numbers_gauge = workload.numbers_gauge;
        conf.seconds_gauge = workload.seconds_gauge;
        conf.band_lo = opt_.band_lo;
        conf.band_hi = opt_.band_hi;
        watchdog_ =
            std::make_unique<obs::ConformanceWatchdog>(registry, conf);

        obs::SamplerConfig sampler_cfg;
        sampler_cfg.period = std::chrono::milliseconds(opt_.period_ms);
        sampler_cfg.jsonl_path = opt_.timeseries_path;
        sampler_cfg.rate_gauges = {workload.numbers_gauge,
                                   workload.seconds_gauge};
        sampler_ = std::make_unique<obs::Sampler>(registry, sampler_cfg);
        sampler_->add_listener(
            [this](const obs::Sample&) {
                perf_->publish(obs::MetricsRegistry::global());
            });
        sampler_->add_listener(
            [this](const obs::Sample& s) { watchdog_->observe(s); });
        sampler_->start();

        if (opt_.port >= 0) {
            obs::HttpExporterConfig http_cfg;
            http_cfg.port = static_cast<std::uint16_t>(opt_.port);
            exporter_ = std::make_unique<obs::HttpExporter>(http_cfg);
            if (exporter_->start())
                std::printf("obs: serving /metrics and /healthz on port "
                            "%u (period %zu ms)\n",
                            exporter_->port(), opt_.period_ms);
            else
                exporter_.reset();
        }
    }

    ~ObsSession() { finish(); }

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    bool live() const { return sampler_ != nullptr; }

    /// The HTTP port actually bound, or -1 when no endpoint is up.
    int port() const { return exporter_ ? exporter_->port() : -1; }

    /// Stops the live tier and writes the batch export files. Idempotent
    /// (also run by the destructor).
    void
    finish()
    {
        if (finished_) return;
        finished_ = true;
        if (exporter_) exporter_->stop();
        if (sampler_) {
            sampler_->stop();
            if (!opt_.timeseries_path.empty())
                std::printf("timeseries: wrote %s (%llu samples)\n",
                            opt_.timeseries_path.c_str(),
                            static_cast<unsigned long long>(
                                sampler_->samples_taken()));
        }
        if (!opt_.trace_path.empty() &&
            obs::export_trace_file(opt_.trace_path))
            std::printf("trace: wrote %s (chrome://tracing)\n",
                        opt_.trace_path.c_str());
        if (!opt_.metrics_path.empty() &&
            obs::export_metrics_file(opt_.metrics_path,
                                     obs::MetricsRegistry::global()))
            std::printf("metrics: wrote %s\n", opt_.metrics_path.c_str());
    }

  private:
    ObsCliOptions opt_;
    bool finished_ = false;
    std::unique_ptr<obs::PerfCounters> perf_;
    std::unique_ptr<obs::ConformanceWatchdog> watchdog_;
    std::unique_ptr<obs::Sampler> sampler_;
    std::unique_ptr<obs::HttpExporter> exporter_;
};

} // namespace buckwild::tools

#endif // BUCKWILD_TOOLS_OBS_CLI_H
