/**
 * @file
 * buckwild_cluster — sharded parameter-server training with quantized
 * push/pull, bounded staleness, and fault injection.
 *
 * Trains a synthetic dense logistic problem on W worker threads pushing
 * quantized gradients into S model shards, sweeping the communication
 * precision, and prints a per-precision table of convergence, wire
 * traffic, and cluster health:
 *
 *     buckwild_cluster --workers 4 --shards 2 --bits 32,8,1
 *     buckwild_cluster --bits 1 --drop 0.02 --jitter-us 50 --reorder 4
 *     buckwild_cluster --bits 8 --publish-every 100 --save model.bw
 *
 * --publish-every checkpoints the shards straight into a
 * serve::ModelRegistry mid-run (the train-to-serve hot-swap path); the
 * final model is always published, and --save also writes it as a
 * BUCKWILD-MODEL file that buckwild_serve can load.
 *
 * Run with --help for the full flag list.
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/problem.h"
#include "obs/obs.h"
#include "obs_cli.h"
#include "ps/ps.h"
#include "serve/serve.h"
#include "util/table.h"

namespace {

using namespace buckwild;

void
usage()
{
    std::printf(
        "buckwild_cluster — sharded parameter-server training\n"
        "\n"
        "problem:\n"
        "  --dense DIM EXAMPLES   synthetic dense logistic problem\n"
        "                         (default 256 4096)\n"
        "  --loss L               logistic | squared | hinge\n"
        "  --seed X               problem RNG seed (default 0x5EED)\n"
        "\n"
        "cluster:\n"
        "  --workers W            worker threads (default 4)\n"
        "  --shards S             model shards (default 2)\n"
        "  --bits B[,B,...]       comm precision sweep: 32 | 8 | 1\n"
        "                         (default 32,8,1)\n"
        "  --tau T                staleness bound in rounds (default 8)\n"
        "  --rounds N             rounds per worker (default 400)\n"
        "  --batch B              examples per worker round (default 16)\n"
        "  --step S               step size (default 0.25)\n"
        "  --no-feedback          disable error feedback (shows why Cs1\n"
        "                         needs it)\n"
        "  --impl I               reference | naive | avx2 | avx512\n"
        "\n"
        "fault injection (the transport's FaultModel):\n"
        "  --drop P               message drop probability (default 0)\n"
        "  --jitter-us N          max delivery jitter in us (default 0)\n"
        "  --reorder W            delivery reorder window (default 1 = FIFO)\n"
        "\n"
        "publish / save:\n"
        "  --publish-every N      registry checkpoint every N applied\n"
        "                         worker rounds (0 = final only)\n"
        "  --precision P          registry precision Ms8 | Ms16 | Ms32f\n"
        "                         (default Ms32f)\n"
        "  --save PATH            write the last run's final model\n"
        "  --csv                  also print the table as CSV\n"
        "\n"
        "observability:\n"
        "%s",
        tools::obs_cli_usage());
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

struct Options
{
    std::size_t dim = 256;
    std::size_t examples = 4096;
    core::Loss loss = core::Loss::kLogistic;
    std::uint64_t seed = 0x5EED;
    ps::ClusterConfig cluster;
    std::vector<int> bits = {32, 8, 1};
    std::size_t publish_every = 0;
    std::string precision = "Ms32f";
    std::string save_path;
    tools::ObsCliOptions obs;
    bool csv = false;
};

std::vector<int>
parse_bits_list(const std::string& text)
{
    std::vector<int> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ','))
        out.push_back(static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    if (out.empty()) die("empty --bits list");
    return out;
}

Options
parse_args(int argc, char** argv)
{
    Options opt;
    opt.cluster.workers = 4;
    opt.cluster.shards = 2;
    opt.cluster.tau = 8;
    opt.cluster.rounds = 400;
    opt.cluster.batch = 16;
    opt.cluster.step_size = 0.25f;
    auto need = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) die(std::string("missing value for ") + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--dense") {
            opt.dim = std::strtoull(need(i, "--dense"), nullptr, 10);
            opt.examples = std::strtoull(need(i, "--dense"), nullptr, 10);
        } else if (a == "--loss") {
            const std::string l = need(i, "--loss");
            if (l == "logistic") opt.loss = core::Loss::kLogistic;
            else if (l == "squared") opt.loss = core::Loss::kSquared;
            else if (l == "hinge") opt.loss = core::Loss::kHinge;
            else die("unknown loss: " + l);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        } else if (a == "--workers") {
            opt.cluster.workers =
                std::strtoull(need(i, "--workers"), nullptr, 10);
        } else if (a == "--shards") {
            opt.cluster.shards =
                std::strtoull(need(i, "--shards"), nullptr, 10);
        } else if (a == "--bits") {
            opt.bits = parse_bits_list(need(i, "--bits"));
        } else if (a == "--tau") {
            opt.cluster.tau = std::strtoull(need(i, "--tau"), nullptr, 10);
        } else if (a == "--rounds") {
            opt.cluster.rounds =
                std::strtoull(need(i, "--rounds"), nullptr, 10);
        } else if (a == "--batch") {
            opt.cluster.batch =
                std::strtoull(need(i, "--batch"), nullptr, 10);
        } else if (a == "--step") {
            opt.cluster.step_size =
                std::strtof(need(i, "--step"), nullptr);
        } else if (a == "--no-feedback") {
            opt.cluster.error_feedback = false;
        } else if (a == "--impl") {
            const std::string m = need(i, "--impl");
            if (m == "reference") opt.cluster.impl = simd::Impl::kReference;
            else if (m == "naive") opt.cluster.impl = simd::Impl::kNaive;
            else if (m == "avx2") opt.cluster.impl = simd::Impl::kAvx2;
            else if (m == "avx512") opt.cluster.impl = simd::Impl::kAvx512;
            else die("unknown impl: " + m);
        } else if (a == "--drop") {
            opt.cluster.faults.drop_prob =
                std::strtod(need(i, "--drop"), nullptr);
        } else if (a == "--jitter-us") {
            opt.cluster.faults.jitter_us =
                std::strtoull(need(i, "--jitter-us"), nullptr, 10);
        } else if (a == "--reorder") {
            opt.cluster.faults.reorder_window =
                std::strtoull(need(i, "--reorder"), nullptr, 10);
        } else if (a == "--publish-every") {
            opt.publish_every =
                std::strtoull(need(i, "--publish-every"), nullptr, 10);
        } else if (a == "--precision") {
            opt.precision = need(i, "--precision");
        } else if (a == "--save") {
            opt.save_path = need(i, "--save");
        } else if (tools::parse_obs_flag(opt.obs, argc, argv, i)) {
            // shared observability flag, consumed
        } else if (a == "--csv") {
            opt.csv = true;
        } else {
            die("unknown flag: " + a);
        }
    }
    if (opt.dim == 0 || opt.examples == 0) die("need --dense DIM EXAMPLES >= 1");
    return opt;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        const Options opt = parse_args(argc, argv);
        const serve::Precision precision =
            serve::parse_precision(opt.precision);
        const auto problem =
            dataset::generate_logistic_dense(opt.dim, opt.examples, opt.seed);

        std::printf("problem: dense logistic, dim %zu, %zu examples\n",
                    problem.dim, problem.examples);
        std::printf("cluster: %zu workers x %zu shards, tau %zu, "
                    "%zu rounds x batch %zu, step %.3g%s\n",
                    opt.cluster.workers, opt.cluster.shards, opt.cluster.tau,
                    opt.cluster.rounds, opt.cluster.batch,
                    static_cast<double>(opt.cluster.step_size),
                    opt.cluster.error_feedback ? "" : ", no error feedback");
        if (opt.cluster.faults.any())
            std::printf("faults: drop %.3g, jitter %zu us, reorder %zu\n",
                        opt.cluster.faults.drop_prob,
                        opt.cluster.faults.jitter_us,
                        opt.cluster.faults.reorder_window);

        TablePrinter table(
            "parameter-server training (publishes " +
                to_string(precision) + ")",
            {"comm", "loss", "acc", "B/round", "pushes", "gated", "dup",
             "stale", "retry", "drops", "wall s", "GNPS", "registry v"});

        // Worker compute is float minibatch gradients (the quantization
        // is on the wire, not in the arithmetic), so the roofline is the
        // dense D32fM32f row at the worker count.
        tools::ObsSession::Workload workload;
        workload.signature = dmgc::Signature::dense_hogwild();
        workload.threads = opt.cluster.workers;
        workload.model_size = opt.dim;
        workload.numbers_gauge = "ps.worker.numbers";
        workload.seconds_gauge = "ps.worker.seconds";
        tools::ObsSession session(opt.obs, workload);

        serve::ModelRegistry registry;
        std::optional<ps::ClusterResult> last;
        for (const int bits : opt.bits) {
            ps::ClusterConfig cfg = opt.cluster;
            cfg.comm_bits = bits;
            cfg.publish_every = opt.publish_every;
            cfg.publish_precision = precision;
            const auto r = ps::train_cluster(problem, cfg, &registry);
            const auto& m = r.metrics;
            m.publish(obs::MetricsRegistry::global(),
                      "ps." + r.comm + ".");
            table.add_row(
                {r.comm, format_num(r.final_loss, 4),
                 format_num(r.accuracy, 4),
                 format_num(r.bytes_per_round, 4),
                 std::to_string(m.total_pushes()),
                 std::to_string(m.total_gated()),
                 std::to_string([&] {
                     std::uint64_t d = 0;
                     for (const auto& s : m.shards) d += s.duplicates;
                     return d;
                 }()),
                 std::to_string(m.max_staleness()),
                 std::to_string(m.rpc_retries),
                 std::to_string(m.messages_dropped),
                 format_num(r.wall_seconds, 3), format_num(m.gnps(), 3),
                 std::to_string(r.published_versions.empty()
                                    ? 0
                                    : r.published_versions.back())});
            last = std::move(r);
        }
        table.print(std::cout);
        if (opt.csv) table.print_csv(std::cout);

        if (last) {
            std::printf("registry: version %llu published (%zu checkpoints "
                        "over the last run)\n",
                        static_cast<unsigned long long>(
                            registry.current_version()),
                        last->published_versions.size());
            if (!opt.save_path.empty()) {
                core::save_model_file(last->checkpoint, opt.save_path);
                std::printf("saved %s (%s) to %s\n", last->comm.c_str(),
                            last->checkpoint.signature.to_string().c_str(),
                            opt.save_path.c_str());
            }
        }

        session.finish();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
