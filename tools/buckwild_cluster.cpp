/**
 * @file
 * buckwild_cluster — sharded parameter-server training with quantized
 * push/pull, bounded staleness, and fault injection.
 *
 * Trains a synthetic dense logistic problem on W workers pushing
 * quantized gradients into S model shards, sweeping the communication
 * codec, and prints a per-tier table of convergence, wire traffic, and
 * cluster health:
 *
 *     buckwild_cluster --workers 4 --shards 2 --bits 32,8,Q4,1
 *     buckwild_cluster --bits 1 --drop 0.02 --jitter-us 50 --reorder 4
 *     buckwild_cluster --bits 8 --publish-every 100 --save model.bw
 *
 * --sparse switches the workload to a synthetic RCV1-style sparse
 * logistic problem (libsvm-shaped CSR rows at --density); every push on
 * the wire is then a quantized sparse gradient — nnz values plus an
 * Elias-gamma index-gap stream. --libsvm PATH trains on a real libsvm
 * file instead:
 *
 *     buckwild_cluster --sparse --density 0.02 --bits 32,Q4
 *     buckwild_cluster --spawn --sparse --bits Q4   # sparse over TCP
 *     buckwild_cluster --libsvm rcv1.svm --bits 8
 *
 * By default the cluster is worker *threads* over the in-process
 * transport. The same cluster runs as real processes over TCP:
 *
 *     buckwild_cluster --spawn --bits Q4          # fork it all locally
 *     # or assemble it by hand (ports must agree across commands):
 *     buckwild_cluster --listen 127.0.0.1:7001 --shard-index 0 &
 *     buckwild_cluster --listen 127.0.0.1:7002 --shard-index 1 &
 *     buckwild_cluster --connect 127.0.0.1:7001,127.0.0.1:7002 \
 *                      --worker-index 0 &
 *     buckwild_cluster --connect 127.0.0.1:7001,127.0.0.1:7002 \
 *                      --worker-index 1 &
 *     wait %3 %4   # workers exit when their rounds are done
 *     buckwild_cluster --control 127.0.0.1:7001,127.0.0.1:7002
 *
 * Every process must be launched with the same --dense/--seed/--workers/
 * --shards/--rounds/--bits so the problem and the endpoint geometry
 * agree; --control snapshots the model, evaluates it, prints per-shard
 * stats, and shuts the shards down. Distributed modes train the first
 * --bits tier only.
 *
 * --publish-every checkpoints the shards straight into a
 * serve::ModelRegistry mid-run (the train-to-serve hot-swap path); the
 * final model is always published, and --save also writes it as a
 * BUCKWILD-MODEL file that buckwild_serve can load. (In-process sweep
 * only — remote shards share no address space with a registry.)
 *
 * Run with --help for the full flag list.
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/libsvm.h"
#include "dataset/problem.h"
#include "net/net.h"
#include "obs/obs.h"
#include "obs_cli.h"
#include "ps/ps.h"
#include "serve/serve.h"
#include "util/table.h"

namespace {

using namespace buckwild;

void
usage()
{
    std::printf(
        "buckwild_cluster — sharded parameter-server training\n"
        "\n"
        "problem:\n"
        "  --dense DIM EXAMPLES   synthetic dense logistic problem\n"
        "                         (default 256 4096)\n"
        "  --sparse               synthetic RCV1-style sparse logistic\n"
        "                         problem instead (libsvm-shaped rows at\n"
        "                         --density over the --dense geometry);\n"
        "                         pushes become quantized sparse gradients\n"
        "  --density D            sparse nonzero fraction per row\n"
        "                         (default 0.05; implies --sparse)\n"
        "  --libsvm PATH          train on a libsvm file (implies --sparse;\n"
        "                         dim inferred from the data)\n"
        "  --loss L               logistic | squared | hinge\n"
        "  --seed X               problem RNG seed (default 0x5EED)\n"
        "\n"
        "cluster:\n"
        "  --workers W            workers (default 4)\n"
        "  --shards S             model shards (default 2)\n"
        "  --bits B[,B,...]       comm codec sweep: 32 | 8 | 1 | Q2..Q8\n"
        "                         (\"Cs\" prefix optional; default 32,8,1)\n"
        "  --tau T                staleness bound in rounds (default 8)\n"
        "  --rounds N             rounds per worker (default 400)\n"
        "  --batch B              examples per worker round (default 16)\n"
        "  --step S               step size (default 0.25)\n"
        "  --no-feedback          disable error feedback (shows why Cs1\n"
        "                         needs it)\n"
        "  --impl I               reference | naive | avx2 | fma | avx512\n"
        "                         (default: fastest supported; the\n"
        "                         BUCKWILD_KERNEL_IMPL env var overrides)\n"
        "\n"
        "multi-process (loopback or real network; first --bits tier):\n"
        "  --spawn                fork S shard + W worker processes over\n"
        "                         loopback TCP instead of threads\n"
        "  --listen HOST:PORT     run ONE shard process (port 0 = pick a\n"
        "                         free port, printed at startup)\n"
        "  --shard-index S        which shard --listen serves (default 0)\n"
        "  --connect A1,A2,...    run ONE worker process against the\n"
        "                         listed shard addresses (in shard order)\n"
        "  --worker-index W       which worker --connect runs (default 0)\n"
        "  --control A1,A2,...    snapshot + evaluate + stats, then shut\n"
        "                         the listed shards down\n"
        "  --trace-dir DIR        (--spawn) distributed tracing: every\n"
        "                         process writes DIR/<role>.trace.json\n"
        "                         (control, shardN, workerN); stitch them\n"
        "                         with buckwild_tracemerge --dir DIR\n"
        "                         (a multi-tier sweep overwrites per tier)\n"
        "  --fleet-port N         (--spawn) control node scrapes every\n"
        "                         child and serves ONE merged,\n"
        "                         node-labeled /metrics on port N (0 =\n"
        "                         any free port); the final snapshot is\n"
        "                         kept as DIR/fleet.prom under --trace-dir\n"
        "\n"
        "fault injection (the transport's FaultModel; multi-process modes\n"
        "apply it sender-side at workers and control):\n"
        "  --drop P               message drop probability (default 0)\n"
        "  --jitter-us N          max delivery jitter in us (default 0)\n"
        "  --reorder W            delivery reorder window (default 1 = FIFO)\n"
        "\n"
        "publish / save:\n"
        "  --publish-every N      registry checkpoint every N applied\n"
        "                         worker rounds (0 = final only; in-process\n"
        "                         sweep only)\n"
        "  --precision P          registry precision Ms8 | Ms16 | Ms32f\n"
        "                         (default Ms32f)\n"
        "  --save PATH            write the last run's final model\n"
        "  --csv                  also print the table as CSV\n"
        "\n"
        "observability:\n"
        "%s",
        tools::obs_cli_usage());
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

enum class Mode { kSweep, kSpawn, kShard, kWorker, kControl };

struct Options
{
    Mode mode = Mode::kSweep;
    std::size_t dim = 256;
    std::size_t examples = 4096;
    bool sparse = false;
    double density = 0.05;
    std::string libsvm_path;
    core::Loss loss = core::Loss::kLogistic;
    std::uint64_t seed = 0x5EED;
    ps::ClusterConfig cluster;
    std::vector<ps::Codec> codecs;
    std::size_t publish_every = 0;
    std::string precision = "Ms32f";
    std::string save_path;
    // Multi-process role parameters.
    net::Address listen;
    std::size_t shard_index = 0;
    std::vector<net::Address> shard_addresses;
    std::size_t worker_index = 0;
    tools::ObsCliOptions obs;
    bool csv = false;
};

std::vector<ps::Codec>
parse_codec_list(const std::string& text)
{
    std::vector<ps::Codec> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ',')) out.push_back(ps::Codec::parse(tok));
    if (out.empty()) die("empty --bits list");
    return out;
}

std::vector<net::Address>
parse_address_list(const std::string& text)
{
    std::vector<net::Address> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ','))
        out.push_back(net::parse_address(tok));
    if (out.empty()) die("empty address list");
    return out;
}

Options
parse_args(int argc, char** argv)
{
    Options opt;
    opt.cluster.workers = 4;
    opt.cluster.shards = 2;
    opt.cluster.tau = 8;
    opt.cluster.rounds = 400;
    opt.cluster.batch = 16;
    opt.cluster.step_size = 0.25f;
    opt.codecs = {ps::Codec::from_bits(32), ps::Codec::from_bits(8),
                  ps::Codec::from_bits(1)};
    auto need = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) die(std::string("missing value for ") + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--dense") {
            opt.dim = std::strtoull(need(i, "--dense"), nullptr, 10);
            opt.examples = std::strtoull(need(i, "--dense"), nullptr, 10);
        } else if (a == "--sparse") {
            opt.sparse = true;
        } else if (a == "--density") {
            opt.sparse = true;
            opt.density = std::strtod(need(i, "--density"), nullptr);
        } else if (a == "--libsvm") {
            opt.sparse = true;
            opt.libsvm_path = need(i, "--libsvm");
        } else if (a == "--loss") {
            const std::string l = need(i, "--loss");
            if (l == "logistic") opt.loss = core::Loss::kLogistic;
            else if (l == "squared") opt.loss = core::Loss::kSquared;
            else if (l == "hinge") opt.loss = core::Loss::kHinge;
            else die("unknown loss: " + l);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        } else if (a == "--workers") {
            opt.cluster.workers =
                std::strtoull(need(i, "--workers"), nullptr, 10);
        } else if (a == "--shards") {
            opt.cluster.shards =
                std::strtoull(need(i, "--shards"), nullptr, 10);
        } else if (a == "--bits") {
            opt.codecs = parse_codec_list(need(i, "--bits"));
        } else if (a == "--tau") {
            opt.cluster.tau = std::strtoull(need(i, "--tau"), nullptr, 10);
        } else if (a == "--rounds") {
            opt.cluster.rounds =
                std::strtoull(need(i, "--rounds"), nullptr, 10);
        } else if (a == "--batch") {
            opt.cluster.batch =
                std::strtoull(need(i, "--batch"), nullptr, 10);
        } else if (a == "--step") {
            opt.cluster.step_size =
                std::strtof(need(i, "--step"), nullptr);
        } else if (a == "--no-feedback") {
            opt.cluster.error_feedback = false;
        } else if (a == "--impl") {
            const std::string m = need(i, "--impl");
            if (const auto impl = simd::parse_impl(m))
                opt.cluster.impl = *impl;
            else die("unknown impl: " + m);
        } else if (a == "--spawn") {
            opt.mode = Mode::kSpawn;
        } else if (a == "--listen") {
            opt.mode = Mode::kShard;
            opt.listen = net::parse_address(need(i, "--listen"));
        } else if (a == "--shard-index") {
            opt.shard_index =
                std::strtoull(need(i, "--shard-index"), nullptr, 10);
        } else if (a == "--connect") {
            opt.mode = Mode::kWorker;
            opt.shard_addresses = parse_address_list(need(i, "--connect"));
        } else if (a == "--worker-index") {
            opt.worker_index =
                std::strtoull(need(i, "--worker-index"), nullptr, 10);
        } else if (a == "--control") {
            opt.mode = Mode::kControl;
            opt.shard_addresses = parse_address_list(need(i, "--control"));
        } else if (a == "--trace-dir") {
            opt.cluster.trace_dir = need(i, "--trace-dir");
        } else if (a == "--fleet-port") {
            const char* v = need(i, "--fleet-port");
            char* rest = nullptr;
            const long port = std::strtol(v, &rest, 10);
            if (rest == v || *rest != '\0' || port < 0 || port > 65535)
                die("bad --fleet-port (want 0..65535): " + std::string(v));
            opt.cluster.fleet_port = static_cast<int>(port);
        } else if (a == "--drop") {
            opt.cluster.faults.drop_prob =
                std::strtod(need(i, "--drop"), nullptr);
        } else if (a == "--jitter-us") {
            opt.cluster.faults.jitter_us =
                std::strtoull(need(i, "--jitter-us"), nullptr, 10);
        } else if (a == "--reorder") {
            opt.cluster.faults.reorder_window =
                std::strtoull(need(i, "--reorder"), nullptr, 10);
        } else if (a == "--publish-every") {
            opt.publish_every =
                std::strtoull(need(i, "--publish-every"), nullptr, 10);
        } else if (a == "--precision") {
            opt.precision = need(i, "--precision");
        } else if (a == "--save") {
            opt.save_path = need(i, "--save");
        } else if (tools::parse_obs_flag(opt.obs, argc, argv, i)) {
            // shared observability flag, consumed
        } else if (a == "--csv") {
            opt.csv = true;
        } else {
            die("unknown flag: " + a);
        }
    }
    if (opt.dim == 0 || opt.examples == 0) die("need --dense DIM EXAMPLES >= 1");
    if (opt.sparse && (opt.density <= 0.0 || opt.density > 1.0))
        die("need --density in (0, 1]");
    opt.cluster.codec = opt.codecs.front();
    if (opt.mode == Mode::kShard && opt.shard_index >= opt.cluster.shards)
        die("--shard-index out of range");
    if (opt.mode == Mode::kWorker && opt.worker_index >= opt.cluster.workers)
        die("--worker-index out of range");
    if ((opt.mode == Mode::kWorker || opt.mode == Mode::kControl) &&
        opt.shard_addresses.size() != opt.cluster.shards)
        die("address list must name every shard (--shards of them)");
    return opt;
}

/// The provenance row the obs roofline is matched against: dense worker
/// compute is the dense Hogwild! row, sparse workloads the sparse one.
dmgc::Signature
workload_signature(const Options& opt)
{
    return opt.sparse ? dmgc::Signature::sparse_hogwild()
                      : dmgc::Signature::dense_hogwild();
}

void
print_cluster_lines(const Options& opt, const char* fabric)
{
    std::printf("cluster: %zu workers x %zu shards over %s, tau %zu, "
                "%zu rounds x batch %zu, step %.3g, kernels %s%s\n",
                opt.cluster.workers, opt.cluster.shards, fabric,
                opt.cluster.tau, opt.cluster.rounds, opt.cluster.batch,
                static_cast<double>(opt.cluster.step_size),
                simd::to_string(opt.cluster.impl),
                opt.cluster.error_feedback ? "" : ", no error feedback");
    if (opt.cluster.faults.any())
        std::printf("faults: drop %.3g, jitter %zu us, reorder %zu\n",
                    opt.cluster.faults.drop_prob,
                    opt.cluster.faults.jitter_us,
                    opt.cluster.faults.reorder_window);
}

void
print_cluster_banner(const Options& opt, const dataset::DenseProblem& problem,
                     const char* fabric)
{
    std::printf("problem: dense logistic, dim %zu, %zu examples\n",
                problem.dim, problem.examples);
    print_cluster_lines(opt, fabric);
}

void
print_cluster_banner(const Options& opt, const dataset::SparseProblem& problem,
                     const char* fabric)
{
    const dataset::SparseStats stats = dataset::sparse_stats(problem);
    std::printf("problem: sparse logistic (%s), dim %zu, %zu examples, "
                "%llu nnz (density %.4g, %zu..%zu per row)\n",
                opt.libsvm_path.empty() ? "synthetic libsvm"
                                        : opt.libsvm_path.c_str(),
                stats.dim, stats.examples,
                static_cast<unsigned long long>(stats.nnz), stats.density,
                stats.min_row_nnz, stats.max_row_nnz);
    print_cluster_lines(opt, fabric);
}

void
add_sweep_row(TablePrinter& table, const ps::ClusterResult& r)
{
    const auto& m = r.metrics;
    std::uint64_t duplicates = 0;
    for (const auto& s : m.shards) duplicates += s.duplicates;
    table.add_row(
        {r.comm, format_num(r.final_loss, 4), format_num(r.accuracy, 4),
         format_num(r.bytes_per_round, 4), std::to_string(m.total_pushes()),
         std::to_string(m.total_gated()), std::to_string(duplicates),
         std::to_string(m.max_staleness()), std::to_string(m.rpc_retries),
         std::to_string(m.messages_dropped), format_num(r.wall_seconds, 3),
         format_num(m.gnps(), 3),
         std::to_string(r.published_versions.empty()
                            ? 0
                            : r.published_versions.back())});
}

/// The default mode: sweep the codec tiers in-process (--spawn: as
/// forked processes over loopback TCP). Templated over the problem so
/// the dense and sparse (libsvm) workloads share every code path — the
/// ps overloads pick the dense or sparse round loop by type.
template <typename Problem>
int
run_sweep(const Options& opt, const Problem& problem)
{
    const serve::Precision precision = serve::parse_precision(opt.precision);
    const bool spawn = opt.mode == Mode::kSpawn;
    print_cluster_banner(opt, problem,
                         spawn ? "loopback TCP (forked processes)"
                               : "in-process transport");

    TablePrinter table(
        spawn ? std::string("parameter-server training (multi-process)")
              : "parameter-server training (publishes " +
                    to_string(precision) + ")",
        {"comm", "loss", "acc", "B/round", "pushes", "gated", "dup",
         "stale", "retry", "drops", "wall s", "GNPS", "registry v"});

    serve::ModelRegistry registry;
    std::optional<ps::ClusterResult> last;

    // Worker compute is float minibatch gradients (the quantization is
    // on the wire, not in the arithmetic), so the roofline is the dense
    // D32fM32f row at the worker count — or the sparse i32 row when the
    // gradients are CSR accumulations.
    tools::ObsSession::Workload workload;
    workload.signature = workload_signature(opt);
    workload.threads = opt.cluster.workers;
    workload.model_size = opt.dim;
    workload.numbers_gauge = "ps.worker.numbers";
    workload.seconds_gauge = "ps.worker.seconds";

    // --spawn forks: every run must happen while this process is still
    // single-threaded, so the full ObsSession (whose live tier spawns
    // the sampler thread) waits until after the sweep. Enabling the
    // tracer is thread-free, so traces still cover the runs; per-run
    // metrics land in the global registry for the batch exports.
    std::optional<tools::ObsSession> session;
    if (!spawn)
        session.emplace(opt.obs, workload);
    else if (!opt.obs.trace_path.empty()) {
        obs::Tracer::global().set_enabled(true);
        if (opt.cluster.trace_dir.empty())
            std::fprintf(stderr,
                         "note: --trace-out under --spawn covers only "
                         "this (control) process; use --trace-dir for "
                         "per-process traces that buckwild_tracemerge "
                         "can stitch\n");
    }

    for (const ps::Codec& codec : opt.codecs) {
        ps::ClusterConfig cfg = opt.cluster;
        cfg.codec = codec;
        cfg.publish_every = opt.publish_every;
        cfg.publish_precision = precision;
        ps::ClusterResult r =
            spawn ? ps::train_cluster_multiprocess(problem, cfg)
                  : ps::train_cluster(problem, cfg, &registry);
        r.metrics.publish(obs::MetricsRegistry::global(),
                          "ps." + r.comm + ".");
        add_sweep_row(table, r);
        last = std::move(r);
    }

    if (spawn) session.emplace(opt.obs, workload);

    table.print(std::cout);
    if (opt.csv) table.print_csv(std::cout);

    if (spawn && last) {
        if (last->fleet_port >= 0)
            std::printf("fleet: merged node-labeled /metrics served on "
                        "port %d (final snapshot %zu bytes)\n",
                        last->fleet_port, last->fleet_metrics.size());
        if (!opt.cluster.trace_dir.empty())
            std::printf("traces: per-process Chrome traces in %s — merge "
                        "with: buckwild_tracemerge --dir %s\n",
                        opt.cluster.trace_dir.c_str(),
                        opt.cluster.trace_dir.c_str());
    }

    if (last) {
        if (!spawn)
            std::printf("registry: version %llu published (%zu checkpoints "
                        "over the last run)\n",
                        static_cast<unsigned long long>(
                            registry.current_version()),
                        last->published_versions.size());
        if (!opt.save_path.empty()) {
            core::save_model_file(last->checkpoint, opt.save_path);
            std::printf("saved %s (%s) to %s\n", last->comm.c_str(),
                        last->checkpoint.signature.to_string().c_str(),
                        opt.save_path.c_str());
        }
    }

    session->finish();
    return 0;
}

/// --listen: serve one shard until a control client shuts it down.
/// Shards are problem-agnostic (they apply whatever pushes arrive); the
/// problem only fixes the model dimension.
template <typename Problem>
int
run_shard(const Options& opt, const Problem& problem)
{
    // Bind here (not inside run_shard_node) so the actual port is
    // printed before serving — scripts block on this line.
    std::string error;
    std::uint16_t port = opt.listen.port;
    net::Fd listener =
        net::listen_tcp(opt.listen.host, port, 64, &port, &error);
    if (!listener.valid()) die("bind " + opt.listen.to_string() + ": " + error);
    std::printf("shard %zu listening on %s:%u (%s)\n", opt.shard_index,
                opt.listen.host.c_str(), port,
                opt.cluster.codec.name().c_str());
    std::fflush(stdout);

    tools::ObsSession::Workload workload;
    workload.signature = workload_signature(opt);
    workload.threads = opt.cluster.workers;
    workload.model_size = opt.dim;
    workload.process = "shard" + std::to_string(opt.shard_index);
    tools::ObsSession session(opt.obs, workload);

    ps::ShardNodeOptions node;
    node.index = opt.shard_index;
    node.adopt_listen_fd = listener.release();
    const ps::ShardMetrics m =
        ps::run_shard_node(opt.cluster, problem.dim, node);
    std::printf("shard %zu done: %llu pushes (%llu dup, %llu gated), "
                "%llu pulls, %llu push B, %llu pull B, max stale %zu\n",
                opt.shard_index,
                static_cast<unsigned long long>(m.pushes),
                static_cast<unsigned long long>(m.duplicates),
                static_cast<unsigned long long>(m.gated),
                static_cast<unsigned long long>(m.pulls),
                static_cast<unsigned long long>(m.push_bytes),
                static_cast<unsigned long long>(m.pull_bytes),
                m.max_staleness());
    session.finish();
    return 0;
}

/// --connect: run one worker's rounds against remote shards.
template <typename Problem>
int
run_worker(const Options& opt, const Problem& problem)
{
    std::printf("worker %zu connecting to %zu shards (%s)\n",
                opt.worker_index, opt.shard_addresses.size(),
                opt.cluster.codec.name().c_str());
    std::fflush(stdout);

    tools::ObsSession::Workload workload;
    workload.signature = workload_signature(opt);
    workload.threads = 1;
    workload.model_size = opt.dim;
    workload.numbers_gauge = "ps.worker.numbers";
    workload.seconds_gauge = "ps.worker.seconds";
    workload.process = "worker" + std::to_string(opt.worker_index);
    tools::ObsSession session(opt.obs, workload);

    const ps::WorkerStats stats = ps::run_worker_node(
        opt.cluster, problem, opt.worker_index, opt.shard_addresses);
    std::printf("worker %zu done: %llu rounds in %.3fs, %llu retries, "
                "%llu encoded B\n",
                opt.worker_index,
                static_cast<unsigned long long>(stats.rounds), stats.seconds,
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.encoded_bytes));
    session.finish();
    return 0;
}

/// --control: snapshot + evaluate the remote model, print shard stats,
/// shut the cluster down.
template <typename Problem>
int
run_control(const Options& opt, const Problem& problem)
{
    tools::ObsSession::Workload workload;
    workload.signature = workload_signature(opt);
    workload.threads = 1;
    workload.model_size = opt.dim;
    workload.process = "control";
    tools::ObsSession session(opt.obs, workload);

    ps::ControlClient control(opt.cluster, opt.shard_addresses);
    const std::vector<float> model = control.snapshot(problem.dim);
    double loss = 0.0, accuracy = 0.0;
    ps::evaluate_model(problem, opt.loss, model, &loss, &accuracy);
    std::printf("control: final_loss %.6f accuracy %.6f\n", loss, accuracy);

    const std::vector<ps::ShardMetrics> shards = control.stats();
    std::vector<std::string> columns = {"shard",  "pushes", "dup",
                                        "gated",  "pulls",  "push B",
                                        "pull B", "stale"};
    if (opt.sparse) {
        columns.push_back("nnz");
        columns.push_back("sparse B");
    }
    TablePrinter table("remote shard stats", columns);
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const auto& m = shards[s];
        std::vector<std::string> row = {
            std::to_string(s),          std::to_string(m.pushes),
            std::to_string(m.duplicates), std::to_string(m.gated),
            std::to_string(m.pulls),    std::to_string(m.push_bytes),
            std::to_string(m.pull_bytes),
            std::to_string(m.max_staleness())};
        if (opt.sparse) {
            row.push_back(std::to_string(m.sparse_nnz));
            row.push_back(std::to_string(m.sparse_bytes));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    if (opt.csv) table.print_csv(std::cout);

    if (!opt.save_path.empty()) {
        const core::SavedModel saved =
            ps::make_cluster_checkpoint(opt.cluster, model, opt.sparse);
        core::save_model_file(saved, opt.save_path);
        std::printf("saved %s (%s) to %s\n", opt.cluster.codec.name().c_str(),
                    saved.signature.to_string().c_str(),
                    opt.save_path.c_str());
    }

    control.shutdown();
    std::printf("control: %zu shards shut down (%llu rpc retries)\n",
                shards.size(),
                static_cast<unsigned long long>(control.retries()));
    session.finish();
    return 0;
}

template <typename Problem>
int
dispatch(const Options& opt, const Problem& problem)
{
    switch (opt.mode) {
    case Mode::kSweep:
    case Mode::kSpawn: return run_sweep(opt, problem);
    case Mode::kShard: return run_shard(opt, problem);
    case Mode::kWorker: return run_worker(opt, problem);
    case Mode::kControl: return run_control(opt, problem);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        Options opt = parse_args(argc, argv);
        if (opt.sparse) {
            const auto problem =
                opt.libsvm_path.empty()
                    ? dataset::generate_logistic_sparse(
                          opt.dim, opt.examples, opt.density, opt.seed)
                    : dataset::load_libsvm_file(opt.libsvm_path);
            // A loaded file decides its own geometry; the hand-assembled
            // multi-process roles size shards and rooflines off opt.dim,
            // so it must agree with the data in every process.
            opt.dim = problem.dim;
            opt.examples = problem.examples();
            return dispatch(opt, problem);
        }
        const auto problem =
            dataset::generate_logistic_dense(opt.dim, opt.examples, opt.seed);
        return dispatch(opt, problem);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
