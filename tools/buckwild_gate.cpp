/**
 * @file
 * buckwild_gate — open-loop load driver for the serving front door.
 *
 * Drives Poisson arrivals at a target offered QPS against a running
 * `buckwild_serve --listen` gate and reports, per offered-load step,
 * what actually happened: admitted/ok, shed (by status), and per-lane
 * client-observed latency percentiles.
 *
 * Open loop is the point. A closed-loop client slows down when the
 * server does, which hides overload — arrivals here are scheduled from
 * a Poisson process whose rate does not care how the server is doing,
 * so past saturation the driver keeps offering load and the gate's
 * shedding (explicit RESOURCE_EXHAUSTED, bounded admitted latency)
 * becomes directly measurable:
 *
 *     buckwild_serve --model model.bw --listen 127.0.0.1:7070 &
 *     buckwild_gate --connect 127.0.0.1:7070 --dim 256 \
 *         --qps 1000,10000,100000 --duration 3 --json sweep.json
 *
 * Latency is measured client-side with zero bookkeeping: the request id
 * carries the send timestamp (steady-clock ns, low bit replaced by the
 * lane), so the response handler reconstructs latency and lane from the
 * echoed id alone.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gate/gate.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "obs_cli.h"
#include "simd/registry.h"
#include "util/table.h"

namespace {

using namespace buckwild;

void
usage()
{
    std::printf(
        "buckwild_gate — open-loop Poisson load driver for the gate\n"
        "\n"
        "  --connect HOST:PORT    gate address (required)\n"
        "  --model NAME           model name to request (default: default)\n"
        "  --dim N                feature dimension (required; must match\n"
        "                         the served model)\n"
        "  --qps Q[,Q,...]        offered-load sweep, requests/s per step\n"
        "                         (default 1000)\n"
        "  --duration S           seconds per step (default 3)\n"
        "  --connections C        client connections / sender threads\n"
        "                         (default 4)\n"
        "  --tenants T            rotate requests over T tenant ids\n"
        "                         (t0..t{T-1}; default 1)\n"
        "  --batch-frac F         fraction of requests on the batch lane\n"
        "                         (default 0.5)\n"
        "  --deadline-us D        deadline on interactive requests\n"
        "                         (default 0 = none)\n"
        "  --encoding E           f32 | q8 feature payload (default f32)\n"
        "  --seed X               RNG seed (default 1)\n"
        "  --json PATH            write the sweep as JSON ('-' = stdout)\n"
        "\n"
        "observability (client-side per-lane latency percentiles and\n"
        "shed counters land in the registry as gate.client.* series;\n"
        "with --trace-out the driver also stamps a trace context onto\n"
        "every request, which the gate echoes for clock correlation):\n"
        "%s",
        tools::obs_cli_usage());
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

struct Options
{
    std::string connect;
    std::string model = "default";
    std::size_t dim = 0;
    std::vector<double> qps = {1000.0};
    double duration_s = 3.0;
    std::size_t connections = 4;
    std::size_t tenants = 1;
    double batch_frac = 0.5;
    std::uint32_t deadline_us = 0;
    bool q8 = false;
    std::uint64_t seed = 1;
    std::string json_path;
    tools::ObsCliOptions obs;
};

std::vector<double>
parse_qps_list(const std::string& text)
{
    std::vector<double> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        const double q = std::strtod(tok.c_str(), nullptr);
        if (q <= 0.0) die("qps values must be > 0: " + text);
        out.push_back(q);
    }
    if (out.empty()) die("empty --qps list");
    return out;
}

Options
parse_args(int argc, char** argv)
{
    Options opt;
    auto need = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) die(std::string("missing value for ") + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--connect") {
            opt.connect = need(i, "--connect");
        } else if (a == "--model") {
            opt.model = need(i, "--model");
        } else if (a == "--dim") {
            opt.dim = std::strtoull(need(i, "--dim"), nullptr, 10);
        } else if (a == "--qps") {
            opt.qps = parse_qps_list(need(i, "--qps"));
        } else if (a == "--duration") {
            opt.duration_s = std::strtod(need(i, "--duration"), nullptr);
        } else if (a == "--connections") {
            opt.connections =
                std::strtoull(need(i, "--connections"), nullptr, 10);
        } else if (a == "--tenants") {
            opt.tenants =
                std::strtoull(need(i, "--tenants"), nullptr, 10);
        } else if (a == "--batch-frac") {
            opt.batch_frac =
                std::strtod(need(i, "--batch-frac"), nullptr);
        } else if (a == "--deadline-us") {
            opt.deadline_us = static_cast<std::uint32_t>(
                std::strtoul(need(i, "--deadline-us"), nullptr, 10));
        } else if (a == "--encoding") {
            const std::string e = need(i, "--encoding");
            if (e == "f32") opt.q8 = false;
            else if (e == "q8") opt.q8 = true;
            else die("unknown encoding (want f32|q8): " + e);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        } else if (a == "--json") {
            opt.json_path = need(i, "--json");
        } else if (tools::parse_obs_flag(opt.obs, argc, argv, i)) {
            // shared observability flag, consumed
        } else {
            die("unknown flag: " + a);
        }
    }
    if (opt.connect.empty()) die("no --connect given");
    if (opt.dim == 0) die("no --dim given");
    if (opt.connections == 0 || opt.tenants == 0)
        die("need connections/tenants >= 1");
    if (opt.batch_frac < 0.0 || opt.batch_frac > 1.0)
        die("--batch-frac must be in [0, 1]");
    return opt;
}

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Per-lane outcome accumulators, merged across sender threads.
struct LaneTally
{
    std::uint64_t ok = 0;
    std::vector<double> latency_us; ///< for OK responses only

    void
    merge(const LaneTally& other)
    {
        ok += other.ok;
        latency_us.insert(latency_us.end(), other.latency_us.begin(),
                          other.latency_us.end());
    }
};

struct Tally
{
    std::uint64_t sent = 0;
    std::uint64_t resource_exhausted = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t other_errors = 0;
    LaneTally lanes[gate::kLanes];

    std::uint64_t
    shed() const
    {
        return resource_exhausted + deadline_exceeded + other_errors;
    }

    void
    merge(const Tally& other)
    {
        sent += other.sent;
        resource_exhausted += other.resource_exhausted;
        deadline_exceeded += other.deadline_exceeded;
        other_errors += other.other_errors;
        for (std::size_t l = 0; l < gate::kLanes; ++l)
            lanes[l].merge(other.lanes[l]);
    }
};

double
percentile_us(std::vector<double>& xs, double p)
{
    if (xs.empty()) return 0.0;
    const auto k = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
    std::nth_element(xs.begin(), xs.begin() + static_cast<long>(k),
                     xs.end());
    return xs[k];
}

/// The client's view of the step, published as gate.client.* series so
/// a live scrape (or --metrics-out) sees the driver's observed per-lane
/// percentiles and shed counters next to the gate's own server-side
/// gate.hop_seconds decomposition.
void
publish_step_metrics(const Tally& tally, double offered_qps,
                     const double (&p50_us)[gate::kLanes],
                     const double (&p99_us)[gate::kLanes])
{
    static const char* const kLaneNames[gate::kLanes] = {"interactive",
                                                         "batch"};
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("gate.client.offered_qps").set(offered_qps);
    registry.counter("gate.client.sent").add(tally.sent);
    registry
        .counter(obs::labeled("gate.client.shed",
                              {{"reason", "resource_exhausted"}}))
        .add(tally.resource_exhausted);
    registry
        .counter(obs::labeled("gate.client.shed",
                              {{"reason", "deadline_exceeded"}}))
        .add(tally.deadline_exceeded);
    registry
        .counter(obs::labeled("gate.client.shed", {{"reason", "other"}}))
        .add(tally.other_errors);
    for (std::size_t l = 0; l < gate::kLanes; ++l) {
        const char* lane = kLaneNames[l];
        registry.counter(obs::labeled("gate.client.ok", {{"lane", lane}}))
            .add(tally.lanes[l].ok);
        std::vector<double> seconds;
        seconds.reserve(tally.lanes[l].latency_us.size());
        for (const double us : tally.lanes[l].latency_us)
            seconds.push_back(us * 1e-6);
        registry
            .histogram(obs::labeled("gate.client.latency_seconds",
                                    {{"lane", lane}}))
            .record_many(seconds);
        registry
            .gauge(obs::labeled("gate.client.latency_us",
                                {{"lane", lane}, {"q", "p50"}}))
            .set(p50_us[l]);
        registry
            .gauge(obs::labeled("gate.client.latency_us",
                                {{"lane", lane}, {"q", "p99"}}))
            .set(p99_us[l]);
    }
}

/// One offered-load step: `opt.connections` threads, each its own
/// connection and an independent Poisson stream at rate/connections.
Tally
run_step(const Options& opt, double offered_qps)
{
    const net::Address address = net::parse_address(opt.connect);
    std::vector<std::unique_ptr<gate::GateClient>> clients;
    std::vector<Tally> tallies(opt.connections);
    std::vector<std::mutex> tally_mutexes(opt.connections);
    for (std::size_t c = 0; c < opt.connections; ++c) {
        auto client = std::make_unique<gate::GateClient>(address);
        if (!client->connected())
            die("cannot connect to " + opt.connect);
        Tally* tally = &tallies[c];
        std::mutex* mutex = &tally_mutexes[c];
        client->set_handler([tally, mutex](
                                const gate::ScoreResponse& response) {
            const auto lane = static_cast<std::size_t>(
                response.request_id & 1u);
            const double latency_us =
                static_cast<double>(now_ns() -
                                    (response.request_id & ~1ull)) *
                1e-3;
            std::lock_guard<std::mutex> lock(*mutex);
            switch (response.status) {
            case gate::Status::kOk:
                tally->lanes[lane].ok += 1;
                tally->lanes[lane].latency_us.push_back(latency_us);
                break;
            case gate::Status::kResourceExhausted:
                tally->resource_exhausted += 1;
                break;
            case gate::Status::kDeadlineExceeded:
                tally->deadline_exceeded += 1;
                break;
            default: tally->other_errors += 1; break;
            }
        });
        clients.push_back(std::move(client));
    }

    std::vector<std::thread> senders;
    for (std::size_t c = 0; c < opt.connections; ++c) {
        senders.emplace_back([&, c] {
            std::mt19937_64 rng(opt.seed + c * 7919);
            std::exponential_distribution<double> gap(
                offered_qps / static_cast<double>(opt.connections));
            std::uniform_real_distribution<double> coin(0.0, 1.0);
            std::uniform_real_distribution<float> feature(-1.0f, 1.0f);

            // A small pool of feature vectors, re-sent round-robin:
            // realistic variety without per-send generation cost.
            constexpr std::size_t kPool = 8;
            std::vector<std::vector<float>> pool(kPool);
            for (auto& x : pool) {
                x.resize(opt.dim);
                for (float& v : x) v = feature(rng);
            }
            std::vector<std::vector<std::int8_t>> pool_q8(kPool);
            std::vector<float> pool_scale(kPool, 0.0f);
            if (opt.q8)
                for (std::size_t i = 0; i < kPool; ++i)
                    pool_scale[i] = gate::quantize_features_q8(
                        pool[i].data(), opt.dim, pool_q8[i]);

            gate::ScoreRequest request;
            request.model = opt.model;
            const auto start = std::chrono::steady_clock::now();
            const auto stop =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                opt.duration_s));
            auto next = start;
            std::size_t sequence = 0;
            std::uint64_t sent = 0;
            while (true) {
                next += std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(gap(rng)));
                if (next >= stop) break;
                // Open loop: if we fell behind schedule, send
                // immediately (arrival bursts are part of the process).
                std::this_thread::sleep_until(next);

                const std::size_t i = sequence++ % kPool;
                const bool batch = coin(rng) < opt.batch_frac;
                request.lane = batch ? gate::Lane::kBatch
                                     : gate::Lane::kInteractive;
                request.tenant =
                    "t" + std::to_string(sequence % opt.tenants);
                request.deadline_us = batch ? 0 : opt.deadline_us;
                if (opt.q8) {
                    request.encoding = gate::FeatureEncoding::kDenseQ8;
                    request.q8 = pool_q8[i];
                    request.scale = pool_scale[i];
                } else {
                    request.encoding = gate::FeatureEncoding::kDenseF32;
                    request.dense = pool[i];
                }
                request.request_id =
                    (now_ns() & ~1ull) |
                    static_cast<std::uint64_t>(request.lane);
                if (!clients[c]->send(request)) break; // connection died
                ++sent;
            }
            std::lock_guard<std::mutex> lock(tally_mutexes[c]);
            tallies[c].sent += sent;
        });
    }
    for (auto& sender : senders) sender.join();
    // Grace window for in-flight responses, then tear down.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    for (auto& client : clients) client->close();

    Tally total;
    for (std::size_t c = 0; c < opt.connections; ++c) {
        std::lock_guard<std::mutex> lock(tally_mutexes[c]);
        total.merge(tallies[c]);
    }
    return total;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parse_args(argc, argv);

    std::printf("kernels: %s (per-host self-selection; "
                "BUCKWILD_KERNEL_IMPL overrides)\n",
                simd::to_string(simd::best_impl()));

    tools::ObsSession::Workload workload;
    workload.signature = dmgc::Signature::dense_hogwild();
    workload.threads = opt.connections;
    workload.model_size = opt.dim;
    workload.process = "gate_driver";
    tools::ObsSession session(opt.obs, workload);

    TablePrinter table(
        "open-loop gate sweep (" + opt.model + ", dim " +
            std::to_string(opt.dim) + (opt.q8 ? ", q8" : ", f32") + ")",
        {"offered qps", "sent", "ok", "shed", "shed %", "int p50 us",
         "int p99 us", "bat p50 us", "bat p99 us"});
    std::ostringstream json;
    json << "{\"model\":\"" << opt.model << "\",\"dim\":" << opt.dim
         << ",\"encoding\":\"" << (opt.q8 ? "q8" : "f32")
         << "\",\"steps\":[";

    bool first = true;
    for (const double qps : opt.qps) {
        Tally tally = run_step(opt, qps);
        const std::uint64_t ok =
            tally.lanes[0].ok + tally.lanes[1].ok;
        const double shed_rate =
            tally.sent > 0 ? static_cast<double>(tally.shed()) /
                                 static_cast<double>(tally.sent)
                           : 0.0;
        double p50_us[gate::kLanes], p99_us[gate::kLanes];
        for (std::size_t l = 0; l < gate::kLanes; ++l) {
            p50_us[l] = percentile_us(tally.lanes[l].latency_us, 50.0);
            p99_us[l] = percentile_us(tally.lanes[l].latency_us, 99.0);
        }
        publish_step_metrics(tally, qps, p50_us, p99_us);
        const double int_p50 = p50_us[0];
        const double int_p99 = p99_us[0];
        const double bat_p50 = p50_us[1];
        const double bat_p99 = p99_us[1];
        table.add_row({format_num(qps, 5), std::to_string(tally.sent),
                       std::to_string(ok), std::to_string(tally.shed()),
                       format_num(shed_rate * 100.0, 3),
                       format_num(int_p50, 4), format_num(int_p99, 4),
                       format_num(bat_p50, 4), format_num(bat_p99, 4)});
        if (!first) json << ",";
        first = false;
        json << "{\"offered_qps\":" << qps << ",\"sent\":" << tally.sent
             << ",\"ok\":" << ok << ",\"shed\":" << tally.shed()
             << ",\"resource_exhausted\":" << tally.resource_exhausted
             << ",\"deadline_exceeded\":" << tally.deadline_exceeded
             << ",\"other_errors\":" << tally.other_errors
             << ",\"shed_rate\":" << shed_rate
             << ",\"interactive\":{\"ok\":" << tally.lanes[0].ok
             << ",\"p50_us\":" << int_p50 << ",\"p99_us\":" << int_p99
             << "},\"batch\":{\"ok\":" << tally.lanes[1].ok
             << ",\"p50_us\":" << bat_p50 << ",\"p99_us\":" << bat_p99
             << "}}";
    }
    json << "]}";

    table.print(std::cout);
    if (!opt.json_path.empty()) {
        if (opt.json_path == "-") {
            std::cout << json.str() << "\n";
        } else {
            std::ofstream out(opt.json_path);
            out << json.str() << "\n";
            std::printf("wrote %s\n", opt.json_path.c_str());
        }
    }
    session.finish();
    return 0;
}
