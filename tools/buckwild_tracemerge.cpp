/**
 * @file
 * buckwild_tracemerge — stitch per-process Chrome traces into one
 * fleet timeline.
 *
 * A traced multi-process run (`buckwild_cluster --spawn --trace-dir D`,
 * or any set of processes exporting via --trace-out with process labels
 * set) leaves one Chrome trace_event JSON per process, each on its own
 * CLOCK_MONOTONIC. This tool merges them:
 *
 *  1. every input keeps its events, renumbered onto a distinct pid
 *     (with a process_name metadata event, synthesized from the file
 *     name when the input carries none);
 *  2. pairwise clock offsets are estimated from the clocksync instants
 *     the RPC clients record (each is one NTP-style sample — the
 *     responder's echoed receive/send timestamps against the
 *     requester's send/receive pair, offset = ((b1-a1)+(b2-a2))/2).
 *     Every RPC mints its own trace id, so a clocksync in process A
 *     whose trace id also appears in process B pins the (A, B) pair;
 *     the per-pair estimate is the median over all such samples;
 *  3. all timestamps are corrected onto the reference process's clock
 *     (BFS over the pair graph from --reference, default "control" or
 *     the first input);
 *  4. every trace id seen in two or more processes becomes a Chrome
 *     flow (ph s/t/f), so Perfetto draws the cross-process arrows.
 *
 *     buckwild_tracemerge --dir /tmp/traces -o merged.trace.json
 *     buckwild_tracemerge a.trace.json b.trace.json --require-cross-process
 *
 * --require-cross-process makes the exit status assert correlation: it
 * fails unless at least one trace id spans two processes (what CI runs
 * after the traced smoke cluster).
 */
#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

// ------------------------------------------------------- tiny JSON

/// A parsed JSON value. Objects keep insertion order so the merged
/// output stays diffable against the inputs.
struct JValue
{
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JValue> array;
    std::vector<std::pair<std::string, JValue>> object;

    const JValue*
    find(const char* key) const
    {
        if (kind != kObject) return nullptr;
        for (const auto& [k, v] : object)
            if (k == key) return &v;
        return nullptr;
    }

    JValue*
    find(const char* key)
    {
        if (kind != kObject) return nullptr;
        for (auto& [k, v] : object)
            if (k == key) return &v;
        return nullptr;
    }

    double
    num_or(double fallback) const
    {
        return kind == kNumber ? number : fallback;
    }
};

/// Recursive-descent parser over the exporter's (strict, machine
/// written) JSON. Fails loudly: a malformed input names its offset.
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JValue
    parse()
    {
        JValue value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char* what) const
    {
        die("JSON parse error at byte " + std::to_string(pos_) + ": " +
            what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) fail("unexpected character");
        ++pos_;
    }

    JValue
    parse_value()
    {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
            JValue v;
            v.kind = JValue::kString;
            v.string = parse_string();
            return v;
        }
        case 't':
        case 'f': {
            JValue v;
            v.kind = JValue::kBool;
            v.boolean = text_[pos_] == 't';
            const char* word = v.boolean ? "true" : "false";
            const std::size_t len = v.boolean ? 4 : 5;
            if (text_.compare(pos_, len, word) != 0) fail("bad literal");
            pos_ += len;
            return v;
        }
        case 'n': {
            if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
            pos_ += 4;
            return JValue{};
        }
        default: return parse_number();
        }
    }

    JValue
    parse_object()
    {
        expect('{');
        JValue v;
        v.kind = JValue::kObject;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JValue
    parse_array()
    {
        expect('[');
        JValue v;
        v.kind = JValue::kArray;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(), nullptr,
                                 16));
                pos_ += 4;
                // The exporter only \u-escapes control bytes; emit the
                // low byte and let anything exotic round-trip as '?'.
                out += code < 0x100 ? static_cast<char>(code) : '?';
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    JValue
    parse_number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        JValue v;
        v.kind = JValue::kNumber;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

std::string
json_escape(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
write_json(std::ostream& out, const JValue& v)
{
    switch (v.kind) {
    case JValue::kNull: out << "null"; break;
    case JValue::kBool: out << (v.boolean ? "true" : "false"); break;
    case JValue::kNumber: {
        // Integral values print without an exponent or trailing ".0" so
        // pids/ids survive the round trip exactly.
        const double n = v.number;
        if (std::isfinite(n) && n == std::floor(n) &&
            std::fabs(n) < 9.0e15) {
            out << static_cast<long long>(n);
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", n);
            out << buf;
        }
        break;
    }
    case JValue::kString: out << '"' << json_escape(v.string) << '"'; break;
    case JValue::kArray: {
        out << '[';
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i != 0) out << ',';
            write_json(out, v.array[i]);
        }
        out << ']';
        break;
    }
    case JValue::kObject: {
        out << '{';
        for (std::size_t i = 0; i < v.object.size(); ++i) {
            if (i != 0) out << ',';
            out << '"' << json_escape(v.object[i].first) << "\":";
            write_json(out, v.object[i].second);
        }
        out << '}';
        break;
    }
    }
}

// --------------------------------------------------- trace loading

/// One input trace: its label, its events (as parsed JSON objects, so
/// unknown fields survive the merge), and the correlation indices.
struct ProcessTrace
{
    std::string path;
    std::string label;
    std::vector<JValue> events; ///< non-metadata traceEvents
    std::set<std::string> trace_ids;
    /// clocksync samples recorded IN this process: trace id -> offsets
    /// (responder clock minus this clock, ns).
    std::vector<std::pair<std::string, double>> sync_samples;
    double offset_ns = 0.0; ///< this clock minus the reference clock
    bool anchored = false;  ///< reachable from the reference process
};

std::string
file_stem(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    // "shard0.trace.json" -> "shard0"
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

ProcessTrace
load_trace(const std::string& path)
{
    std::ifstream in(path);
    if (!in) die("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    ProcessTrace trace;
    trace.path = path;
    JValue root = JsonParser(text).parse();
    JValue* events = root.find("traceEvents");
    if (events == nullptr || events->kind != JValue::kArray)
        die(path + ": not a Chrome trace (no traceEvents array)");

    for (JValue& ev : events->array) {
        const JValue* ph = ev.find("ph");
        const JValue* name = ev.find("name");
        if (ph != nullptr && ph->string == "M") {
            if (name != nullptr && name->string == "process_name") {
                if (const JValue* args = ev.find("args"))
                    if (const JValue* label = args->find("name"))
                        trace.label = label->string;
            }
            continue; // metadata is re-synthesized on output
        }
        if (const JValue* args = ev.find("args")) {
            if (const JValue* id = args->find("trace")) {
                trace.trace_ids.insert(id->string);
                if (const JValue* offset = args->find("offset_ns"))
                    trace.sync_samples.emplace_back(id->string,
                                                    offset->num_or(0.0));
            }
        }
        trace.events.push_back(std::move(ev));
    }
    if (trace.label.empty()) trace.label = file_stem(path);
    return trace;
}

double
median(std::vector<double>& values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

void
usage()
{
    std::printf(
        "buckwild_tracemerge — merge per-process Chrome traces into one\n"
        "offset-corrected fleet timeline\n"
        "\n"
        "  buckwild_tracemerge [options] trace.json [trace.json ...]\n"
        "\n"
        "  --dir DIR              also merge every *.trace.json in DIR\n"
        "  -o, --out PATH         output file (default merged.trace.json)\n"
        "  --reference LABEL      process whose clock anchors the merge\n"
        "                         (default: \"control\" when present,\n"
        "                         else the first input)\n"
        "  --require-cross-process\n"
        "                         exit 1 unless some trace id appears in\n"
        "                         at least two processes (CI assertion)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> inputs;
    std::string out_path = "merged.trace.json";
    std::string reference;
    bool require_cross = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc)
                die(std::string("missing value for ") + flag);
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--dir") {
            const std::string dir = need("--dir");
            DIR* handle = ::opendir(dir.c_str());
            if (handle == nullptr) die("cannot open directory " + dir);
            while (const dirent* entry = ::readdir(handle)) {
                const std::string name = entry->d_name;
                const std::string suffix = ".trace.json";
                if (name.size() > suffix.size() &&
                    name.compare(name.size() - suffix.size(),
                                 suffix.size(), suffix) == 0)
                    inputs.push_back(dir + "/" + name);
            }
            ::closedir(handle);
        } else if (a == "-o" || a == "--out") {
            out_path = need("--out");
        } else if (a == "--reference") {
            reference = need("--reference");
        } else if (a == "--require-cross-process") {
            require_cross = true;
        } else if (!a.empty() && a[0] == '-') {
            die("unknown flag: " + a);
        } else {
            inputs.push_back(a);
        }
    }
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    // A previous run's output living inside --dir must not become an
    // input (re-merging is a common workflow; self-ingestion doubles
    // every event).
    inputs.erase(std::remove_if(inputs.begin(), inputs.end(),
                                [&](const std::string& p) {
                                    return p == out_path ||
                                           file_stem(p) ==
                                               file_stem(out_path);
                                }),
                 inputs.end());
    if (inputs.empty()) die("no input traces (files or --dir)");

    std::vector<ProcessTrace> processes;
    for (const std::string& path : inputs)
        processes.push_back(load_trace(path));

    // ---- pairwise clock offsets -----------------------------------
    // A clocksync in process A whose trace id also lives in process B
    // is one sample of (B's clock - A's clock). Median per pair.
    std::map<std::pair<std::size_t, std::size_t>, std::vector<double>>
        pair_samples;
    for (std::size_t a = 0; a < processes.size(); ++a) {
        for (const auto& [trace_id, offset] : processes[a].sync_samples) {
            for (std::size_t b = 0; b < processes.size(); ++b) {
                if (b == a) continue;
                if (processes[b].trace_ids.count(trace_id) != 0)
                    pair_samples[{a, b}].push_back(offset);
            }
        }
    }
    std::map<std::pair<std::size_t, std::size_t>, double> pair_offset;
    for (auto& [pair, samples] : pair_samples)
        pair_offset[pair] = median(samples);

    // ---- anchor every process to the reference clock --------------
    std::size_t ref = 0;
    if (!reference.empty()) {
        bool found = false;
        for (std::size_t i = 0; i < processes.size(); ++i)
            if (processes[i].label == reference) {
                ref = i;
                found = true;
            }
        if (!found) die("no input process labeled '" + reference + "'");
    } else {
        for (std::size_t i = 0; i < processes.size(); ++i)
            if (processes[i].label == "control") ref = i;
    }
    processes[ref].anchored = true;
    processes[ref].offset_ns = 0.0;
    // BFS: offset(B) = offset(A) + (B - A). Edges exist in whichever
    // direction the RPCs ran; flip the sign for the reverse walk.
    std::vector<std::size_t> frontier{ref};
    while (!frontier.empty()) {
        std::vector<std::size_t> next;
        for (const std::size_t a : frontier) {
            for (std::size_t b = 0; b < processes.size(); ++b) {
                if (processes[b].anchored) continue;
                const auto forward = pair_offset.find({a, b});
                const auto backward = pair_offset.find({b, a});
                if (forward == pair_offset.end() &&
                    backward == pair_offset.end())
                    continue;
                const double edge = forward != pair_offset.end()
                    ? forward->second
                    : -backward->second;
                processes[b].offset_ns = processes[a].offset_ns + edge;
                processes[b].anchored = true;
                next.push_back(b);
            }
        }
        frontier = std::move(next);
    }

    // ---- cross-process trace ids (the flow arrows) ----------------
    std::map<std::string, std::set<std::size_t>> trace_processes;
    for (std::size_t i = 0; i < processes.size(); ++i)
        for (const std::string& id : processes[i].trace_ids)
            trace_processes[id].insert(i);
    std::size_t cross_traces = 0;
    for (const auto& [id, where] : trace_processes)
        if (where.size() >= 2) ++cross_traces;

    // ---- emit the merged timeline ---------------------------------
    std::ofstream out(out_path);
    if (!out) die("cannot open output " + out_path);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const JValue& ev) {
        if (!first) out << ',';
        first = false;
        out << '\n';
        write_json(out, ev);
    };

    // Flow bookkeeping: earliest corrected event per (trace id,
    // process) — each becomes one flow point, s/t/f by corrected time.
    struct FlowPoint
    {
        double ts = 0.0;
        std::uint64_t pid = 0;
        double tid = 0.0;
    };
    std::map<std::string, std::vector<FlowPoint>> flows;

    std::size_t total_events = 0;
    for (std::size_t i = 0; i < processes.size(); ++i) {
        ProcessTrace& process = processes[i];
        const std::uint64_t pid = i + 1;
        const double shift_us = process.offset_ns / 1000.0;
        emit([&] {
            JValue meta;
            meta.kind = JValue::kObject;
            auto add = [&meta](const char* k, JValue v) {
                meta.object.emplace_back(k, std::move(v));
            };
            JValue s;
            s.kind = JValue::kString;
            s.string = "process_name";
            add("name", s);
            s.string = "M";
            add("ph", s);
            JValue n;
            n.kind = JValue::kNumber;
            n.number = static_cast<double>(pid);
            add("pid", n);
            n.number = 0;
            add("tid", n);
            JValue args;
            args.kind = JValue::kObject;
            s.string = process.label;
            args.object.emplace_back("name", s);
            add("args", args);
            return meta;
        }());
        std::map<std::string, FlowPoint> earliest;
        for (JValue& ev : process.events) {
            if (JValue* p = ev.find("pid")) {
                p->kind = JValue::kNumber;
                p->number = static_cast<double>(pid);
            }
            if (JValue* ts = ev.find("ts")) {
                ts->number -= shift_us;
                if (const JValue* args = ev.find("args"))
                    if (const JValue* id = args->find("trace")) {
                        const auto it = earliest.find(id->string);
                        if (it == earliest.end() ||
                            ts->number < it->second.ts) {
                            const JValue* tid = ev.find("tid");
                            earliest[id->string] = FlowPoint{
                                ts->number, pid,
                                tid != nullptr ? tid->num_or(0.0) : 0.0};
                        }
                    }
            }
            emit(ev);
            ++total_events;
        }
        for (const auto& [id, point] : earliest)
            if (trace_processes[id].size() >= 2)
                flows[id].push_back(point);
    }

    // One Chrome flow per cross-process trace id: start at the first
    // corrected point, step through the middle ones, finish at the
    // last. The 64-bit flow id is the low half of the 128-bit trace id.
    std::size_t flow_events = 0;
    for (auto& [id, points] : flows) {
        if (points.size() < 2) continue;
        std::sort(points.begin(), points.end(),
                  [](const FlowPoint& a, const FlowPoint& b) {
                      return a.ts < b.ts;
                  });
        const std::string low = id.size() > 16 ? id.substr(id.size() - 16)
                                               : id;
        const std::uint64_t flow_id =
            std::strtoull(low.c_str(), nullptr, 16);
        for (std::size_t p = 0; p < points.size(); ++p) {
            const char* ph = p == 0 ? "s"
                : p + 1 == points.size() ? "f"
                                         : "t";
            if (!first) out << ',';
            first = false;
            out << "\n{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"" << ph
                << "\",\"id\":" << flow_id
                << ",\"ts\":" << points[p].ts
                << ",\"pid\":" << points[p].pid << ",\"tid\":"
                << static_cast<long long>(points[p].tid);
            if (ph[0] == 'f') out << ",\"bp\":\"e\"";
            out << "}";
            ++flow_events;
        }
    }
    out << "\n]}\n";
    if (!out) die("write failed for " + out_path);

    // ---- summary ---------------------------------------------------
    std::printf("merged %zu processes, %zu events into %s\n",
                processes.size(), total_events, out_path.c_str());
    for (std::size_t i = 0; i < processes.size(); ++i)
        std::printf("  pid %zu  %-12s offset %+.0f ns%s  (%s)\n", i + 1,
                    processes[i].label.c_str(), processes[i].offset_ns,
                    processes[i].anchored ? "" : "  [no sync path]",
                    processes[i].path.c_str());
    for (const auto& [pair, samples] : pair_samples) {
        std::vector<double> copy = samples;
        std::printf("  sync %s -> %s: %zu samples, median %+.0f ns\n",
                    processes[pair.first].label.c_str(),
                    processes[pair.second].label.c_str(), samples.size(),
                    median(copy));
    }
    std::printf("  cross-process traces: %zu (flow events: %zu)\n",
                cross_traces, flow_events);
    if (require_cross && cross_traces == 0) {
        std::fprintf(stderr,
                     "error: no trace id spans two processes (was "
                     "tracing enabled in every process?)\n");
        return 1;
    }
    return 0;
}
