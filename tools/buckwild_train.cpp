/**
 * @file
 * buckwild_train — command-line trainer.
 *
 * Train asynchronous low-precision SGD from a shell, on synthetic data or
 * a LIBSVM file, with every DMGC/optimization knob exposed:
 *
 *     buckwild_train --dense 4096 10000 --signature D8M8 --threads 4
 *     buckwild_train --libsvm data.svm --signature D8i16M8 --epochs 20 \
 *                    --save model.bw
 *     buckwild_train --dense 2048 5000 --advise
 *
 * Run with --help for the full flag list.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "buckwild/buckwild.h"
#include "core/model_io.h"
#include "dataset/libsvm.h"
#include "dmgc/advisor.h"
#include "obs_cli.h"
#include "util/table.h"

namespace {

using namespace buckwild;

void
usage()
{
    std::printf(
        "buckwild_train — asynchronous low-precision SGD (Buckwild!)\n"
        "\n"
        "data source (choose one):\n"
        "  --dense N M            synthetic dense logistic problem\n"
        "  --sparse N M DENSITY   synthetic sparse logistic problem\n"
        "  --libsvm PATH [DIM]    LIBSVM-format file (sparse)\n"
        "\n"
        "training:\n"
        "  --signature SIG        DMGC signature (default D8M8 / D8i16M8)\n"
        "  --loss L               logistic | squared | hinge\n"
        "  --threads T            Hogwild! workers (default 1)\n"
        "  --epochs E             (default 10)\n"
        "  --eta S                step size (default 0.15)\n"
        "  --decay D              per-epoch step decay (default 0.95)\n"
        "  --batch B              mini-batch size (default 1)\n"
        "  --rounding R           biased | mersenne | xorshift | shared\n"
        "  --impl I               reference | naive | avx2 | fma | avx512\n"
        "                         (default: fastest supported; the\n"
        "                         BUCKWILD_KERNEL_IMPL env var overrides)\n"
        "  --shuffle              shuffle example order per epoch\n"
        "  --seed X               RNG seed\n"
        "\n"
        "outputs:\n"
        "  --save PATH            write the trained model\n"
        "  --advise               print DMGC-advisor recommendations\n"
        "  --quiet                suppress the per-epoch loss trace\n"
        "\n"
        "observability:\n"
        "%s",
        tools::obs_cli_usage());
}

[[noreturn]] void
die(const std::string& message)
{
    std::fprintf(stderr, "error: %s (try --help)\n", message.c_str());
    std::exit(1);
}

struct Options
{
    enum class Source { kNone, kDense, kSparse, kLibsvm } source =
        Source::kNone;
    std::size_t dim = 0, examples = 0;
    double density = 0.03;
    std::string libsvm_path;
    std::size_t libsvm_dim = 0;

    std::optional<std::string> signature;
    core::TrainerConfig cfg;
    std::optional<std::string> save_path;
    bool advise = false;
    bool quiet = false;
    tools::ObsCliOptions obs;
};

Options
parse_args(int argc, char** argv)
{
    Options opt;
    opt.cfg.epochs = 10;
    opt.cfg.step_size = 0.15f;
    auto need = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) die(std::string("missing value for ") + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--dense") {
            opt.source = Options::Source::kDense;
            opt.dim = std::strtoull(need(i, "--dense"), nullptr, 10);
            opt.examples = std::strtoull(need(i, "--dense"), nullptr, 10);
        } else if (a == "--sparse") {
            opt.source = Options::Source::kSparse;
            opt.dim = std::strtoull(need(i, "--sparse"), nullptr, 10);
            opt.examples = std::strtoull(need(i, "--sparse"), nullptr, 10);
            opt.density = std::strtod(need(i, "--sparse"), nullptr);
        } else if (a == "--libsvm") {
            opt.source = Options::Source::kLibsvm;
            opt.libsvm_path = need(i, "--libsvm");
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.libsvm_dim =
                    std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--signature") {
            opt.signature = need(i, "--signature");
        } else if (a == "--loss") {
            const std::string l = need(i, "--loss");
            if (l == "logistic") opt.cfg.loss = core::Loss::kLogistic;
            else if (l == "squared") opt.cfg.loss = core::Loss::kSquared;
            else if (l == "hinge") opt.cfg.loss = core::Loss::kHinge;
            else die("unknown loss: " + l);
        } else if (a == "--threads") {
            opt.cfg.threads =
                std::strtoull(need(i, "--threads"), nullptr, 10);
        } else if (a == "--epochs") {
            opt.cfg.epochs =
                std::strtoull(need(i, "--epochs"), nullptr, 10);
        } else if (a == "--eta") {
            opt.cfg.step_size =
                static_cast<float>(std::strtod(need(i, "--eta"), nullptr));
        } else if (a == "--decay") {
            opt.cfg.step_decay = static_cast<float>(
                std::strtod(need(i, "--decay"), nullptr));
        } else if (a == "--batch") {
            opt.cfg.batch_size =
                std::strtoull(need(i, "--batch"), nullptr, 10);
        } else if (a == "--rounding") {
            const std::string r = need(i, "--rounding");
            if (r == "biased")
                opt.cfg.rounding = core::RoundingStrategy::kBiased;
            else if (r == "mersenne")
                opt.cfg.rounding =
                    core::RoundingStrategy::kMersennePerWrite;
            else if (r == "xorshift")
                opt.cfg.rounding =
                    core::RoundingStrategy::kXorshiftPerWrite;
            else if (r == "shared")
                opt.cfg.rounding = core::RoundingStrategy::kSharedXorshift;
            else die("unknown rounding: " + r);
        } else if (a == "--impl") {
            const std::string m = need(i, "--impl");
            if (const auto impl = simd::parse_impl(m)) opt.cfg.impl = *impl;
            else die("unknown impl: " + m);
        } else if (a == "--shuffle") {
            opt.cfg.shuffle = true;
        } else if (a == "--seed") {
            opt.cfg.seed = std::strtoull(need(i, "--seed"), nullptr, 10);
        } else if (a == "--save") {
            opt.save_path = need(i, "--save");
        } else if (a == "--advise") {
            opt.advise = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (tools::parse_obs_flag(opt.obs, argc, argv, i)) {
            // shared observability flag, consumed
        } else {
            die("unknown flag: " + a);
        }
    }
    if (opt.source == Options::Source::kNone)
        die("no data source given (--dense / --sparse / --libsvm)");
    return opt;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    try {
        opt = parse_args(argc, argv);
        const bool sparse = opt.source != Options::Source::kDense;
        opt.cfg.signature = dmgc::parse_signature(
            opt.signature.value_or(sparse ? "D8i16M8" : "D8M8"));

        core::Trainer trainer(opt.cfg);
        core::TrainingMetrics metrics;
        std::size_t model_dim = 0;
        // The live tier is started once the data (and so the model
        // dimension the roofline prediction needs) is known, but before
        // training begins, so the sampler sees every epoch.
        std::unique_ptr<tools::ObsSession> session;
        auto begin_obs = [&](std::size_t dim) {
            tools::ObsSession::Workload workload;
            workload.signature = opt.cfg.signature;
            workload.threads = std::max<std::size_t>(opt.cfg.threads, 1);
            workload.model_size = dim;
            workload.numbers_gauge = "train.numbers";
            workload.seconds_gauge = "train.seconds";
            workload.process = "train";
            session =
                std::make_unique<tools::ObsSession>(opt.obs, workload);
        };
        if (opt.source == Options::Source::kDense) {
            const auto p = dataset::generate_logistic_dense(
                opt.dim, opt.examples, opt.cfg.seed);
            model_dim = p.dim;
            begin_obs(model_dim);
            metrics = trainer.fit(p);
        } else if (opt.source == Options::Source::kSparse) {
            const auto p = dataset::generate_logistic_sparse(
                opt.dim, opt.examples, opt.density, opt.cfg.seed);
            model_dim = p.dim;
            begin_obs(model_dim);
            metrics = trainer.fit(p);
        } else {
            const auto p = dataset::load_libsvm_file(opt.libsvm_path,
                                                     opt.libsvm_dim);
            model_dim = p.dim;
            begin_obs(model_dim);
            metrics = trainer.fit(p);
        }
        metrics.publish(obs::MetricsRegistry::global(), "train.");

        if (!opt.quiet) {
            std::printf("epoch losses:");
            for (double l : metrics.loss_trace) std::printf(" %.4f", l);
            std::printf("\n");
        }
        std::printf("signature %s | kernels %s | loss %.4f | "
                    "accuracy %.4f | %.3f GNPS | %.2fs\n",
                    opt.cfg.signature.to_string().c_str(),
                    simd::to_string(opt.cfg.impl), metrics.final_loss,
                    metrics.accuracy, metrics.gnps(),
                    metrics.train_seconds);

        if (opt.save_path) {
            core::SavedModel model;
            model.signature = opt.cfg.signature;
            model.loss = opt.cfg.loss;
            model.weights = trainer.model();
            core::save_model_file(model, *opt.save_path);
            std::printf("model saved to %s\n", opt.save_path->c_str());
        }
        if (opt.advise) {
            dmgc::AdvisorQuery query;
            query.signature = opt.cfg.signature;
            query.model_size = model_dim;
            query.threads = std::max<std::size_t>(opt.cfg.threads, 1);
            query.unbiased_rounding =
                opt.cfg.rounding != core::RoundingStrategy::kBiased;
            const auto advice =
                advise(query, dmgc::PerfModel::paper_model());
            std::printf("\nadvisor: regime %s, p(n) = %.3f\n",
                        to_string(advice.regime).c_str(),
                        advice.parallel_fraction);
            for (const auto& r : advice.recommendations)
                std::printf("  - %s\n      (%s; stat. eff.: %s)\n",
                            r.action.c_str(), r.rationale.c_str(),
                            r.stat_eff_cost.c_str());
        }
        session->finish();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
