#!/usr/bin/env bash
# Duplicate-quantizer lint: every rounding/quantization primitive must live
# in the precision substrate (src/lowp/) — call sites go through
# lowp::GridSpec + the rounding engine instead of hand-rolling lround /
# nearbyint / floor-plus-dither again (the refactor this guards deleted
# five independent copies).
#
# Allowlisted exceptions (reviewed, each documented at the call site):
#   src/simd/fixed_scalar.h   scalar reference kernel: the saturating
#                             accumulate-round IS the DenseOps semantics
#                             the vector paths are tested against.
#   src/isa/nibble_kernels.h  4-bit emulation grid (no lowp rep exists
#                             below 8 bits by design; see src/isa docs).
#   src/serve/metrics.cpp     histogram bucket sizing — arithmetic on
#                             latencies, not a value quantizer.
#
# Usage: tools/lint_quantizers.sh
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist='^src/(lowp/|simd/fixed_scalar\.h|isa/nibble_kernels\.h|serve/metrics\.cpp)'
primitives='std::l?lround|\bl?lroundf?\(|std::nearbyint|\bnearbyintf?\(|std::rint\b|\brintf?\('

fail=0
while IFS= read -r hit; do
  file=${hit%%:*}
  [[ "$file" =~ $allowlist ]] && continue
  # Strip //- and *-style comment lines (doc references are fine).
  line=${hit#*:*:}
  [[ "$line" =~ ^[[:space:]]*(//|\*|/\*) ]] && continue
  echo "lint_quantizers: rounding primitive outside src/lowp/: $hit" >&2
  fail=1
done < <(grep -rnE --include='*.h' --include='*.cpp' "$primitives" src tools || true)

if [[ "$fail" -ne 0 ]]; then
  echo "lint_quantizers: route new quantization through lowp:: (see DESIGN.md §10)" >&2
  exit 1
fi
echo "lint_quantizers: OK (substrate is the only quantizer)"
